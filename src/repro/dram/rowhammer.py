"""Rowhammer fault model: per-row flip templates and the hammer primitive.

Vulnerable DRAM cells are a fixed property of the *chip*, so the
simulator derives each row's flip templates deterministically from the
machine seed.  Hammering two aggressor rows flips the templated bits of
the sandwiched victim row directly in physical memory — past page
tables, permissions and copy-on-write, which is exactly the property
Flip Feng Shui abuses to corrupt a victim's fused page without ever
writing to it.

Template density defaults to roughly one vulnerable row in sixteen,
in line with the "many exploitable flips per module" observations the
FFS paper builds on; tests and attacks can raise it for speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dram.geometry import DramMapper
from repro.mem.physmem import PhysicalMemory
from repro.params import PAGE_SIZE


@dataclass(frozen=True)
class FlipTemplate:
    """One vulnerable cell: flipping occurs at (frame, byte, bit).

    ``requires_double_sided`` cells only flip under double-sided
    hammering; the rest also flip (less usefully) single-sided.
    """

    pfn: int
    byte_offset: int
    bit: int
    requires_double_sided: bool


class RowhammerEngine:
    """Generates flip templates and applies hammering to physical memory."""

    def __init__(
        self,
        physmem: PhysicalMemory,
        dram: DramMapper,
        seed: int,
        row_vulnerability: float = 1 / 16,
    ) -> None:
        self.physmem = physmem
        self.dram = dram
        self.seed = seed
        self.row_vulnerability = row_vulnerability
        self.hammer_count = 0
        self._row_cache: dict[tuple[int, int], tuple[FlipTemplate, ...]] = {}
        #: (pfn, byte, bit) -> content version at which the cell last
        #: flipped.  A discharged cell cannot flip again until the frame
        #: is rewritten (recharging it).
        self._applied: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Template generation
    # ------------------------------------------------------------------
    def templates_of_row(self, bank: int, row: int) -> tuple[FlipTemplate, ...]:
        """Deterministic flip templates of one DRAM row."""
        key = (bank, row)
        cached = self._row_cache.get(key)
        if cached is not None:
            return cached
        rng = random.Random((self.seed << 40) ^ (bank << 32) ^ (row & 0xFFFFFFFF))
        templates: list[FlipTemplate] = []
        if rng.random() < self.row_vulnerability:
            frames = self.dram.frames_of_row(bank, row)
            for _ in range(rng.randint(1, 2)):
                if not frames:
                    break
                templates.append(
                    FlipTemplate(
                        pfn=rng.choice(frames),
                        byte_offset=rng.randrange(PAGE_SIZE),
                        bit=rng.randrange(8),
                        requires_double_sided=rng.random() < 0.7,
                    )
                )
        result = tuple(templates)
        self._row_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Hammering
    # ------------------------------------------------------------------
    def hammer(self, pfn_a: int, pfn_b: int) -> list[FlipTemplate]:
        """Hammer the rows of two aggressor frames; return applied flips.

        Double-sided hammering (aggressors in rows ``r-1``/``r+1`` of
        one bank) flips every template of victim row ``r``.
        Single-sided hammering (adjacent rows) only flips templates not
        marked double-sided-only.  Aggressors in unrelated rows flip
        nothing.
        """
        self.hammer_count += 1
        victim = self.dram.double_sided_victim(pfn_a, pfn_b)
        if victim is not None:
            bank, row = victim
            flips = list(self.templates_of_row(bank, row))
        else:
            flips = self._single_sided_flips(pfn_a, pfn_b)
        applied: list[FlipTemplate] = []
        for flip in flips:
            key = (flip.pfn, flip.byte_offset, flip.bit)
            if self._applied.get(key) == self.physmem.version(flip.pfn):
                continue
            self.physmem.corrupt_bit(flip.pfn, flip.byte_offset, flip.bit)
            self._applied[key] = self.physmem.version(flip.pfn)
            applied.append(flip)
        return applied

    def _single_sided_flips(self, pfn_a: int, pfn_b: int) -> list[FlipTemplate]:
        bank_a, row_a = self.dram.bank_and_row(pfn_a)
        bank_b, row_b = self.dram.bank_and_row(pfn_b)
        if bank_a != bank_b or abs(row_a - row_b) != 1:
            return []
        flips: list[FlipTemplate] = []
        for neighbour_row in (min(row_a, row_b) - 1, max(row_a, row_b) + 1):
            if neighbour_row < 0:
                continue
            flips.extend(
                flip
                for flip in self.templates_of_row(bank_a, neighbour_row)
                if not flip.requires_double_sided
            )
        return flips
