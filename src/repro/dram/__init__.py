"""DRAM geometry and the Rowhammer fault model."""

from repro.dram.geometry import DramMapper
from repro.dram.rowhammer import FlipTemplate, RowhammerEngine

__all__ = ["DramMapper", "FlipTemplate", "RowhammerEngine"]
