"""Mapping of physical frames onto DRAM banks and rows.

The address layout interleaves banks *below* the row index: a row holds
``pages_per_row`` consecutive frames, consecutive rows rotate through
the banks, and adjacent rows of the *same* bank are
``banks * pages_per_row`` frames apart.  Consequently a large
physically-contiguous allocation — a transparent huge page, or WPF's
linear end-of-memory fusion region — contains many (row-1, row,
row+1) same-bank triples, which is precisely what double-sided
Rowhammer needs and what both Flip Feng Shui variants in the paper
exploit.
"""

from __future__ import annotations

from repro.params import DramGeometry


class DramMapper:
    """Frame-number to (bank, row) translation plus adjacency queries."""

    def __init__(self, geometry: DramGeometry, num_frames: int) -> None:
        self.geometry = geometry
        self.num_frames = num_frames

    def bank_and_row(self, pfn: int) -> tuple[int, int]:
        """Return the (bank, in-bank row index) holding frame ``pfn``."""
        global_row = pfn // self.geometry.pages_per_row
        return (
            global_row % self.geometry.banks,
            global_row // self.geometry.banks,
        )

    def frames_of_row(self, bank: int, row: int) -> list[int]:
        """All frame numbers stored in (bank, row)."""
        global_row = row * self.geometry.banks + bank
        first = global_row * self.geometry.pages_per_row
        frames = range(first, first + self.geometry.pages_per_row)
        return [pfn for pfn in frames if pfn < self.num_frames]

    def double_sided_victim(self, pfn_a: int, pfn_b: int) -> tuple[int, int] | None:
        """If hammering ``pfn_a``/``pfn_b`` is double-sided, return the victim.

        Double-sided means the two aggressor frames sit in rows ``r-1``
        and ``r+1`` of the same bank; the sandwiched row ``r`` is
        returned as ``(bank, row)``.  Returns None otherwise.
        """
        bank_a, row_a = self.bank_and_row(pfn_a)
        bank_b, row_b = self.bank_and_row(pfn_b)
        if bank_a != bank_b or abs(row_a - row_b) != 2:
            return None
        return bank_a, (row_a + row_b) // 2

    def neighbours(self, pfn: int) -> tuple[list[int], list[int]]:
        """Frames of the rows directly above and below ``pfn``'s row."""
        bank, row = self.bank_and_row(pfn)
        above = self.frames_of_row(bank, row - 1) if row > 0 else []
        below = self.frames_of_row(bank, row + 1)
        return above, below

    def aggressors_for(self, pfn: int) -> tuple[list[int], list[int]]:
        """Aggressor frame choices for a double-sided attack on ``pfn``.

        Returns the frames of rows ``r-1`` and ``r+1`` of the same bank;
        an attacker must map (or own) one frame from each list.
        """
        return self.neighbours(pfn)
