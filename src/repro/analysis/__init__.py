"""Measurement, statistics and report rendering."""

from repro.analysis.metrics import (
    MemorySample,
    count_huge_pages,
    fused_page_breakdown,
)
from repro.analysis.stats import (
    distribution_summary,
    histogram,
    ks_2samp_pvalue,
    ks_uniform_pvalue,
)
from repro.analysis.report import format_series, format_table

__all__ = [
    "MemorySample",
    "count_huge_pages",
    "distribution_summary",
    "format_series",
    "format_table",
    "fused_page_breakdown",
    "histogram",
    "ks_2samp_pvalue",
    "ks_uniform_pvalue",
]
