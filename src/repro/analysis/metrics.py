"""Machine-wide measurements used by the experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.params import SECOND


@dataclass(frozen=True)
class MemorySample:
    """One point of a memory-consumption time series."""

    t_ns: int
    frames_in_use: int
    saved_frames: int
    huge_pages: int

    @property
    def t_s(self) -> float:
        return self.t_ns / SECOND


def count_huge_pages(kernel: Kernel) -> int:
    """Number of intact 2 MiB mappings across all processes (Fig. 9)."""
    total = 0
    for process in kernel.processes:
        if not process.alive:
            continue
        for _vaddr, _pte, huge in process.address_space.page_table.iter_leaves():
            if huge:
                total += 1
    return total


def take_sample(kernel: Kernel) -> MemorySample:
    saved = kernel.fusion.saved_frames() if kernel.fusion is not None else 0
    return MemorySample(
        t_ns=kernel.clock.now,
        frames_in_use=kernel.frames_in_use(),
        saved_frames=saved,
        huge_pages=count_huge_pages(kernel),
    )


def fingerprint_report(kernel: Kernel) -> dict:
    """Snapshot of the fingerprint cache and scan-replay counters.

    Opt-in (benchmarks and diagnostics): none of these counters feed
    the ordinary metrics above, so enabling or disabling the cache
    cannot shift any figure or table output.
    """
    physmem = kernel.physmem
    fingerprints = physmem.fingerprints
    report: dict = {
        "enabled": fingerprints.enabled,
        "store": physmem.store_kind,
        "physmem": fingerprints.stats.as_dict(),
        "cached_digests": len(fingerprints.cached_frames()),
        "mutation_epoch": fingerprints.mutation_epoch,
    }
    if physmem.arena is not None:
        report["arena"] = physmem.arena.stats.as_dict()
        report["unique_contents"] = physmem.arena.unique_contents()
    if kernel.fusion is not None:
        report["scan"] = kernel.fusion.incremental_stats()
    return report


def fused_page_breakdown(kernel: Kernel) -> dict[str, int]:
    """Classify currently-fused PTEs by guest page kind (Table 3).

    Walks every VMA tagged with ``guest_kind`` and counts pages whose
    PTE carries the FUSED bit.  Untagged VMAs count as "rest".
    """
    breakdown: dict[str, int] = {}
    for process in kernel.processes:
        if not process.alive:
            continue
        page_table = process.address_space.page_table
        for vma in process.address_space.vmas:
            kind = vma.extra.get("guest_kind", "rest")
            for vaddr in vma.pages():
                walk = page_table.walk(vaddr)
                if walk is not None and not walk.huge and walk.pte.fused:
                    breakdown[kind] = breakdown.get(kind, 0) + 1
    return breakdown
