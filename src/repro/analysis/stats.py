"""Statistical tests used by the paper's security evaluation (§9.1)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

# SciPy ships with the `repro[fast]` extra; only the two KS helpers
# below need it, and they are exercised by the Fig. 5/6 benchmarks,
# never by tier-1.  The guard keeps the whole analysis package (and
# everything importing it) usable on a dependency-free install.
try:
    from scipy import stats as scipy_stats

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    scipy_stats = None
    HAVE_SCIPY = False


def _require_scipy():
    if scipy_stats is None:
        raise RuntimeError(
            "KS statistics require SciPy; install the repro[fast] extra"
        )


def ks_2samp_pvalue(sample_a, sample_b) -> float:
    """Two-sample Kolmogorov-Smirnov p-value (Fig. 6's SB check)."""
    _require_scipy()
    result = scipy_stats.ks_2samp(sample_a, sample_b)
    return float(result.pvalue)


def ks_uniform_pvalue(values, low: float, high: float) -> float:
    """KS goodness-of-fit against Uniform[low, high) (the RA check)."""
    if high <= low:
        raise ValueError("empty interval")
    _require_scipy()
    scaled = [(v - low) / (high - low) for v in values]
    result = scipy_stats.kstest(scaled, "uniform")
    return float(result.pvalue)


def histogram(values, bins: int = 20) -> list[tuple[float, int]]:
    """Frequency distribution: (bin_left_edge, count) pairs (Figs. 5/6)."""
    if not values:
        return []
    low, high = min(values), max(values)
    if low == high:
        return [(float(low), len(values))]
    width = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / width))
        counts[index] += 1
    return [(low + index * width, counts[index]) for index in range(bins)]


@dataclass(frozen=True)
class DistributionSummary:
    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    modes: int


def distribution_summary(values) -> DistributionSummary:
    """Summary plus a cluster count (bimodality detector).

    ``modes`` counts well-separated clusters: the sorted sample is
    split wherever consecutive values gap by more than a quarter of
    the full range.  KSM's write timings split into two clusters (the
    plain-store and copy-on-write peaks of Fig. 5); VUsion's reads form
    one (Fig. 6).
    """
    ordered = sorted(values)
    span = ordered[-1] - ordered[0]
    modes = 1
    if span > 0:
        for previous, current in zip(ordered, ordered[1:]):
            # A cluster boundary is a relative jump: the next value is
            # at least 50% above the previous one (and not just noise).
            if previous > 0 and current - previous > 0.5 * previous:
                modes += 1
    return DistributionSummary(
        count=len(values),
        mean=statistics.fmean(values),
        median=statistics.median(values),
        minimum=min(values),
        maximum=max(values),
        modes=modes,
    )
