"""Plain-text table and time-series renderers for experiment output."""

from __future__ import annotations

from typing import Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table (paper-table style)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_series(
    label_series: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    value_label: str = "value",
) -> str:
    """Render aligned time series: one column per labelled curve."""
    times = sorted({t for series in label_series.values() for t, _ in series})
    lookup = {
        label: dict(series) for label, series in label_series.items()
    }
    headers = [f"t(s)"] + list(label_series)
    rows = []
    for t in times:
        row = [f"{t:.1f}"]
        for label in label_series:
            value = lookup[label].get(t)
            row.append("-" if value is None else _cell(value))
        rows.append(row)
    heading = f"{title} [{value_label}]" if title else value_label
    return format_table(headers, rows, title=heading)


def format_run_summary(results, title: str = "runner summary") -> str:
    """Render a sweep's :class:`~repro.runner.pool.TaskResult` list.

    One row per task: execution status, attempts, wall-clock and (for
    experiments) whether the paper's qualitative checks passed.
    """
    rows = []
    for result in results:
        if result.checks_pass is None:
            checks = "-"
        else:
            checks = "PASS" if result.checks_pass else "FAIL"
        rows.append(
            [
                result.task_id,
                result.status,
                result.attempts,
                f"{result.duration_s:.1f}s",
                checks,
                result.mode,
            ]
        )
    return format_table(
        ["task", "status", "attempts", "time", "checks", "mode"],
        rows,
        title=title,
    )
