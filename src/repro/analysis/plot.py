"""ASCII line charts for experiment time series.

The paper's fusion-rate results are figures, not tables; this renderer
draws multi-series charts in plain text so the benchmark outputs under
``results/`` carry the curve shapes (convergence, crossovers, the
one-round delay of VUsion in Fig. 10) and not just endpoints.
"""

from __future__ import annotations

from typing import Sequence

#: Markers assigned to series in order.
MARKERS = "o*x+#@%&"


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render labelled (x, y) series as a text chart with a legend."""
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1
    if y_high == y_low:
        y_high = y_low + 1

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = marker

    for index, (label, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in values:
            place(x, y, marker)

    top_label = f"{y_high:.0f}"
    bottom_label = f"{y_low:.0f}"
    margin = max(len(top_label), len(bottom_label)) + 1
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[{y_label}]")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(
        " " * margin
        + f" {x_low:.1f}"
        + f"t(s) -> {x_high:.1f}".rjust(width - len(f"{x_low:.1f}"))
    )
    legend = "  ".join(
        f"{MARKERS[index % len(MARKERS)]}={label}"
        for index, label in enumerate(series)
    )
    lines.append(" " * margin + " " + legend)
    return "\n".join(lines)
