"""Multi-VM scenario driver and the paper's four system configurations.

The evaluation compares four systems throughout (§9):

* **No Dedup** — page fusion off; THP on (fault + khugepaged).
* **KSM** — stock Linux KSM; insecure khugepaged.
* **VUsion** — the secure engine; khugepaged off, so THPs broken for
  fusion never come back (the paper's plain-VUsion behaviour, Fig. 9).
* **VUsion THP** — the secure engine plus the §8 secure khugepaged,
  conserving working-set huge pages.

Scenarios are scaled down (VMs of a few thousand pages, scan rounds of
seconds instead of minutes); shapes, orderings and crossovers — not
absolute numbers — are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.spec import ScenarioSpec

from repro.analysis.metrics import MemorySample, take_sample
from repro.fusion.registry import create_engine
from repro.kernel.kernel import Kernel
from repro.kernel.khugepaged import Khugepaged
from repro.params import (
    FusionConfig,
    MachineSpec,
    MINUTE,
    MS,
    SECOND,
    VusionConfig,
    WpfConfig,
)
from repro.workloads.vm_image import GuestVm, VmImageSpec, boot_vm


@dataclass(frozen=True)
class SystemConfig:
    """One column of the paper's comparison tables."""

    label: str
    engine: str | None
    khugepaged: str | None = None  # None | "insecure" | "secure"
    thp_fault: bool = True
    pages_per_scan: int = 128
    scan_interval: int = 20 * MS
    pool_frames: int = 2048
    min_idle_ns: int | None = None
    khugepaged_period: int = 2 * SECOND
    thp_active_threshold: int = 1
    wpf_interval: int = 15 * MINUTE
    #: VUsion THP-conserving mode (§8.1): only idle THPs are broken up.
    conserve_thp: bool = False
    #: Working-set estimation (§7.2); False = the paper's "naive VUsion".
    working_set: bool = True

    def with_(self, **overrides) -> "SystemConfig":
        return replace(self, **overrides)

    @classmethod
    def preset(cls, name: str) -> "SystemConfig":
        """The single factory entry point for the paper's four columns.

        ``name`` is one of ``"nodedup"``, ``"ksm"``, ``"vusion"``,
        ``"vusion_thp"`` — benchmarks and fleet specs reference columns
        by this key instead of re-declaring the configs by hand.
        """
        try:
            return PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown system preset {name!r} "
                f"(known: {', '.join(PRESETS)})"
            ) from None

    @property
    def preset_name(self) -> str | None:
        """The preset key this config equals, if any (for serialization)."""
        for name, config in PRESETS.items():
            if config == self:
                return name
        return None


NO_DEDUP = SystemConfig("No Dedup", engine=None, khugepaged="insecure")
KSM_CONFIG = SystemConfig("KSM", engine="ksm", khugepaged="insecure")
VUSION_CONFIG = SystemConfig("VUsion", engine="vusion", khugepaged=None)
VUSION_THP_CONFIG = SystemConfig(
    "VUsion THP", engine="vusion", khugepaged="secure", conserve_thp=True
)

#: Preset keys for :meth:`SystemConfig.preset`, in paper-column order.
PRESETS: dict[str, SystemConfig] = {
    "nodedup": NO_DEDUP,
    "ksm": KSM_CONFIG,
    "vusion": VUSION_CONFIG,
    "vusion_thp": VUSION_THP_CONFIG,
}

#: The four columns of Tables 2/4/5/6/7 and Figs. 7-12.
STANDARD_CONFIGS = [NO_DEDUP, KSM_CONFIG, VUSION_CONFIG, VUSION_THP_CONFIG]


def build_engine(config: SystemConfig):
    """Wire the unified :mod:`repro.fusion.registry` factory from a
    :class:`SystemConfig` (one column of the paper's tables)."""
    if config.engine is None:
        return None
    return create_engine(
        config.engine,
        fusion_config=FusionConfig(
            pages_per_scan=config.pages_per_scan,
            scan_interval=config.scan_interval,
        ),
        vusion_config=VusionConfig(
            random_pool_frames=config.pool_frames,
            min_idle_ns=config.min_idle_ns,
            thp_enabled=config.conserve_thp,
            thp_active_threshold=config.thp_active_threshold,
            working_set_enabled=config.working_set,
        ),
        wpf_config=WpfConfig(pass_interval=config.wpf_interval),
    )


class Scenario:
    """A machine built from a :class:`SystemConfig`, hosting VMs."""

    def __init__(
        self, config: SystemConfig, frames: int = 32768, seed: int = 1017
    ) -> None:
        self.config = config
        self.kernel = Kernel(
            MachineSpec(total_frames=frames, seed=seed),
            thp_fault_enabled=config.thp_fault,
        )
        self.engine = build_engine(config)
        if self.engine is not None:
            self.kernel.attach_fusion(self.engine)
        self.khugepaged = None
        if config.khugepaged is not None:
            self.khugepaged = Khugepaged(
                self.kernel,
                period=config.khugepaged_period,
                secure=(config.khugepaged == "secure"),
                active_threshold=config.thp_active_threshold,
            )
        self.vms: list[GuestVm] = []
        self.samples: list[MemorySample] = []

    @classmethod
    def from_spec(cls, spec: "ScenarioSpec") -> "Scenario":
        """Build the execution backend of a declarative spec.

        The spec carries everything the imperative constructor takes, so
        ``Scenario.from_spec(spec)`` and hand-wired
        ``Scenario(spec.system, frames=..., seed=...)`` are the same
        machine — the differential tests pin this byte for byte.
        """
        return cls(spec.system, frames=spec.frames, seed=spec.seed)

    # ------------------------------------------------------------------
    # VM management
    # ------------------------------------------------------------------
    def boot(self, image: VmImageSpec, name: str | None = None) -> GuestVm:
        vm_name = name or f"vm{len(self.vms)}"
        vm = boot_vm(self.kernel, vm_name, image)
        self.vms.append(vm)
        return vm

    def retire(self, vm: GuestVm) -> None:
        """Shut a VM down, releasing every frame it held."""
        self.kernel.destroy_process(vm.process)
        self.vms.remove(vm)

    # ------------------------------------------------------------------
    # Time and sampling
    # ------------------------------------------------------------------
    def idle(self, duration: int) -> None:
        self.kernel.idle(duration)

    def sample(self) -> MemorySample:
        sample = take_sample(self.kernel)
        self.samples.append(sample)
        return sample

    def run_sampling(self, duration: int, interval: int = SECOND) -> list[MemorySample]:
        """Idle for ``duration``, sampling memory every ``interval``."""
        end = self.kernel.clock.now + duration
        while self.kernel.clock.now < end:
            self.idle(min(interval, end - self.kernel.clock.now))
            self.sample()
        return self.samples

    def saved_frames(self) -> int:
        return self.engine.saved_frames() if self.engine is not None else 0

    def series(self, attribute: str) -> list[tuple[float, float]]:
        """Extract (t_seconds, value) pairs from collected samples."""
        return [(s.t_s, float(getattr(s, attribute))) for s in self.samples]
