"""One driver per table and figure of the paper's evaluation (§9).

Each ``run_*`` function builds scaled-down scenarios, produces the same
rows/series the paper reports, and returns an :class:`ExperimentResult`
whose ``checks`` record the qualitative expectations (who wins, rough
factors, crossovers).  The benchmark suite executes these drivers and
asserts the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.metrics import fused_page_breakdown
from repro.analysis.report import format_series, format_table
from repro.analysis.stats import (
    distribution_summary,
    ks_2samp_pvalue,
    ks_uniform_pvalue,
)
from repro.attacks import (
    AttackEnvironment,
    CowTimingAttack,
    FlipFengShuiAttack,
    PageColorAttack,
    PageSharingAttack,
    PrefetchAttack,
    ReuseFlipFengShuiAttack,
    TranslationAttack,
)
from repro.harness.scenario import (
    KSM_CONFIG,
    NO_DEDUP,
    Scenario,
    STANDARD_CONFIGS,
    SystemConfig,
    VUSION_CONFIG,
    VUSION_THP_CONFIG,
)
from repro.params import MS, SECOND
from repro.workloads.apache import ApacheWorkload
from repro.workloads.keyvalue import KeyValueWorkload
from repro.workloads.parsec import PARSEC_BENCHMARKS
from repro.workloads.postmark import PostmarkWorkload
from repro.workloads.spec import SPEC_BENCHMARKS
from repro.workloads.stream import StreamWorkload
from repro.workloads.synthetic import SyntheticBenchmark
from repro.workloads.vm_image import DISTRO_IMAGES, diverse_images


@dataclass(frozen=True)
class Scale:
    """Experiment sizing (simulated machines are scaled-down hosts)."""

    frames: int = 32768
    vms: int = 4
    settle: int = 10 * SECOND
    requests: int = 40_000
    bench_ops: int = 400
    kv_ops: int = 30_000
    postmark_ops: int = 6_000
    duration: int = 30 * SECOND
    sample_interval: int = SECOND
    min_idle: int = 150 * MS
    khugepaged_period: int = 250 * MS
    #: Idle gap between warm-up bursts; must span several scan rounds
    #: so the engine reaches steady state on the workload's memory.
    warm_idle: int = SECOND
    #: Simulated measurement window per SPEC/PARSEC benchmark.
    suite_window: int = 40 * MS
    #: VMs in the diverse-images scenario (the paper uses 16).
    diverse_vms: int = 16


#: Small scale for the test suite; the benchmarks use FULL.
QUICK = Scale(
    frames=32768,
    requests=8_000,
    bench_ops=80,
    kv_ops=6_000,
    postmark_ops=1_500,
    duration=12 * SECOND,
    settle=6 * SECOND,
    khugepaged_period=100 * MS,
    warm_idle=800 * MS,
    suite_window=15 * MS,
    diverse_vms=8,
)
FULL = Scale()


@dataclass
class ExperimentResult:
    """Rows + qualitative checks of one reproduced table/figure."""

    experiment: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    series: dict = field(default_factory=dict)
    checks: dict = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    def render(self) -> str:
        from repro.analysis.plot import ascii_chart

        parts = [format_table(self.headers, self.rows, title=self.experiment)]
        if self.series:
            parts.append(
                ascii_chart(self.series, title=f"{self.experiment} (chart)")
            )
            parts.append(format_series(self.series, title=f"{self.experiment} series"))
        if self.checks:
            check_rows = [[name, "PASS" if ok else "FAIL"] for name, ok in self.checks.items()]
            parts.append(format_table(["check", "status"], check_rows))
        return "\n\n".join(parts)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


def _scaled(config: SystemConfig, scale: Scale) -> SystemConfig:
    return config.with_(
        min_idle_ns=scale.min_idle, khugepaged_period=scale.khugepaged_period
    )


# ---------------------------------------------------------------------------
# Table 1: the attack matrix
# ---------------------------------------------------------------------------
#: The paper's Table 1, in row order.  Each attack's insecure target
#: and environment parameters live on the attack class itself
#: (``default_target`` / ``env_defaults``) — the CLI reads the same.
TABLE1_ATTACKS = [
    CowTimingAttack,
    PageColorAttack,
    PageSharingAttack,
    TranslationAttack,
    FlipFengShuiAttack,
    ReuseFlipFengShuiAttack,
    PrefetchAttack,
]


def run_table1_attack_matrix(seed: int = 1017) -> ExperimentResult:
    """Every attack vs. its published insecure target and vs. VUsion."""
    result = ExperimentResult(
        "Table 1: attacks vs. page fusion systems",
        headers=["attack", "mitigation", "insecure target", "vs target", "vs VUsion"],
    )
    for attack_cls in TABLE1_ATTACKS:
        target = attack_cls.default_target
        insecure = attack_cls(attack_cls.make_environment(seed=seed)).run()
        secure = attack_cls(attack_cls.make_environment("vusion", seed=seed)).run()
        result.rows.append(
            [
                insecure.attack,
                insecure.mitigated_by,
                target,
                "succeeds" if insecure.success else "FAILS",
                "defeated" if not secure.success else "SUCCEEDS",
            ]
        )
        result.checks[f"{insecure.attack} succeeds vs {target}"] = insecure.success
        result.checks[f"{insecure.attack} defeated by VUsion"] = not secure.success
    return result


# ---------------------------------------------------------------------------
# Fig. 3: WPF's cross-pass physical memory reuse
# ---------------------------------------------------------------------------
def run_fig3_wpf_reuse(pairs: int = 48, seed: int = 1017) -> ExperimentResult:
    """Fraction of fusion-backing frames reused between two passes."""
    from repro.params import PAGE_SIZE

    result = ExperimentResult(
        "Fig. 3: physical frame reuse across fusion passes",
        headers=["system", "pass-1 frames", "pass-2 frames", "reuse fraction"],
    )
    for engine_name in ("wpf", "vusion"):
        env = AttackEnvironment(engine_name, frames=16384, seed=seed)
        region = env.attacker.mmap(2 * pairs, name="reuse", mergeable=True,
                                   thp_allowed=False)
        contents = [b"p1:" + bytes([i]) + env.rng.randbytes(8) + b"\x01"
                    for i in range(pairs)]
        for index, content in enumerate(contents):
            env.attacker.write(region.start + 2 * index * PAGE_SIZE, content)
            env.attacker.write(region.start + (2 * index + 1) * PAGE_SIZE, content)
        env.wait_for_fusion(passes=3)
        first = {
            env.attacker.address_space.page_table.walk(
                region.start + 2 * i * PAGE_SIZE
            ).pfn
            for i in range(pairs)
        }
        # Full unmerge, then a fresh duplicate set.
        contents = [b"p2:" + bytes([i]) + env.rng.randbytes(8) + b"\x01"
                    for i in range(pairs)]
        for index, content in enumerate(contents):
            env.attacker.write(region.start + 2 * index * PAGE_SIZE, content)
            env.attacker.write(region.start + (2 * index + 1) * PAGE_SIZE, content)
        env.wait_for_fusion(passes=3)
        second = {
            env.attacker.address_space.page_table.walk(
                region.start + 2 * i * PAGE_SIZE
            ).pfn
            for i in range(pairs)
        }
        reuse = len(first & second) / max(1, len(first))
        result.rows.append([engine_name, len(first), len(second), round(reuse, 3)])
        result.notes[engine_name] = reuse
    result.checks["WPF reuse is near-perfect"] = result.notes["wpf"] >= 0.9
    result.checks["VUsion reuse is negligible"] = result.notes["vusion"] <= 0.1
    return result


# ---------------------------------------------------------------------------
# Fig. 4: copy-on-access vs copy-on-write fusion rates (+ zero pages)
# ---------------------------------------------------------------------------
def run_fig4_coa_vs_cow(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    """Four staggered Apache VMs under CoW-KSM, CoA-KSM and zero-page."""
    configs = [
        _scaled(KSM_CONFIG.with_(label="KSM (copy-on-write)"), scale),
        _scaled(KSM_CONFIG.with_(label="KSM (copy-on-access)", engine="coa-ksm"), scale),
        _scaled(KSM_CONFIG.with_(label="Zero pages only", engine="zeropage"), scale),
    ]
    result = ExperimentResult(
        "Fig. 4: fusion rate with copy-on-access vs copy-on-write",
        headers=["system", "saved frames (final)"],
    )
    image = DISTRO_IMAGES["debian"]
    stagger = scale.duration // 8
    for config in configs:
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        workloads = []
        for index in range(scale.vms):
            vm = scenario.boot(image)
            workloads.append(ApacheWorkload(vm))
            scenario.idle(stagger)
        # Light serving load on each VM while fusion converges.
        chunks = max(1, scale.duration // scale.sample_interval)
        for _ in range(chunks):
            for workload in workloads:
                workload.run(60)
            scenario.idle(scale.sample_interval)
            scenario.sample()
        result.rows.append([config.label, scenario.saved_frames()])
        result.series[config.label] = scenario.series("saved_frames")
        result.notes[config.label] = scenario.saved_frames()
    cow = result.notes["KSM (copy-on-write)"]
    coa = result.notes["KSM (copy-on-access)"]
    zero = result.notes["Zero pages only"]
    result.checks["CoA retains most of CoW's savings"] = coa >= 0.85 * cow
    result.checks["zero-page fusion captures only a small share"] = zero <= 0.45 * cow
    return result


# ---------------------------------------------------------------------------
# Figs. 5 and 6: timing distributions
# ---------------------------------------------------------------------------
def _timing_distributions(engine_name: str, samples: int, seed: int):
    """Latencies of accesses to duplicated vs unique candidate pages."""
    from repro.mem.content import tagged_content
    from repro.params import PAGE_SIZE

    env = AttackEnvironment(engine_name, frames=32768, seed=seed)
    shared = env.attacker.mmap(samples, name="shared", mergeable=True)
    twin = env.victim.mmap(samples, name="twin", mergeable=True)
    unique = env.attacker.mmap(samples, name="unique", mergeable=True)
    for index in range(samples):
        content = tagged_content("dist", index)
        env.attacker.write(shared.start + index * PAGE_SIZE, content)
        env.victim.write(twin.start + index * PAGE_SIZE, content)
        env.attacker.write(
            unique.start + index * PAGE_SIZE, tagged_content("uniq", index)
        )
    env.wait_for_fusion(passes=3)
    # Interleave the two populations, as an attacker timing a mixed
    # batch of candidate pages would — sequential phases would instead
    # sample the slowly-drifting physical cache state.
    operation = env.attacker.read if engine_name == "vusion" else env.attacker.rewrite
    shared_times = []
    unique_times = []
    for index in range(samples):
        shared_times.append(operation(shared.start + index * PAGE_SIZE).latency)
        unique_times.append(operation(unique.start + index * PAGE_SIZE).latency)
    return shared_times, unique_times


def run_fig5_ksm_write_timing(samples: int = 500, seed: int = 1017) -> ExperimentResult:
    """KSM: writes to merged vs non-merged pages are bimodal."""
    shared, unique = _timing_distributions("ksm", samples, seed)
    combined = distribution_summary(shared + unique)
    result = ExperimentResult(
        "Fig. 5: frequency distribution of write timings under KSM",
        headers=["population", "count", "mean ns", "median ns", "min", "max"],
    )
    for label, times in (("merged", shared), ("non-merged", unique)):
        summary = distribution_summary(times)
        result.rows.append(
            [label, summary.count, round(summary.mean), summary.median,
             summary.minimum, summary.maximum]
        )
    result.notes["modes"] = combined.modes
    result.notes["shared"] = shared
    result.notes["unique"] = unique
    result.checks["two distinct peaks (CoW side channel)"] = combined.modes >= 2
    result.checks["merged writes much slower"] = (
        min(shared) > 2 * max(unique)
    )
    return result


def run_fig6_vusion_read_timing(samples: int = 500, seed: int = 1017) -> ExperimentResult:
    """VUsion: reads of merged vs fake-merged pages are one distribution."""
    shared, unique = _timing_distributions("vusion", samples, seed)
    pvalue = ks_2samp_pvalue(shared, unique)
    combined = distribution_summary(shared + unique)
    result = ExperimentResult(
        "Fig. 6: frequency distribution of read timings under VUsion",
        headers=["population", "count", "mean ns", "median ns", "min", "max"],
    )
    for label, times in (("merged", shared), ("fake-merged", unique)):
        summary = distribution_summary(times)
        result.rows.append(
            [label, summary.count, round(summary.mean), summary.median,
             summary.minimum, summary.maximum]
        )
    result.notes["ks_pvalue"] = pvalue
    result.notes["modes"] = combined.modes
    result.notes["shared"] = shared
    result.notes["unique"] = unique
    result.checks["single peak (SB enforced)"] = combined.modes == 1
    result.checks["KS does not reject same-distribution"] = pvalue > 0.05
    return result


# ---------------------------------------------------------------------------
# §9.1: randomized allocation uniformity
# ---------------------------------------------------------------------------
def run_ra_uniformity(seed: int = 1017) -> ExperimentResult:
    """KS goodness-of-fit of VUsion's frame choices against uniform.

    The paper records the offsets of pages chosen for merge and fake
    merge; the equivalent observable here is the rank of every chosen
    frame within the randomization cache, which must be Uniform[0, 1)
    — otherwise an attacker could bias reuse.
    """
    config = _scaled(VUSION_CONFIG, QUICK)
    scenario = Scenario(config, frames=32768, seed=seed)
    scenario.engine.pool.log_ranks = True
    image = DISTRO_IMAGES["debian"]
    for _ in range(2):
        scenario.boot(image)
    scenario.idle(15 * SECOND)
    ranks = scenario.engine.pool.rank_log
    pvalue = ks_uniform_pvalue(ranks, 0.0, 1.0)
    result = ExperimentResult(
        "§9.1: randomized allocation (KS test vs uniform)",
        headers=["samples", "pool frames", "KS p-value"],
        rows=[[len(ranks), scenario.engine.pool.capacity, round(pvalue, 4)]],
    )
    result.notes["pvalue"] = pvalue
    result.checks["uniformity not rejected"] = pvalue > 0.05
    return result


# ---------------------------------------------------------------------------
# Table 2: Stream bandwidth
# ---------------------------------------------------------------------------
def run_table2_stream(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    result = ExperimentResult(
        "Table 2: Stream bandwidth (MB/s)",
        headers=["system", "copy", "scale", "add", "triad"],
    )
    image = DISTRO_IMAGES["debian"]
    bandwidths: dict[str, list[float]] = {}
    for config in STANDARD_CONFIGS:
        config = _scaled(config, scale)
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        vms = [scenario.boot(image) for _ in range(2)]
        scenario.idle(scale.settle)
        stream = StreamWorkload(vms[0].process, array_pages=256)
        values = [
            stream.kernel_bandwidth(kernel_name, iterations=2)
            for kernel_name in ("copy", "scale", "add", "triad")
        ]
        bandwidths[config.label] = values
        result.rows.append([config.label] + [round(v) for v in values])
    baseline = bandwidths["No Dedup"]
    worst = min(
        min(values[i] / baseline[i] for i in range(4))
        for label, values in bandwidths.items()
        if label != "No Dedup"
    )
    result.notes["worst_relative"] = worst
    result.checks["overhead below ~2%"] = worst >= 0.98
    return result


# ---------------------------------------------------------------------------
# Figs. 7/8: SPEC and PARSEC overheads
# ---------------------------------------------------------------------------
def _run_suite(suite, scale: Scale, seed: int, title: str) -> ExperimentResult:
    """Per-benchmark throughput over a fixed simulated window.

    Each benchmark is warmed up first (its working set must exist —
    the paper's runs last minutes, so startup copy-on-access transients
    are amortised away), then measured for ``scale.suite_window`` of
    simulated time.  The scan tick is refined (same pages/second, small
    batches) so daemon CPU steal spreads smoothly across the window.
    """
    result = ExperimentResult(
        title, headers=["benchmark"] + [c.label for c in STANDARD_CONFIGS[1:]]
    )
    image = DISTRO_IMAGES["debian"]
    throughput: dict[str, dict[str, float]] = {c.label: {} for c in STANDARD_CONFIGS}
    for config in STANDARD_CONFIGS:
        # Same scan rate as the default (6400 pages/s) in small batches.
        scaled = _scaled(config, scale).with_(
            pages_per_scan=16, scan_interval=2_500_000
        )
        scenario = Scenario(scaled, frames=65536, seed=seed)
        scenario.boot(image)  # one co-hosted VM provides fusion load
        bench_vm = scenario.kernel.create_process("bench-vm")
        benchmarks = [
            SyntheticBenchmark(bench_vm, spec, seed=seed) for spec in suite
        ]
        for vma in bench_vm.address_space.vmas:
            vma.extra["guest_kind"] = "rest"
        scenario.idle(scale.settle)
        for benchmark in benchmarks:
            benchmark.run(scale.bench_ops)  # warm-up: establish the WS
            # Let khugepaged react to the warm working set *before*
            # measuring, so collapse costs are not charged mid-window.
            for _ in range(3):
                benchmark.run(5)
                scenario.idle(scaled.khugepaged_period)
            benchmark.run(scale.bench_ops // 4)
            clock = scenario.kernel.clock
            end = clock.now + scale.suite_window
            operations = 0
            start = clock.now
            while clock.now < end:
                benchmark.run(10)
                operations += 10
            throughput[config.label][benchmark.name] = operations / (
                clock.now - start
            )
    overheads: dict[str, list[float]] = {c.label: [] for c in STANDARD_CONFIGS[1:]}
    for spec in suite:
        base = throughput["No Dedup"][spec.name]
        row = [spec.name]
        for config in STANDARD_CONFIGS[1:]:
            overhead = base / throughput[config.label][spec.name] - 1
            overheads[config.label].append(overhead)
            row.append(f"{overhead * 100:+.1f}%")
        result.rows.append(row)
    geo_row = ["geomean"]
    for config in STANDARD_CONFIGS[1:]:
        values = overheads[config.label]
        geomean = 1.0
        for value in values:
            geomean *= 1 + value
        geomean = geomean ** (1 / len(values)) - 1
        result.notes[config.label] = geomean
        geo_row.append(f"{geomean * 100:+.1f}%")
    result.rows.append(geo_row)
    result.checks["KSM overhead small (<10%)"] = abs(result.notes["KSM"]) < 0.10
    result.checks["VUsion within a few % of KSM"] = (
        result.notes["VUsion"] - result.notes["KSM"] < 0.08
    )
    result.checks["THP enhancements roughly neutral"] = (
        result.notes["VUsion THP"] <= result.notes["VUsion"] + 0.04
    )
    return result


def run_fig7_spec(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    return _run_suite(SPEC_BENCHMARKS, scale, seed, "Fig. 7: SPEC CPU2006 overhead")


def run_fig8_parsec(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    return _run_suite(PARSEC_BENCHMARKS, scale, seed, "Fig. 8: PARSEC overhead")


# ---------------------------------------------------------------------------
# Table 3: which page types fuse
# ---------------------------------------------------------------------------
def run_table3_page_types(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    result = ExperimentResult(
        "Table 3: contribution of page types to fusion (%)",
        headers=["system", "page cache", "buddy", "kernel", "rest"],
    )
    image = DISTRO_IMAGES["debian"]
    for config in (KSM_CONFIG, VUSION_CONFIG, VUSION_THP_CONFIG):
        config = _scaled(config, scale)
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        for _ in range(scale.vms):
            scenario.boot(image)
        scenario.idle(scale.duration)
        breakdown = fused_page_breakdown(scenario.kernel)
        total = max(1, sum(breakdown.values()))
        shares = {
            kind: 100 * breakdown.get(kind, 0) / total
            for kind in ("page_cache", "buddy", "kernel", "rest")
        }
        result.rows.append(
            [config.label] + [round(shares[k], 1) for k in
                              ("page_cache", "buddy", "kernel", "rest")]
        )
        result.notes[config.label] = shares
    ksm_shares = result.notes["KSM"]
    result.checks["page cache dominates"] = (
        ksm_shares["page_cache"] > ksm_shares["kernel"]
        and ksm_shares["page_cache"] > ksm_shares["rest"]
    )
    result.checks["idle pages (cache+buddy) are the bulk"] = (
        ksm_shares["page_cache"] + ksm_shares["buddy"] > 70
    )
    return result


# ---------------------------------------------------------------------------
# Tables 4-7: server benchmarks
# ---------------------------------------------------------------------------
def _server_scenario(config: SystemConfig, scale: Scale, seed: int):
    scenario = Scenario(config, frames=scale.frames, seed=seed)
    image = DISTRO_IMAGES["debian"]
    vms = [scenario.boot(image) for _ in range(scale.vms)]
    scenario.idle(scale.settle)
    return scenario, vms


def _warm_up(scenario: Scenario, workload, scale: Scale) -> None:
    """Bring the system to steady state before measuring.

    A server has been running long before a benchmark samples it, so
    the workload trickles along at low rate for several simulated
    seconds: the fusion engine fuses the cold tail, khugepaged sees the
    hot ranges while they are genuinely active, and both reach the
    steady state the measurement then observes.
    """
    trickle_ops = max(1, scale.requests // 2000)
    for _ in range(4):
        for _ in range(80):
            workload.run(trickle_ops)
            scenario.idle(scale.warm_idle // 160)
        scenario.idle(scale.warm_idle // 2)


def run_table4_postmark(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    result = ExperimentResult(
        "Table 4: Postmark transactions/second",
        headers=["system", "tx/s", "relative"],
    )
    throughputs = {}
    for config in STANDARD_CONFIGS:
        config = _scaled(config, scale)
        scenario, vms = _server_scenario(config, scale, seed)
        workload = PostmarkWorkload(vms[0])
        _warm_up(scenario, workload, scale)
        stats = workload.run(scale.postmark_ops)
        throughputs[config.label] = stats.throughput_per_s
    base = throughputs["No Dedup"]
    for label, value in throughputs.items():
        result.rows.append([label, round(value, 1), f"{value / base * 100:.1f}%"])
        result.notes[label] = value / base
    # Scaled-down scan rounds amplify churn effects ~5-10x relative to
    # the paper's 1.5-2.9% overheads; the qualitative claims remain.
    result.checks["KSM overhead moderate (<20%)"] = result.notes["KSM"] > 0.80
    result.checks["VUsion close to (or better than) KSM"] = (
        result.notes["VUsion"] > result.notes["KSM"] - 0.10
    )
    result.checks["THP enhancements recover"] = (
        result.notes["VUsion THP"] >= result.notes["VUsion"] - 0.02
    )
    return result


def run_table5_apache(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    result = ExperimentResult(
        "Table 5: Apache throughput and latency",
        headers=["system", "kreq/s", "relative", "lat p75 us", "lat p90 us", "lat p99 us"],
    )
    stats_by_label = {}
    for config in STANDARD_CONFIGS:
        config = _scaled(config, scale)
        scenario, vms = _server_scenario(config, scale, seed)
        workload = ApacheWorkload(vms[0])
        _warm_up(scenario, workload, scale)
        stats_by_label[config.label] = workload.run(scale.requests)
    base = stats_by_label["No Dedup"].throughput_per_s
    for label, stats in stats_by_label.items():
        relative = stats.throughput_per_s / base
        result.rows.append(
            [
                label,
                round(stats.throughput_per_s / 1000, 2),
                f"{relative * 100:.1f}%",
                round(stats.percentile(75) / 1000, 2),
                round(stats.percentile(90) / 1000, 2),
                round(stats.percentile(99) / 1000, 2),
            ]
        )
        result.notes[label] = relative
    result.checks["KSM loses noticeable throughput"] = result.notes["KSM"] < 0.97
    result.checks["VUsion adds little over KSM"] = (
        result.notes["VUsion"] > result.notes["KSM"] - 0.06
    )
    result.checks["THP enhancements improve over KSM"] = (
        result.notes["VUsion THP"] > result.notes["KSM"]
    )
    return result


def run_table6_7_keyvalue(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    result = ExperimentResult(
        "Tables 6/7: Redis and Memcached throughput and latency",
        headers=["system", "store", "kreq/s", "relative",
                 "GET p90 us", "GET p99 us", "SET p90 us", "SET p99 us"],
    )
    for kind in ("redis", "memcached"):
        throughputs = {}
        for config in STANDARD_CONFIGS:
            config = _scaled(config, scale)
            scenario, vms = _server_scenario(config, scale, seed)
            workload = KeyValueWorkload(vms[0].process, kind=kind)
            _warm_up(scenario, workload, scale)
            stats, gets, sets = workload.run_split(scale.kv_ops)
            throughputs[config.label] = (stats, gets, sets)
        base = throughputs["No Dedup"][0].throughput_per_s
        for label, (stats, gets, sets) in throughputs.items():
            relative = stats.throughput_per_s / base
            result.rows.append(
                [
                    label,
                    kind,
                    round(stats.throughput_per_s / 1000, 2),
                    f"{relative * 100:.1f}%",
                    round(gets.percentile(90) / 1000, 2),
                    round(gets.percentile(99) / 1000, 2),
                    round(sets.percentile(90) / 1000, 2),
                    round(sets.percentile(99) / 1000, 2),
                ]
            )
            result.notes[(kind, label)] = relative
    for kind in ("redis", "memcached"):
        result.checks[f"{kind}: fusion costs throughput"] = (
            result.notes[(kind, "KSM")] <= 1.0
        )
        # The paper reports VUsion within ~5% of KSM (memcached being
        # the worst case); scaled scan rounds roughly double that gap.
        result.checks[f"{kind}: VUsion near KSM"] = (
            result.notes[(kind, "VUsion")] > result.notes[(kind, "KSM")] - 0.15
        )
        result.checks[f"{kind}: THP recovers toward baseline"] = (
            result.notes[(kind, "VUsion THP")] >= result.notes[(kind, "VUsion")] - 0.02
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 9: conserving THPs under Apache
# ---------------------------------------------------------------------------
def run_fig9_thp_conservation(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 9: huge pages over time during the Apache benchmark",
        headers=["system", "initial THPs", "final THPs"],
    )
    image = DISTRO_IMAGES["debian"]
    for config in (KSM_CONFIG, VUSION_CONFIG, VUSION_THP_CONFIG):
        config = _scaled(config, scale)
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        vms = [scenario.boot(image) for _ in range(scale.vms)]
        initial = scenario.sample().huge_pages
        workload = ApacheWorkload(vms[0])
        # Continuous serving load: requests trickle across the whole
        # window so the working set stays genuinely active.
        chunks = 16
        slices_per_chunk = 25
        for _ in range(chunks):
            for _ in range(slices_per_chunk):
                workload.run(max(1, scale.requests // (8 * chunks * slices_per_chunk)))
                scenario.idle(scale.duration // (chunks * slices_per_chunk))
            scenario.sample()
        final = scenario.samples[-1].huge_pages
        result.rows.append([config.label, initial, final])
        result.series[config.label] = scenario.series("huge_pages")
        result.notes[config.label] = final
    result.checks["VUsion THP conserves more huge pages"] = (
        result.notes["VUsion THP"] > result.notes["VUsion"]
        and result.notes["VUsion THP"] > result.notes["KSM"]
    )
    return result


# ---------------------------------------------------------------------------
# Figs. 10-12: fusion-rate time series
# ---------------------------------------------------------------------------
def run_fig10_idle_vms(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    """Four idle VMs booted 5 (scaled) minutes apart."""
    result = ExperimentResult(
        "Fig. 10: memory consumption of idle VMs",
        headers=["system", "final frames in use", "final saved"],
    )
    image = DISTRO_IMAGES["debian"]
    stagger = scale.duration // 8
    for config in STANDARD_CONFIGS:
        config = _scaled(config, scale)
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        for _ in range(scale.vms):
            scenario.boot(image)
            scenario.idle(stagger)
            scenario.sample()
        # "Idle" VMs still run guest housekeeping: a few pages stay hot,
        # which is what lets the THP-conserving mode keep their THPs.
        end = scenario.kernel.clock.now + scale.duration
        while scenario.kernel.clock.now < end:
            for vm in scenario.vms:
                vm.process.read(vm.region("page_cache").start)
                vm.process.read(vm.region("rest").start)
            scenario.idle(scale.sample_interval // 4)
            if len(scenario.samples) == 0 or (
                scenario.kernel.clock.now - scenario.samples[-1].t_ns
                >= scale.sample_interval
            ):
                scenario.sample()
        scenario.sample()
        result.rows.append(
            [config.label, scenario.samples[-1].frames_in_use, scenario.saved_frames()]
        )
        result.series[config.label] = scenario.series("frames_in_use")
        result.notes[config.label] = scenario.saved_frames()
    result.checks["KSM saves substantially"] = result.notes["KSM"] > 1000
    result.checks["VUsion converges toward KSM"] = (
        result.notes["VUsion"] >= 0.8 * result.notes["KSM"]
    )
    result.checks["VUsion THP saves less (conserves THPs)"] = (
        result.notes["VUsion THP"] <= result.notes["VUsion"]
    )
    return result


def run_fig11_diverse_vms(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    """Sixteen VMs from diverse images, started together."""
    result = ExperimentResult(
        "Fig. 11: memory consumption of diverse VMs",
        headers=["system", "final frames in use", "final saved"],
    )
    vm_count = scale.diverse_vms
    # Two VMs per image, as in a cloud where popular images recur.
    images = diverse_images(max(1, vm_count // 2), seed=7)
    for config in (KSM_CONFIG, VUSION_CONFIG, VUSION_THP_CONFIG):
        config = _scaled(config, scale)
        scenario = Scenario(config, frames=65536, seed=seed)
        for index in range(vm_count):
            scenario.boot(images[index % len(images)])
        scenario.sample()
        # Guest housekeeping keeps a small working set hot in every VM.
        end = scenario.kernel.clock.now + scale.duration
        while scenario.kernel.clock.now < end:
            for vm in scenario.vms:
                vm.process.read(vm.region("page_cache").start)
                vm.process.read(vm.region("rest").start)
            scenario.idle(scale.sample_interval // 4)
            if (
                scenario.kernel.clock.now - scenario.samples[-1].t_ns
                >= scale.sample_interval
            ):
                scenario.sample()
        scenario.sample()
        result.rows.append(
            [config.label, scenario.samples[-1].frames_in_use, scenario.saved_frames()]
        )
        result.series[config.label] = scenario.series("frames_in_use")
        result.notes[config.label] = scenario.saved_frames()
    result.checks["VUsion achieves similar fusion to KSM"] = (
        result.notes["VUsion"] >= 0.75 * result.notes["KSM"]
    )
    result.checks["THP conservation reduces fusion"] = (
        result.notes["VUsion THP"] < result.notes["VUsion"]
    )
    return result


def run_fig12_apache_memory(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    """Memory consumption while the Apache benchmark runs."""
    result = ExperimentResult(
        "Fig. 12: memory consumption during the Apache benchmark",
        headers=["system", "frames before bench", "frames after bench"],
    )
    image = DISTRO_IMAGES["debian"]
    for config in STANDARD_CONFIGS:
        config = _scaled(config, scale)
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        vms = [scenario.boot(image) for _ in range(scale.vms)]
        scenario.run_sampling(scale.duration // 2, scale.sample_interval)
        before = scenario.samples[-1].frames_in_use
        workload = ApacheWorkload(vms[0])
        chunks = 6
        for _ in range(chunks):
            workload.run(max(1, scale.requests // (4 * chunks)))
            scenario.idle(scale.duration // (2 * chunks))
            scenario.sample()
        after = scenario.samples[-1].frames_in_use
        result.rows.append([config.label, before, after])
        result.series[config.label] = scenario.series("frames_in_use")
        result.notes[config.label] = (before, after)
    ksm_before = result.notes["KSM"][0]
    nodedup_before = result.notes["No Dedup"][0]
    result.checks["fusion saves memory vs no-dedup"] = ksm_before < nodedup_before
    result.checks["memory grows during the benchmark (worker expansion)"] = (
        result.notes["No Dedup"][1] > result.notes["No Dedup"][0]
    )
    vusion_before = result.notes["VUsion"][0]
    result.checks["VUsion fusion rate similar to KSM"] = (
        vusion_before <= ksm_before * 1.15
    )
    return result


# ---------------------------------------------------------------------------
# Ablations of the §7.1 design decisions
# ---------------------------------------------------------------------------
def run_ablation_security(seed: int = 1017) -> ExperimentResult:
    """Each design decision, removed: which attack comes back."""
    from repro.analysis.stats import ks_2samp_pvalue
    from repro.mem.content import tagged_content
    from repro.params import PAGE_SIZE

    result = ExperimentResult(
        "Ablations: VUsion design decisions vs. the attacks they stop",
        headers=["mechanism", "observable", "secure", "ablated"],
    )

    def write_timing_pvalue(engine_name: str, samples: int = 48) -> float:
        env = AttackEnvironment(engine_name, frames=32768, seed=seed)
        shared = env.attacker.mmap(samples, name="ab-s", mergeable=True)
        twin = env.victim.mmap(samples, name="ab-t", mergeable=True)
        unique = env.attacker.mmap(samples, name="ab-u", mergeable=True)
        for index in range(samples):
            content = tagged_content("ab", index)
            env.attacker.write(shared.start + index * PAGE_SIZE, content)
            env.victim.write(twin.start + index * PAGE_SIZE, content)
            env.attacker.write(
                unique.start + index * PAGE_SIZE, tagged_content("ab-u", index)
            )
        env.wait_for_fusion(passes=3)
        merged, fake = [], []
        for index in range(samples):
            merged.append(env.attacker.rewrite(shared.start + index * PAGE_SIZE).latency)
            fake.append(env.attacker.rewrite(unique.start + index * PAGE_SIZE).latency)
        return ks_2samp_pvalue(merged, fake)

    secure_p = write_timing_pvalue("vusion")
    ablated_p = write_timing_pvalue("vusion-nodefer")
    result.rows.append(
        ["deferred free (ii)", "unmerge-timing KS p-value",
         f"{secure_p:.3f}", f"{ablated_p:.3g}"]
    )
    result.checks["deferred free is load-bearing"] = (
        secure_p > 0.05 and ablated_p < 0.01
    )

    secure_prefetch = PrefetchAttack(
        AttackEnvironment("vusion", frames=32768, seed=seed)
    ).run()
    ablated_prefetch = PrefetchAttack(
        AttackEnvironment("vusion-nocd", frames=32768, seed=seed)
    ).run()
    result.rows.append(
        ["cache-disable bit", "prefetch sharing attack",
         "defeated" if not secure_prefetch.success else "LEAKS",
         "LEAKS" if ablated_prefetch.success else "defeated"]
    )
    result.checks["CD bit is load-bearing"] = (
        not secure_prefetch.success and ablated_prefetch.success
    )

    def merged_color_stability(engine_name: str, rounds: int = 4) -> int:
        env = AttackEnvironment(engine_name, frames=32768, seed=seed)
        secret = tagged_content("ab-rr")
        cand = env.attacker.mmap(1, name="ab-rr", mergeable=True)
        env.attacker.write(cand.start, secret)
        victim_vma = env.victim.mmap(1, name="ab-rrv", mergeable=True)
        env.victim.write(victim_vma.start, secret)
        colors = set()
        observations = 0
        for _ in range(rounds):
            env.wait_for_fusion(passes=3)
            walk = env.attacker.address_space.page_table.walk(cand.start)
            if walk is not None and walk.pte.fused:
                colors.add(env.kernel.llc.color_of_frame(walk.pte.pfn))
                observations += 1
            env.attacker.read(cand.start)
        return len(colors) if observations >= 3 else -1

    secure_colors = merged_color_stability("vusion")
    ablated_colors = merged_color_stability("vusion-norerand")
    result.rows.append(
        ["re-randomization (iii)", "distinct backing colors over 4 scans",
         secure_colors, ablated_colors]
    )
    result.checks["re-randomization is load-bearing"] = (
        secure_colors > 1 and ablated_colors == 1
    )
    return result


def run_ablation_performance(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    """§7.2: naive VUsion (no working-set estimation) under Apache."""
    result = ExperimentResult(
        "Ablation: working-set estimation under the Apache benchmark",
        headers=["system", "kreq/s", "relative", "CoA faults"],
    )
    configs = [
        NO_DEDUP,
        VUSION_CONFIG,
        VUSION_CONFIG.with_(label="VUsion (naive)", working_set=False),
    ]
    throughput = {}
    coa_counts = {}
    for config in configs:
        config = _scaled(config, scale)
        scenario, vms = _server_scenario(config, scale, seed)
        workload = ApacheWorkload(vms[0])
        _warm_up(scenario, workload, scale)
        coa_before = scenario.kernel.stats.coa_faults
        stats = workload.run(scale.requests)
        throughput[config.label] = stats.throughput_per_s
        coa_counts[config.label] = scenario.kernel.stats.coa_faults - coa_before
    base = throughput["No Dedup"]
    for label, value in throughput.items():
        result.rows.append(
            [label, round(value / 1000, 2), f"{value / base * 100:.1f}%",
             coa_counts[label]]
        )
        result.notes[label] = value / base
        result.notes[f"{label} coa"] = coa_counts[label]
    result.checks["naive VUsion is slower"] = (
        result.notes["VUsion (naive)"] < result.notes["VUsion"] - 0.02
    )
    result.checks["naive VUsion takes far more page faults"] = (
        result.notes["VUsion (naive) coa"] > 3 * max(1, result.notes["VUsion coa"])
    )
    return result


# ---------------------------------------------------------------------------
# §10.1: Memory Combining misses fusion opportunities
# ---------------------------------------------------------------------------
def run_memory_combining(scale: Scale = QUICK, seed: int = 1017) -> ExperimentResult:
    """Active fusion vs. Windows' swap-cache-only deduplication.

    The paper (§10.1): the current Windows Memory Combining design
    "misses substantial fusion opportunities compared to active page
    fusion".  Four same-image VMs idle while one keeps a working set
    warm; KSM merges everything, Memory Combining only what leaves the
    working set.
    """
    result = ExperimentResult(
        "§10.1: active fusion vs swap-cache deduplication",
        headers=["system", "saved frames", "vs KSM"],
    )
    image = DISTRO_IMAGES["debian"]
    configs = [
        _scaled(KSM_CONFIG, scale),
        _scaled(VUSION_CONFIG, scale),
        _scaled(
            KSM_CONFIG.with_(label="Memory Combining", engine="memory-combining",
                             khugepaged=None),
            scale,
        ),
    ]
    for config in configs:
        scenario = Scenario(config, frames=scale.frames, seed=seed)
        vms = [scenario.boot(image) for _ in range(scale.vms)]
        workload = ApacheWorkload(vms[0])
        # A live server keeps part of the duplicate-rich page cache hot.
        for _ in range(10):
            workload.run(max(1, scale.requests // 100))
            scenario.idle(scale.duration // 10)
        result.notes[config.label] = scenario.saved_frames()
    ksm_saved = max(1, result.notes["KSM"])
    for label, saved in result.notes.items():
        result.rows.append([label, saved, f"{saved / ksm_saved * 100:.0f}%"])
    result.checks["memory combining saves something"] = (
        result.notes["Memory Combining"] > 0
    )
    result.checks["but misses substantial opportunities vs KSM"] = (
        result.notes["Memory Combining"] < 0.85 * result.notes["KSM"]
    )
    result.checks["VUsion stays close to KSM"] = (
        result.notes["VUsion"] >= 0.8 * result.notes["KSM"]
    )
    return result


def run_fleet_consolidation(scale: Scale, seed: int) -> ExperimentResult:
    """Beyond-paper: the §9 trade-off at cloud-consolidation scale.

    Streams the ``consolidation`` fleet preset (VM churn, image
    families, idle/active/adversarial tenants) through all four system
    columns and reports fusion savings, measured attack surface
    (adversary probe hits) and scan overhead per system.
    """
    from repro.harness.fleet import FLEET_PRESETS, FleetDriver

    scale_name = "full" if scale == FULL else "quick"
    preset = FLEET_PRESETS["consolidation"]
    result = ExperimentResult(
        "fleet consolidation: savings vs attack surface vs scan overhead",
        headers=["system", "booted VMs", "peak saved", "probes",
                 "probe hits", "scan ms"],
    )
    for key in ("nodedup", "ksm", "vusion", "vusion_thp"):
        spec = preset.spec(system=key, scale=scale_name, seed=seed)
        totals = FleetDriver(spec).run().totals
        result.notes[key] = totals
        result.rows.append([
            spec.system.label,
            totals["booted_vms"],
            totals["peak_saved_frames"],
            totals["probes"],
            totals["probe_hits"],
            totals["scan_ns"] // 1_000_000,
        ])
    notes = result.notes
    result.checks["ksm saves memory at fleet scale"] = (
        notes["ksm"]["peak_saved_frames"] > 0
    )
    result.checks["vusion savings stay close to ksm"] = (
        notes["vusion"]["peak_saved_frames"]
        >= 0.5 * notes["ksm"]["peak_saved_frames"]
    )
    result.checks["adversary observes merges under ksm"] = (
        notes["ksm"]["probe_hits"] > 0
    )
    result.checks["adversary blind under vusion"] = (
        notes["vusion"]["probe_hits"] == 0
        and notes["vusion_thp"]["probe_hits"] == 0
    )
    result.checks["no-dedup exposes no surface"] = (
        notes["nodedup"]["probe_hits"] == 0
    )
    result.checks["streaming stays within the machine"] = all(
        totals["peak_frames_in_use"] <= preset.frames
        for totals in notes.values()
    )
    return result


# ---------------------------------------------------------------------------
# Registry (consumed by the CLI, the runner and the benchmark suite)
# ---------------------------------------------------------------------------
#: Named scale presets, so picklable task specs can reference sizing by
#: name instead of carrying a Scale object around.
SCALES: dict[str, Scale] = {"quick": QUICK, "full": FULL}


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible table/figure of the paper's evaluation."""

    name: str
    runner: Callable[[Scale, int], ExperimentResult]
    #: Table/figure/section of the paper this reproduces.
    paper_ref: str
    #: Key into :data:`SCALES` used when no scale is given explicitly.
    default_scale: str = "quick"
    #: Free-form selector tags (``repro run tag:<tag>``).  ``quick``
    #: marks experiments fast enough for smoke sweeps and CI.
    tags: tuple[str, ...] = ()
    #: Does the driver honour the Scale argument?  (Timing/attack
    #: experiments size themselves.)
    scalable: bool = True

    def run(self, scale: Scale | None = None, seed: int = 1017) -> ExperimentResult:
        return self.runner(scale or SCALES[self.default_scale], seed)


def _spec(name, runner, paper_ref, tags=(), scalable=True) -> ExperimentSpec:
    return ExperimentSpec(name=name, runner=runner, paper_ref=paper_ref,
                          tags=tuple(tags), scalable=scalable)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        _spec("table1", lambda scale, seed: run_table1_attack_matrix(seed=seed),
              "Table 1", tags=("security", "attacks"), scalable=False),
        _spec("fig3", lambda scale, seed: run_fig3_wpf_reuse(seed=seed),
              "Fig. 3", tags=("security", "quick"), scalable=False),
        _spec("fig4", run_fig4_coa_vs_cow, "Fig. 4", tags=("memory",)),
        _spec("fig5", lambda scale, seed: run_fig5_ksm_write_timing(seed=seed),
              "Fig. 5", tags=("timing", "quick"), scalable=False),
        _spec("fig6", lambda scale, seed: run_fig6_vusion_read_timing(seed=seed),
              "Fig. 6", tags=("timing", "quick"), scalable=False),
        _spec("ra", lambda scale, seed: run_ra_uniformity(seed=seed),
              "§9.1", tags=("security", "quick"), scalable=False),
        _spec("table2", run_table2_stream, "Table 2", tags=("performance",)),
        _spec("fig7", run_fig7_spec, "Fig. 7", tags=("performance", "suite")),
        _spec("fig8", run_fig8_parsec, "Fig. 8", tags=("performance", "suite")),
        _spec("table3", run_table3_page_types, "Table 3", tags=("memory",)),
        _spec("table4", run_table4_postmark, "Table 4",
              tags=("performance", "server")),
        _spec("table5", run_table5_apache, "Table 5",
              tags=("performance", "server")),
        _spec("table6_7", run_table6_7_keyvalue, "Tables 6/7",
              tags=("performance", "server")),
        _spec("fig9", run_fig9_thp_conservation, "Fig. 9", tags=("thp",)),
        _spec("fig10", run_fig10_idle_vms, "Fig. 10", tags=("memory",)),
        _spec("fig11", run_fig11_diverse_vms, "Fig. 11", tags=("memory",)),
        _spec("fig12", run_fig12_apache_memory, "Fig. 12", tags=("memory",)),
        _spec("ablation-security",
              lambda scale, seed: run_ablation_security(seed=seed),
              "§7.1 ablations", tags=("security", "ablation"), scalable=False),
        _spec("ablation-performance", run_ablation_performance,
              "§7.2 ablation", tags=("performance", "ablation")),
        _spec("memory-combining", run_memory_combining, "§10.1",
              tags=("memory",)),
        _spec("fleet", run_fleet_consolidation, "beyond paper: §9 at scale",
              tags=("fleet", "memory")),
    )
}


