"""Declarative, JSON-serializable scenario specifications.

A :class:`ScenarioSpec` describes a complete consolidation scenario —
which system column runs (:class:`~repro.harness.scenario.SystemConfig`),
what fleet of VMs arrives (:class:`FleetSpec`) and how the driver paces
them (:class:`ScheduleSpec`) — as plain validated dataclasses that
round-trip through JSON byte for byte.  The imperative
:class:`~repro.harness.scenario.Scenario` is the execution backend of a
spec (``Scenario.from_spec``); everything above it (runner tasks, CLI,
benchmarks) passes specs around instead of hand-wiring kernels.

Determinism: every random decision a spec implies (arrival jitter,
image choice, tenant roles, per-VM traffic) is keyed by a seed derived
from ``(spec.seed, stable label)`` through the runner's SHA-256
derivation (:func:`repro.runner.seeds.derive_seed`), so two runs of the
same spec — serial or parallel, today or in CI — replay identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any

from repro.harness.scenario import SystemConfig
from repro.params import MS, SECOND
# seeds is the runner's dependency-free leaf module (pure hashlib); the
# layering exemption for it is explicit in repro.check.rules.
from repro.runner.seeds import derive_seed

#: Bumped when the serialized shape changes incompatibly.
SPEC_VERSION = 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid spec: {message}")


@dataclass(frozen=True)
class FleetSpec:
    """What arrives: the VM population of a consolidation scenario."""

    #: Total VMs booted over the scenario's lifetime.
    vms: int = 8
    #: Distinct images in the registry; images cycle through the distro
    #: catalogue, so same-distro families share kernel/page-cache/stale
    #: pages even across different images.
    image_families: int = 2
    #: Pages per VM (split across regions in the paper's Table 3
    #: proportions).  Scaling total frames = vms * pages_per_vm.
    pages_per_vm: int = 448
    #: Tenant mix — fractions must sum to 1.
    idle_fraction: float = 0.625
    active_fraction: float = 0.25
    adversarial_fraction: float = 0.125
    #: Mean spacing between VM arrivals (simulated ns, jittered).
    arrival_interval_ns: int = 250 * MS
    #: Mean VM lifetime from boot to retirement (simulated ns).
    lifetime_ns: int = 4 * SECOND
    #: Relative jitter applied to arrivals and lifetimes (0 = none).
    churn_jitter: float = 0.5
    #: Peak co-resident VMs; arrivals beyond this wait for a departure.
    #: This is the streaming window that keeps peak RSS flat while the
    #: cumulative booted-frame count scales to millions.
    max_resident: int = 12

    def __post_init__(self) -> None:
        _require(self.vms >= 1, "fleet.vms must be >= 1")
        _require(1 <= self.image_families, "fleet.image_families must be >= 1")
        _require(self.pages_per_vm >= 16, "fleet.pages_per_vm must be >= 16")
        mix = (self.idle_fraction, self.active_fraction,
               self.adversarial_fraction)
        _require(all(f >= 0 for f in mix), "tenant fractions must be >= 0")
        _require(abs(sum(mix) - 1.0) < 1e-9,
                 f"tenant fractions must sum to 1 (got {sum(mix)})")
        _require(self.arrival_interval_ns > 0,
                 "fleet.arrival_interval_ns must be positive")
        _require(self.lifetime_ns > 0, "fleet.lifetime_ns must be positive")
        _require(0.0 <= self.churn_jitter < 1.0,
                 "fleet.churn_jitter must be in [0, 1)")
        _require(self.max_resident >= 1, "fleet.max_resident must be >= 1")

    @property
    def total_pages(self) -> int:
        """Cumulative pages booted over the whole scenario."""
        return self.vms * self.pages_per_vm


@dataclass(frozen=True)
class ScheduleSpec:
    """How the driver paces a fleet: chunking, sampling, guest traffic."""

    #: VMs booted per driver step — the streaming chunk size.
    boot_chunk: int = 4
    #: Simulated time between driver steps (guest traffic + churn).
    tick_ns: int = 125 * MS
    #: Simulated time between memory samples.
    sample_interval_ns: int = 500 * MS
    #: Tail idle after the last departure, letting engines converge.
    settle_ns: int = 2 * SECOND
    #: Guest-side operations per tick for active tenants.
    active_ops: int = 4
    #: Duplicate-content probe pages per adversarial tenant.
    adversary_probes: int = 4

    def __post_init__(self) -> None:
        _require(self.boot_chunk >= 1, "schedule.boot_chunk must be >= 1")
        _require(self.tick_ns > 0, "schedule.tick_ns must be positive")
        _require(self.sample_interval_ns >= self.tick_ns,
                 "schedule.sample_interval_ns must be >= tick_ns")
        _require(self.settle_ns >= 0, "schedule.settle_ns must be >= 0")
        _require(self.active_ops >= 0, "schedule.active_ops must be >= 0")
        _require(self.adversary_probes >= 0,
                 "schedule.adversary_probes must be >= 0")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable consolidation scenario."""

    name: str
    system: SystemConfig
    fleet: FleetSpec = field(default_factory=FleetSpec)
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)
    #: Machine size in frames (fixed; the fleet streams through it).
    frames: int = 32768
    #: Root seed; all per-VM seeds derive from it (see :meth:`vm_seed`).
    seed: int = 1017
    #: Logical NUMA-style shard topology (see :mod:`repro.mem.shard`).
    #: Part of the scenario's *semantics* — each shard is an
    #: independent node of ``frames // shards`` frames running its own
    #: scan passes, stitched by the content-id exchange.  How many
    #: worker processes execute the shards is a runner decision
    #: (``--shards`` on the CLI) and never changes results.
    shards: int = 1

    def __post_init__(self) -> None:
        _require(bool(self.name), "name must be non-empty")
        _require(isinstance(self.system, SystemConfig),
                 "system must be a SystemConfig")
        _require(self.frames >= 1024, "frames must be >= 1024")
        _require(self.seed >= 0, "seed must be >= 0")
        _require(isinstance(self.shards, int) and self.shards >= 1,
                 "shards must be an integer >= 1")
        _require(self.frames % self.shards == 0,
                 f"frames ({self.frames}) must divide evenly into "
                 f"{self.shards} shard(s)")
        _require(self.frames // self.shards >= 1024,
                 f"per-shard frames ({self.frames // self.shards}) must be "
                 ">= 1024; lower shards or raise frames")
        # The streaming window must fit the machine: peak co-resident
        # pages (plus THP/pool slack) cannot exceed physical frames.
        # Under sharding the same must hold per node, with VMs dealt
        # round-robin and the residency window split across shards.
        shard_vms = -(-self.fleet.vms // self.shards)
        resident = min(shard_vms, self.shard_max_resident)
        peak = resident * self.fleet.pages_per_vm
        where = ("machine" if self.shards == 1
                 else f"shard's ({self.frames // self.shards})")
        _require(peak <= self.frames // self.shards,
                 f"max co-resident pages ({peak}) exceed {where} frames; "
                 "lower fleet.max_resident or fleet.pages_per_vm, or "
                 "raise frames")

    @property
    def shard_max_resident(self) -> int:
        """Per-shard residency window: the global window, split evenly
        (rounded up) across shards."""
        return max(1, -(-self.fleet.max_resident // self.shards))

    def with_(self, **overrides: Any) -> "ScenarioSpec":
        return replace(self, **overrides)

    # -- derived seeds --------------------------------------------------
    def derived_seed(self, label: str) -> int:
        """Seed for one named random decision within this scenario."""
        return derive_seed(self.seed, f"scenario:{self.name}:{label}")

    def vm_seed(self, index: int) -> int:
        """Per-VM seed: stable under any change to *other* VMs."""
        return self.derived_seed(f"vm{index}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "system": asdict(self.system),
            "fleet": asdict(self.fleet),
            "schedule": asdict(self.schedule),
            "frames": self.frames,
            "seed": self.seed,
            "shards": self.shards,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        _require(isinstance(data, dict), "spec document must be an object")
        payload = dict(data)
        version = payload.pop("version", SPEC_VERSION)
        _require(version == SPEC_VERSION,
                 f"unsupported spec version {version!r} "
                 f"(this build reads version {SPEC_VERSION})")
        system = payload.pop("system", None)
        _require(system is not None, "missing required key 'system'")
        if isinstance(system, str):
            system_config = SystemConfig.preset(system)
        else:
            system_config = _load_section(SystemConfig, system, "system")
        fleet = _load_section(FleetSpec, payload.pop("fleet", {}), "fleet")
        schedule = _load_section(ScheduleSpec, payload.pop("schedule", {}),
                                 "schedule")
        known = {"name", "frames", "seed", "shards"}
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown key(s) {', '.join(unknown)}")
        _require("name" in payload, "missing required key 'name'")
        return cls(
            name=payload["name"],
            system=system_config,
            fleet=fleet,
            schedule=schedule,
            frames=payload.get("frames", 32768),
            seed=payload.get("seed", 1017),
            shards=payload.get("shards", 1),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- schema ---------------------------------------------------------
    @classmethod
    def schema(cls) -> dict:
        """Field -> type-name map of the serialized form.

        Pinned by ``tests/data/scenario_spec_schema.golden.json`` so a
        field rename/retype shows up as a reviewed diff, not a silent
        compatibility break for saved specs.
        """
        def section(datacls) -> dict:
            return {
                f.name: str(f.type)
                for f in sorted(fields(datacls), key=lambda f: f.name)
            }

        return {
            "version": SPEC_VERSION,
            "scenario": {
                "name": "str",
                "system": "SystemConfig | preset name",
                "fleet": "FleetSpec",
                "schedule": "ScheduleSpec",
                "frames": "int",
                "seed": "int",
                "shards": "int",
            },
            "system": section(SystemConfig),
            "fleet": section(FleetSpec),
            "schedule": section(ScheduleSpec),
        }


def _load_section(datacls, data: Any, where: str):
    """Build one nested section strictly (unknown keys rejected)."""
    _require(isinstance(data, dict), f"{where} must be an object")
    known = {f.name for f in fields(datacls)}
    unknown = sorted(set(data) - known)
    _require(not unknown,
             f"unknown {where} key(s) {', '.join(unknown)}")
    values = {key: _load_value(value) for key, value in data.items()}
    try:
        return datacls(**values)
    except TypeError as exc:  # e.g. a required field is missing
        raise ValueError(f"invalid spec: bad {where} section: {exc}") from None


def _load_value(value: Any) -> Any:
    # JSON has no tuples; frozen dataclass fields that were tuples come
    # back as lists and are restored here.
    if isinstance(value, list):
        return tuple(_load_value(item) for item in value)
    return value
