"""Sharded execution of one fleet scenario.

A :class:`~repro.harness.spec.ScenarioSpec` with ``shards > 1``
describes a NUMA-style machine: ``shards`` independent nodes of
``frames // shards`` frames each, the VM plan dealt round-robin across
them, stitched together by the per-round content-id exchange of
:mod:`repro.mem.shard`.  This module runs one node
(:class:`ShardFleetDriver` / :func:`run_one_shard`), and recombines the
per-shard results into one global :class:`~repro.harness.fleet
.FleetResult` (:func:`combine_shard_results`).

Determinism: a shard run is a pure function of ``(spec, shard)`` — its
plan slice, machine seed, and every simulated charge derive from the
spec alone — and the recombination is a pure, ``(shard, pfn)``-ordered
fold over the shard results.  Any execution (one process, N workers,
a crashed-and-retried worker) therefore produces byte-identical
samples, totals and exchange telemetry; the parallel entry point lives
in :mod:`repro.runner.shardpool` and proves exactly that contract.

``shards == 1`` is, by construction, the plain serial
:class:`~repro.harness.fleet.FleetDriver` — same machine, same plan,
same windows, no exchange accounts — so enabling the topology knob
never perturbs existing scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.fleet import FleetDriver, FleetResult, FleetSample, generate_plan
from repro.harness.scenario import Scenario
from repro.harness.spec import ScenarioSpec
from repro.mem.shard import (
    EXCHANGE_ENTRY_NS,
    RemoteShareLedger,
    ShardContentTable,
    ShardExchangeError,
    ShardMap,
)

#: Daemon account the exchange's simulated service is booked to.
EXCHANGE_DAEMON = "shardx"


class ShardFleetDriver(FleetDriver):
    """One shard's sub-simulation: an independent node running its
    round-robin slice of the global plan.

    The node's machine has ``frames // shards`` frames, a residency
    window of :attr:`ScenarioSpec.shard_max_resident`, and its own
    derived machine seed.  Per-VM seeds ride in the plan entries, so a
    VM behaves identically wherever it lands.  Every sample boundary
    doubles as an exchange round: the engine's exportable digests are
    canonicalized into a :class:`ShardContentTable` and the
    interconnect service for shipping it is booked to the ``shardx``
    daemon account off the critical path.
    """

    def __init__(self, spec: ScenarioSpec, shard: int, on_round=None) -> None:
        shard_map = ShardMap(shards=spec.shards, frames=spec.frames)
        if not 0 <= shard < spec.shards:
            raise ValueError(f"shard {shard} outside [0, {spec.shards})")
        self.shard = shard
        self.shard_map = shard_map
        self.on_round = on_round
        self.tables: list[ShardContentTable] = []
        plan = [entry for entry in generate_plan(spec)
                if shard_map.shard_of_vm(entry.index) == shard]
        scenario = Scenario(
            spec.system,
            frames=shard_map.frames_per_shard,
            seed=spec.derived_seed(f"shard{shard}:machine"),
        )
        super().__init__(spec, scenario=scenario, plan=plan,
                         max_resident=spec.shard_max_resident)

    def _sample(self) -> None:
        super()._sample()
        engine = self.scenario.engine
        kernel = self.scenario.kernel
        rows = engine.shard_export() if engine is not None else []
        table = ShardContentTable.build(
            shard=self.shard, round_no=len(self.tables),
            generation=kernel.clock.now, rows=rows,
        )
        # Shipping the table is interconnect service, not node stall:
        # booked after the sample it ships, visible from the next one.
        kernel.charge_service(EXCHANGE_DAEMON,
                              EXCHANGE_ENTRY_NS * len(table.entries))
        self.tables.append(table)
        if self.on_round is not None:
            self.on_round(self, table)


@dataclass
class ShardRunResult:
    """Everything one shard contributes to the recombination."""

    shard: int
    samples: list[FleetSample]
    totals: dict
    tables: list[ShardContentTable]
    #: FrameSan ledger-audit findings for this node (empty = clean;
    #: only populated when the run is sanitized).
    audit: list[str] = field(default_factory=list)


def run_one_shard(spec: ScenarioSpec, shard: int,
                  on_round=None) -> ShardRunResult:
    """Run one node to completion; pure in ``(spec, shard)``."""
    driver = ShardFleetDriver(spec, shard, on_round=on_round)
    result = driver.run()
    kernel = driver.scenario.kernel
    audit: list[str] = []
    if kernel.sanitizer is not None:
        audit = list(kernel.sanitizer.audit(driver.scenario.engine))
    return ShardRunResult(shard=shard, samples=list(result.samples),
                          totals=dict(result.totals),
                          tables=list(driver.tables), audit=audit)


# ---------------------------------------------------------------------------
# Recombination
# ---------------------------------------------------------------------------
def _round_tables(results: list[ShardRunResult],
                  round_no: int) -> list[ShardContentTable]:
    """The tables on the fabric at round ``round_no``.

    A node that finished early keeps advertising its final table — its
    content is still resident and shareable — so late rounds of
    long-running shards can still merge against it.
    """
    tables = []
    for result in results:
        if not result.tables:
            continue
        index = min(round_no, len(result.tables) - 1)
        tables.append(result.tables[index])
    return tables


def _combined_sample(results: list[ShardRunResult],
                     round_no: int) -> FleetSample:
    picked = []
    for result in results:
        index = min(round_no, len(result.samples) - 1)
        picked.append(result.samples[index])
    total = {
        name: sum(getattr(sample, name) for sample in picked)
        for name in (
            "booted", "retired", "resident", "frames_in_use",
            "saved_frames", "pages_shared", "pages_sharing", "probes",
            "probe_hits", "pages_scanned", "scan_ns", "cow_faults",
            "coa_faults",
        )
    }
    return FleetSample(t_ns=max(s.t_ns for s in picked), **total)


_SUMMED_TOTALS = (
    "booted_vms", "retired_vms", "booted_pages", "peak_resident_vms",
    "peak_frames_in_use", "final_frames_in_use", "final_saved_frames",
    "peak_saved_frames", "probes", "probe_hits", "cow_faults",
    "coa_faults", "merges", "fake_merges", "pages_scanned",
)


def combine_shard_results(spec: ScenarioSpec,
                          results: list[ShardRunResult],
                          on_exchange=None) -> FleetResult:
    """Fold per-shard results into the global scenario result.

    Replays the exchange round by round through a
    :class:`RemoteShareLedger` (each round independently verified —
    the global half of the ledger audit), raises on any per-shard
    FrameSan finding, and recombines samples and totals exactly:
    counters sum, clocks take the fabric-wide maximum, and every
    ``daemon_ns`` account merges name by name.
    """
    results = sorted(results, key=lambda result: result.shard)
    expected = list(range(spec.shards))
    if [result.shard for result in results] != expected:
        raise ShardExchangeError(
            f"shard results incomplete: have "
            f"{[result.shard for result in results]}, need {expected}"
        )
    dirty = [result.shard for result in results if result.audit]
    if dirty:
        findings = "; ".join(
            f"shard {result.shard}: {problem}"
            for result in results for problem in result.audit
        )
        raise ShardExchangeError(
            f"per-shard FrameSan ledger audit failed on shard(s) "
            f"{dirty}: {findings}"
        )

    ledger = RemoteShareLedger()
    rounds = max(len(result.tables) for result in results)
    exchanged = applied = stale = 0
    resolve_ns = 0
    remote_saved = 0
    for round_no in range(rounds):
        outcome = ledger.resolve_round(_round_tables(results, round_no),
                                       round_no=round_no)
        exchanged += outcome.exchanged_cids
        applied += outcome.applied
        stale += outcome.stale_entries_dropped
        resolve_ns += outcome.charge_ns()
        remote_saved = outcome.remote_saved_frames
        if on_exchange is not None:
            on_exchange(outcome)

    combined = FleetResult()
    combined.samples = [_combined_sample(results, round_no)
                        for round_no in range(rounds)]

    totals: dict = {
        name: sum(result.totals[name] for result in results)
        for name in _SUMMED_TOTALS
    }
    daemon_ns: dict[str, int] = {}
    for result in results:
        for name, ns in result.totals["daemon_ns"].items():
            daemon_ns[name] = daemon_ns.get(name, 0) + ns
    # The coordinator's resolution service joins the interconnect
    # account; both are off every node's critical path.
    if resolve_ns:
        daemon_ns[EXCHANGE_DAEMON] = (
            daemon_ns.get(EXCHANGE_DAEMON, 0) + resolve_ns
        )
    totals["daemon_ns"] = {name: daemon_ns[name]
                           for name in sorted(daemon_ns)}
    totals["scan_ns"] = sum(daemon_ns.values())
    totals["clock_ns"] = max(result.totals["clock_ns"]
                             for result in results)
    totals["shards"] = spec.shards
    totals["exchange"] = {
        "rounds": rounds,
        "exchanged_cids": exchanged,
        "merge_intents_applied": applied,
        "remote_saved_frames": remote_saved,
        "stale_entries_dropped": stale,
        "resolve_ns": resolve_ns,
    }
    totals["per_shard"] = [
        {
            "shard": result.shard,
            "booted_vms": result.totals["booted_vms"],
            "booted_pages": result.totals["booted_pages"],
            "pages_scanned": result.totals["pages_scanned"],
            "clock_ns": result.totals["clock_ns"],
            "rounds": len(result.tables),
        }
        for result in results
    ]
    _global_audit(spec, results, totals)
    combined.totals = totals
    return combined


def _global_audit(spec: ScenarioSpec, results: list[ShardRunResult],
                  totals: dict) -> None:
    """Fabric-wide ledger audit over the recombined books."""
    planned = len(generate_plan(spec))
    if totals["booted_vms"] != planned or totals["retired_vms"] != planned:
        raise ShardExchangeError(
            f"global ledger audit: booted/retired "
            f"({totals['booted_vms']}/{totals['retired_vms']}) != planned "
            f"fleet size {planned}"
        )
    if totals["booted_pages"] != planned * spec.fleet.pages_per_vm:
        raise ShardExchangeError(
            "global ledger audit: booted_pages diverges from the plan"
        )
    for result in results:
        if result.totals["final_frames_in_use"] < 0:
            raise ShardExchangeError(
                f"global ledger audit: shard {result.shard} reports "
                f"negative frames in use"
            )


def run_sharded_serial(spec: ScenarioSpec, on_round=None,
                       on_exchange=None) -> FleetResult:
    """Reference executor: every shard in this process, in order.

    ``shards == 1`` short-circuits to the plain serial driver (the
    exact pre-sharding code path).  This is both the degraded mode of
    the shard pool and the byte-identity baseline its tests compare
    against.
    """
    if spec.shards == 1:
        return FleetDriver(spec).run()
    results = [run_one_shard(spec, shard, on_round=on_round)
               for shard in range(spec.shards)]
    return combine_shard_results(spec, results, on_exchange=on_exchange)
