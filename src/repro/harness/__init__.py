"""Experiment harness: system configurations and per-figure drivers."""

from repro.harness.fleet import (
    FLEET_PRESETS,
    FleetDriver,
    FleetPreset,
    FleetResult,
    FleetSample,
    fleet_images,
    generate_plan,
    run_fleet,
)
from repro.harness.scenario import (
    KSM_CONFIG,
    NO_DEDUP,
    PRESETS,
    Scenario,
    STANDARD_CONFIGS,
    SystemConfig,
    VUSION_CONFIG,
    VUSION_THP_CONFIG,
)
from repro.harness.spec import (
    FleetSpec,
    ScenarioSpec,
    ScheduleSpec,
    SPEC_VERSION,
)

__all__ = [
    "FLEET_PRESETS",
    "FleetDriver",
    "FleetPreset",
    "FleetResult",
    "FleetSample",
    "FleetSpec",
    "KSM_CONFIG",
    "NO_DEDUP",
    "PRESETS",
    "STANDARD_CONFIGS",
    "SPEC_VERSION",
    "Scenario",
    "ScenarioSpec",
    "ScheduleSpec",
    "SystemConfig",
    "VUSION_CONFIG",
    "VUSION_THP_CONFIG",
    "fleet_images",
    "generate_plan",
    "run_fleet",
]
