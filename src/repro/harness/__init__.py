"""Experiment harness: system configurations and per-figure drivers."""

from repro.harness.scenario import (
    KSM_CONFIG,
    NO_DEDUP,
    Scenario,
    STANDARD_CONFIGS,
    SystemConfig,
    VUSION_CONFIG,
    VUSION_THP_CONFIG,
)

__all__ = [
    "KSM_CONFIG",
    "NO_DEDUP",
    "STANDARD_CONFIGS",
    "Scenario",
    "SystemConfig",
    "VUSION_CONFIG",
    "VUSION_THP_CONFIG",
]
