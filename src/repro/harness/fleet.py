"""Cloud-consolidation fleets: generator, streaming driver, presets.

The paper evaluates VUsion on a handful of co-hosted VMs; this module
scales the same trade-off — fusion savings vs. attack surface vs. scan
overhead — to consolidation workloads: hundreds of VMs arriving and
departing over time, booted from a registry of image families that
share distro pages, with a tenant mix of idle, active and adversarial
guests.

Everything is driven by a declarative :class:`~repro.harness.spec
.ScenarioSpec`.  :func:`generate_plan` expands the spec into a
deterministic arrival/lifetime/role plan; :class:`FleetDriver` executes
the plan *streaming*: VMs boot in chunks and retire when their lease
ends, so at most ``fleet.max_resident`` VMs are co-resident and peak
host memory stays flat while the cumulative booted-frame count scales
to millions (the staged-scale benchmark drives 20k → 2M frames through
a fixed-size machine this way).

Tenant roles:

* **idle** — occasional page-cache reads (the Fig. 10 initial
  condition); their RAM is the fusion opportunity.
* **active** — a skewed write working set over their app pages plus
  page-cache reads; their churn is what CoW/CoA overheads price.
* **adversarial** — a memory-disclosure tenant playing the
  distinguishing game from the attack suite: it plants candidate pages
  duplicating another family's page-cache content next to unique
  control pages, and times same-content rewrites of both.  Under KSM
  the candidate's CoW break is visibly slower than the control's plain
  store; under VUsion both pages are fused (merged or fake-merged) and
  behave identically.  ``probe_hits`` is therefore a measured attack
  surface, not a ground-truth peek.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.harness.scenario import Scenario, SystemConfig
from repro.harness.spec import FleetSpec, ScenarioSpec, ScheduleSpec
from repro.mem.content import tagged_content
from repro.params import MS, SECOND
from repro.workloads.base import skewed_index
from repro.workloads.vm_image import GuestVm, VmImageSpec

#: Distro catalogue image families cycle through (same-distro families
#: share kernel/page-cache/stale pages — the cross-image dedup pool).
FLEET_DISTROS = (
    "debian-9", "ubuntu-16.04", "centos-7", "debian-8",
    "ubuntu-14.04", "fedora-25",
)

#: Region proportions of the default 1792-page image (Table 3 shape).
_REGION_WEIGHTS = (
    ("kernel_pages", 128),
    ("page_cache_pages", 768),
    ("free_pages", 640),
    ("app_pages", 256),
)
_WEIGHT_TOTAL = sum(weight for _, weight in _REGION_WEIGHTS)


def fleet_images(fleet: FleetSpec) -> list[VmImageSpec]:
    """The image registry of a fleet: ``image_families`` images of
    ``pages_per_vm`` pages each, keeping the Table 3 region mix."""
    images = []
    for index in range(fleet.image_families):
        sizes = {}
        allocated = 0
        for name, weight in _REGION_WEIGHTS[:-1]:
            pages = max(4, fleet.pages_per_vm * weight // _WEIGHT_TOTAL)
            sizes[name] = pages
            allocated += pages
        sizes["app_pages"] = max(4, fleet.pages_per_vm - allocated)
        images.append(
            VmImageSpec(
                name=f"fleet-{index:02d}",
                distro=FLEET_DISTROS[index % len(FLEET_DISTROS)],
                **sizes,
            )
        )
    return images


@dataclass(frozen=True)
class VmPlan:
    """One VM's deterministic slot in the consolidation schedule."""

    index: int
    name: str
    image_index: int
    role: str                 #: "idle" | "active" | "adversarial"
    arrival_ns: int           #: Nominal arrival (may wait for a slot).
    lifetime_ns: int          #: Boot-to-retirement lease.
    seed: int                 #: Per-VM seed (drives its traffic RNG).


def _role_sequence(fleet: FleetSpec, rng: random.Random) -> list[str]:
    """Tenant roles for the whole fleet, fractions rounded to counts."""
    adversarial = round(fleet.vms * fleet.adversarial_fraction)
    active = round(fleet.vms * fleet.active_fraction)
    adversarial = min(adversarial, fleet.vms)
    active = min(active, fleet.vms - adversarial)
    roles = (
        ["adversarial"] * adversarial
        + ["active"] * active
        + ["idle"] * (fleet.vms - adversarial - active)
    )
    rng.shuffle(roles)
    return roles


def generate_plan(spec: ScenarioSpec) -> list[VmPlan]:
    """Expand a spec into its deterministic arrival plan.

    Pure in the spec: arrivals, jitter, image choice and roles all come
    from RNGs seeded via :meth:`ScenarioSpec.derived_seed`, so the same
    spec yields the same plan on any host, worker or run.
    """
    fleet = spec.fleet
    rng = random.Random(spec.derived_seed("plan"))
    roles = _role_sequence(fleet, rng)
    plans = []
    arrival = 0
    for index in range(fleet.vms):
        jitter = 1.0 + fleet.churn_jitter * (2 * rng.random() - 1.0)
        arrival += max(1, int(fleet.arrival_interval_ns * jitter))
        life_jitter = 1.0 + fleet.churn_jitter * (2 * rng.random() - 1.0)
        lifetime = max(MS, int(fleet.lifetime_ns * life_jitter))
        plans.append(
            VmPlan(
                index=index,
                name=f"vm{index:04d}",
                image_index=rng.randrange(fleet.image_families),
                role=roles[index],
                arrival_ns=arrival,
                lifetime_ns=lifetime,
                seed=spec.vm_seed(index),
            )
        )
    return plans


@dataclass(frozen=True)
class FleetSample:
    """One point of the scenario's time series (simulated state only)."""

    t_ns: int
    booted: int
    retired: int
    resident: int
    frames_in_use: int
    saved_frames: int
    pages_shared: int
    pages_sharing: int
    probes: int
    probe_hits: int
    pages_scanned: int
    scan_ns: int
    cow_faults: int
    coa_faults: int


@dataclass
class FleetResult:
    """Outcome of one streaming fleet run."""

    samples: list[FleetSample] = field(default_factory=list)
    totals: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        """Canonical JSON-able payload (what artifacts byte-compare)."""
        return {
            "samples": [asdict(sample) for sample in self.samples],
            "totals": self.totals,
        }


class _ResidentVm:
    """Driver-side state of one booted, not-yet-retired VM."""

    def __init__(self, plan: VmPlan, vm: GuestVm, depart_at: int) -> None:
        self.plan = plan
        self.vm = vm
        self.depart_at = depart_at
        self.rng = random.Random(plan.seed)
        self.ops = 0
        #: Adversary probe pages: (candidate_addr, candidate_content,
        #: control_addr, control_content) tuples.
        self.probes: list[tuple[int, object, int, object]] = []


class FleetDriver:
    """Executes a :class:`ScenarioSpec`'s fleet plan, streaming.

    ``scenario`` defaults to ``Scenario.from_spec(spec)``; passing an
    imperatively built equivalent is how the differential tests prove
    the spec layer adds no behaviour of its own.  ``on_chunk(driver,
    event)`` fires after every boot/retire chunk and sample — the
    staged-scale benchmark hangs its host-RSS sampling there, keeping
    nondeterministic host measurements out of the simulated results.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        scenario: Scenario | None = None,
        on_chunk=None,
        plan: list[VmPlan] | None = None,
        max_resident: int | None = None,
    ) -> None:
        self.spec = spec
        self.scenario = scenario or Scenario.from_spec(spec)
        self.on_chunk = on_chunk
        self.images = fleet_images(spec.fleet)
        #: ``plan``/``max_resident`` injection is how the shard driver
        #: (repro.harness.shardfleet) runs one node's slice of the
        #: global plan inside a smaller machine and residency window;
        #: the defaults reproduce the serial driver exactly.
        self.plan = generate_plan(spec) if plan is None else list(plan)
        self.max_resident = (spec.fleet.max_resident
                             if max_resident is None else max_resident)
        self.result = FleetResult()
        self.booted = 0
        self.retired = 0
        self.probes = 0
        self.probe_hits = 0
        self.peak_resident = 0
        self.peak_frames_in_use = 0
        self.peak_saved_frames = 0
        self._resident: list[_ResidentVm] = []

    # -- event hooks ----------------------------------------------------
    def _chunk(self, event: str) -> None:
        if self.on_chunk is not None:
            self.on_chunk(self, event)

    # -- lifecycle ------------------------------------------------------
    def _boot_one(self, plan: VmPlan, now: int) -> None:
        vm = self.scenario.boot(self.images[plan.image_index], name=plan.name)
        resident = _ResidentVm(plan, vm, depart_at=now + plan.lifetime_ns)
        if plan.role == "adversarial":
            self._plant_probes(resident)
        self._resident.append(resident)
        self.booted += 1
        self.peak_resident = max(self.peak_resident, len(self._resident))

    def _retire_due(self, now: int) -> int:
        due = [r for r in self._resident if r.depart_at <= now]
        for resident in due:
            self.scenario.retire(resident.vm)
            self._resident.remove(resident)
            self.retired += 1
        return len(due)

    def _plant_probes(self, resident: _ResidentVm) -> None:
        """Set up the distinguishing game in the VM's app region.

        Candidates duplicate the page cache of the *next* image family
        (cross-tenant content the adversary guesses a victim holds);
        controls are unique.  Probing times same-content rewrites of
        both — exactly the architectural information an attacker has.
        """
        plan = resident.plan
        victim = self.images[(plan.image_index + 1) % len(self.images)]
        vm = resident.vm
        probes = min(self.spec.schedule.adversary_probes,
                     vm.image.app_pages // 2)
        for slot in range(probes):
            candidate_addr = vm.page_addr("rest", 2 * slot)
            control_addr = vm.page_addr("rest", 2 * slot + 1)
            candidate = tagged_content("guest-page-cache", victim.distro, slot)
            control = tagged_content("fleet-adv-control", plan.name, slot)
            vm.process.write(candidate_addr, candidate)
            vm.process.write(control_addr, control)
            resident.probes.append(
                (candidate_addr, candidate, control_addr, control)
            )

    # -- per-tick guest traffic ----------------------------------------
    def _tick_idle(self, resident: _ResidentVm) -> None:
        if resident.ops % 4 == 0:
            vm = resident.vm
            vm.process.read(
                vm.page_addr("page_cache",
                             resident.rng.randrange(vm.image.page_cache_pages))
            )
        resident.ops += 1

    def _tick_active(self, resident: _ResidentVm) -> None:
        vm = resident.vm
        for _ in range(self.spec.schedule.active_ops):
            index = skewed_index(resident.rng, vm.image.app_pages)
            vm.process.write(
                vm.page_addr("rest", index),
                tagged_content("fleet-app", resident.plan.name,
                               index, resident.ops),
            )
            resident.ops += 1
        vm.process.read(
            vm.page_addr("page_cache",
                         resident.rng.randrange(vm.image.page_cache_pages))
        )

    def _tick_adversarial(self, resident: _ResidentVm) -> None:
        threshold = self.scenario.kernel.costs.copy_page
        for candidate_addr, candidate, control_addr, control in resident.probes:
            cand_ns = resident.vm.process.write(candidate_addr,
                                                candidate).latency
            ctrl_ns = resident.vm.process.write(control_addr,
                                                control).latency
            self.probes += 1
            if cand_ns - ctrl_ns > threshold:
                self.probe_hits += 1
        resident.ops += 1

    _TICKS = {
        "idle": _tick_idle,
        "active": _tick_active,
        "adversarial": _tick_adversarial,
    }

    # -- sampling -------------------------------------------------------
    def _sample(self) -> None:
        scenario = self.scenario
        kernel = scenario.kernel
        engine = scenario.engine
        if engine is not None:
            shared, sharing = engine.sharing_pairs()
            pages_scanned = engine.stats.pages_scanned
        else:
            shared = sharing = pages_scanned = 0
        frames_in_use = kernel.frames_in_use()
        saved_frames = scenario.saved_frames()
        self.peak_frames_in_use = max(self.peak_frames_in_use, frames_in_use)
        self.peak_saved_frames = max(self.peak_saved_frames, saved_frames)
        self.result.samples.append(
            FleetSample(
                t_ns=kernel.clock.now,
                booted=self.booted,
                retired=self.retired,
                resident=len(self._resident),
                frames_in_use=frames_in_use,
                saved_frames=saved_frames,
                pages_shared=shared,
                pages_sharing=sharing,
                probes=self.probes,
                probe_hits=self.probe_hits,
                pages_scanned=pages_scanned,
                scan_ns=sum(kernel.stats.daemon_ns.values()),
                cow_faults=kernel.stats.cow_faults,
                coa_faults=kernel.stats.coa_faults,
            )
        )
        self._chunk("sample")

    # -- main loop ------------------------------------------------------
    def run(self) -> FleetResult:
        spec = self.spec
        schedule = spec.schedule
        kernel = self.scenario.kernel
        pending = list(self.plan)  # already arrival-ordered
        cursor = 0
        next_sample = kernel.clock.now + schedule.sample_interval_ns
        while cursor < len(pending) or self._resident:
            now = kernel.clock.now
            if self._retire_due(now):
                self._chunk("retire")
            boots = 0
            while (
                cursor < len(pending)
                and pending[cursor].arrival_ns <= now
                and len(self._resident) < self.max_resident
                and boots < schedule.boot_chunk
            ):
                self._boot_one(pending[cursor], now)
                cursor += 1
                boots += 1
            if boots:
                self._chunk("boot")
            for resident in list(self._resident):
                self._TICKS[resident.plan.role](self, resident)
            kernel.idle(schedule.tick_ns)
            if kernel.clock.now >= next_sample:
                self._sample()
                next_sample += schedule.sample_interval_ns
        settle_end = kernel.clock.now + schedule.settle_ns
        while kernel.clock.now < settle_end:
            kernel.idle(min(schedule.sample_interval_ns,
                            settle_end - kernel.clock.now))
            self._sample()
        if not self.result.samples:
            self._sample()
        self._finalize()
        return self.result

    def _finalize(self) -> None:
        scenario = self.scenario
        kernel = scenario.kernel
        engine = scenario.engine
        totals = {
            "booted_vms": self.booted,
            "retired_vms": self.retired,
            "booted_pages": self.booted * self.spec.fleet.pages_per_vm,
            "peak_resident_vms": self.peak_resident,
            "peak_frames_in_use": self.peak_frames_in_use,
            "final_frames_in_use": kernel.frames_in_use(),
            "final_saved_frames": scenario.saved_frames(),
            "peak_saved_frames": self.peak_saved_frames,
            "probes": self.probes,
            "probe_hits": self.probe_hits,
            "cow_faults": kernel.stats.cow_faults,
            "coa_faults": kernel.stats.coa_faults,
            "scan_ns": sum(kernel.stats.daemon_ns.values()),
            "daemon_ns": {name: kernel.stats.daemon_ns[name]
                          for name in sorted(kernel.stats.daemon_ns)},
            "clock_ns": kernel.clock.now,
        }
        if engine is not None:
            totals["merges"] = engine.stats.merges
            totals["fake_merges"] = engine.stats.fake_merges
            totals["pages_scanned"] = engine.stats.pages_scanned
        else:
            totals["merges"] = totals["fake_merges"] = 0
            totals["pages_scanned"] = 0
        self.result.totals = totals


def run_fleet(spec: ScenarioSpec, scenario: Scenario | None = None,
              on_chunk=None) -> FleetResult:
    """Convenience wrapper: build the driver and run it to completion."""
    return FleetDriver(spec, scenario=scenario, on_chunk=on_chunk).run()


# ---------------------------------------------------------------------------
# Presets (consumed by the runner's fleet tasks and the CLI)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FleetPreset:
    """A named, scale-aware fleet scenario family."""

    name: str
    description: str
    fleet_quick: FleetSpec
    fleet_full: FleetSpec
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)
    frames: int = 32768
    #: Logical NUMA shard topology of the scenario (semantic; worker
    #: processes are a separate, result-neutral runner knob).
    shards: int = 1

    def spec(self, system: str = "ksm", scale: str = "quick",
             seed: int = 1017) -> ScenarioSpec:
        if scale not in ("quick", "full"):
            raise ValueError(f"unknown scale {scale!r} (quick or full)")
        fleet = self.fleet_full if scale == "full" else self.fleet_quick
        return ScenarioSpec(
            name=f"{self.name}-{system}",
            system=SystemConfig.preset(system),
            fleet=fleet,
            schedule=self.schedule,
            frames=self.frames,
            seed=seed,
            shards=self.shards,
        )


FLEET_PRESETS: dict[str, FleetPreset] = {
    preset.name: preset
    for preset in (
        FleetPreset(
            name="smoke",
            description="tiny fleet for CI and determinism tests",
            fleet_quick=FleetSpec(vms=6, image_families=2, pages_per_vm=256,
                                  max_resident=4, lifetime_ns=2 * SECOND),
            fleet_full=FleetSpec(vms=12, image_families=2, pages_per_vm=256,
                                 max_resident=6, lifetime_ns=2 * SECOND),
            schedule=ScheduleSpec(settle_ns=SECOND),
            frames=16384,
        ),
        FleetPreset(
            name="smoke-sharded",
            description="the smoke fleet on a 4-shard NUMA topology "
                        "(CI shard-determinism scenario)",
            fleet_quick=FleetSpec(vms=8, image_families=2, pages_per_vm=256,
                                  max_resident=4, lifetime_ns=2 * SECOND),
            fleet_full=FleetSpec(vms=16, image_families=2, pages_per_vm=256,
                                 max_resident=8, lifetime_ns=2 * SECOND),
            schedule=ScheduleSpec(settle_ns=SECOND),
            frames=16384,
            shards=4,
        ),
        FleetPreset(
            name="consolidation",
            description="steady-state cloud consolidation (default mix)",
            fleet_quick=FleetSpec(vms=16, image_families=3),
            fleet_full=FleetSpec(vms=48, image_families=4, max_resident=16),
        ),
        FleetPreset(
            name="churn",
            description="short leases, fast arrivals: retirement-heavy",
            fleet_quick=FleetSpec(vms=20, image_families=3,
                                  arrival_interval_ns=125 * MS,
                                  lifetime_ns=2 * SECOND, max_resident=8),
            fleet_full=FleetSpec(vms=64, image_families=4,
                                 arrival_interval_ns=125 * MS,
                                 lifetime_ns=2 * SECOND, max_resident=12),
        ),
        FleetPreset(
            name="adversarial",
            description="hostile tenant mix: half the fleet probes for "
                        "cross-VM merges",
            fleet_quick=FleetSpec(vms=12, image_families=2,
                                  idle_fraction=0.25, active_fraction=0.25,
                                  adversarial_fraction=0.5),
            fleet_full=FleetSpec(vms=32, image_families=3,
                                 idle_fraction=0.25, active_fraction=0.25,
                                 adversarial_fraction=0.5, max_resident=16),
            schedule=ScheduleSpec(adversary_probes=8),
        ),
    )
}
