"""Shared last-level cache model and the composite access-timing model."""

from repro.cache.llc import LastLevelCache
from repro.cache.timing import AccessTimer

__all__ = ["AccessTimer", "LastLevelCache"]
