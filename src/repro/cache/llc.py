"""Physically-indexed, set-associative last-level cache.

Shared between every process and VM on the machine, exactly like the
LLC the paper's PRIME+PROBE and FLUSH+RELOAD attacks work over.  The
default geometry matches the Xeon E3-1240 v5: 8 MiB, 16 ways, 8192 sets
of 64-byte lines, hence 128 page colors (``pfn % 128``).

Only presence/LRU state is modelled — contents live in
:class:`~repro.mem.physmem.PhysicalMemory`.  An access's hit/miss
outcome is the one-bit signal every cache side channel in the paper is
built from.
"""

from __future__ import annotations

from repro.params import CACHE_LINE_SIZE, CacheGeometry, LINES_PER_PAGE, PAGE_SIZE


class LastLevelCache:
    """LRU set-associative cache over physical line addresses."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: list[list[int]] = [[] for _ in range(geometry.num_sets)]
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_address(self, paddr: int) -> int:
        return paddr // CACHE_LINE_SIZE

    def set_index(self, paddr: int) -> int:
        return self.line_address(paddr) % self.geometry.num_sets

    def color_of_frame(self, pfn: int) -> int:
        """Page color: which block of 64 consecutive sets the page covers."""
        return pfn % self.geometry.num_colors

    def sets_of_frame(self, pfn: int) -> range:
        """The cache-set range covered by the 64 lines of frame ``pfn``."""
        first = self.set_index(pfn * PAGE_SIZE)
        return range(first, first + LINES_PER_PAGE)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def access(self, paddr: int) -> bool:
        """Touch the line holding ``paddr``; return True on a hit."""
        line = self.line_address(paddr)
        cache_set = self._sets[line % self.geometry.num_sets]
        if line in cache_set:
            cache_set.remove(line)
            cache_set.append(line)
            self.hits += 1
            return True
        if len(cache_set) >= self.geometry.ways:
            cache_set.pop(0)
        cache_set.append(line)
        self.misses += 1
        return False

    def probe(self, paddr: int) -> bool:
        """Like :meth:`access` but without allocating on a miss.

        Models a timing probe where the attacker only cares about the
        hit/miss outcome of a single load (FLUSH+RELOAD's RELOAD step
        still allocates; use :meth:`access` for that).
        """
        line = self.line_address(paddr)
        cache_set = self._sets[line % self.geometry.num_sets]
        return line in cache_set

    def flush_line(self, paddr: int) -> None:
        """``clflush``: evict the line holding ``paddr`` if present."""
        line = self.line_address(paddr)
        cache_set = self._sets[line % self.geometry.num_sets]
        if line in cache_set:
            cache_set.remove(line)

    def flush_frame(self, pfn: int) -> None:
        """Flush all 64 lines of frame ``pfn``."""
        base = pfn * PAGE_SIZE
        for offset in range(0, PAGE_SIZE, CACHE_LINE_SIZE):
            self.flush_line(base + offset)

    def contains_line(self, paddr: int) -> bool:
        line = self.line_address(paddr)
        return line in self._sets[line % self.geometry.num_sets]

    def set_occupancy(self, set_index: int) -> int:
        return len(self._sets[set_index])
