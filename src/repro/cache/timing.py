"""Composite memory-access timing: TLB + page walk + LLC + DRAM.

Each architectural access is charged a latency composed from the
:class:`~repro.params.CostModel`.  The decomposition keeps every side
channel of the paper alive:

* TLB miss cost scales with the number of page-walk levels, so a split
  THP (4 levels) is measurably slower than an intact one (3 levels).
* An LLC hit is much cheaper than DRAM, so PRIME+PROBE (set contention)
  and FLUSH+RELOAD (shared-line reload) see their signals.
* Uncached (CD-bit) accesses always pay the uncached latency and never
  allocate in the LLC — VUsion's prefetch-attack countermeasure.
* DRAM row-buffer hits vs. misses are modelled per bank.
"""

from __future__ import annotations

from repro.cache.llc import LastLevelCache
from repro.dram.geometry import DramMapper
from repro.params import CostModel


class AccessTimer:
    """Charges latencies for physical accesses and tracks DRAM rows."""

    def __init__(
        self, costs: CostModel, llc: LastLevelCache, dram: DramMapper
    ) -> None:
        self.costs = costs
        self.llc = llc
        self.dram = dram
        #: Per-bank open row (row-buffer state).
        self._open_rows: dict[int, int] = {}

    def dram_access(self, pfn: int) -> int:
        """Access DRAM for frame ``pfn``; returns latency (row hit/miss)."""
        bank, row = self.dram.bank_and_row(pfn)
        if self._open_rows.get(bank) == row:
            return self.costs.dram_row_hit
        self._open_rows[bank] = row
        return self.costs.dram_row_miss

    def memory_access(self, paddr: int, cacheable: bool) -> int:
        """Charge one data access to physical address ``paddr``.

        Uncached accesses bypass the LLC entirely (they can neither hit
        nor allocate) but still open DRAM rows — reading an uncacheable
        page still hammers.
        """
        pfn = paddr // 4096
        if not cacheable:
            return self.costs.uncached_access + self.dram_access(pfn)
        if self.llc.access(paddr):
            return self.costs.llc_hit
        return self.costs.llc_hit + self.dram_access(pfn)

    def translation(self, hit: bool, levels: int) -> int:
        """Charge address translation: TLB hit, or a page walk."""
        if hit:
            return self.costs.tlb_hit
        return self.costs.tlb_hit + levels * self.costs.page_walk_per_level
