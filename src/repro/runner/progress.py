"""Structured progress events emitted by the experiment runner.

The pool never prints; it emits typed events to an ``on_event``
callback.  The CLI installs :class:`ProgressPrinter`; tests install a
recording callback and assert on the exact sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunnerEvent:
    """Base class for all runner events."""


@dataclass(frozen=True)
class RunStarted(RunnerEvent):
    total: int
    jobs: int
    root_seed: int


@dataclass(frozen=True)
class TaskStarted(RunnerEvent):
    task_id: str
    index: int
    total: int
    attempt: int


@dataclass(frozen=True)
class TaskRetrying(RunnerEvent):
    task_id: str
    attempt: int          #: the attempt that just failed (0-based)
    reason: str           #: "crashed" | "timeout" | "error"
    delay_s: float
    detail: str = ""


@dataclass(frozen=True)
class TaskFinished(RunnerEvent):
    task_id: str
    index: int
    total: int
    status: str           #: "ok" | "error" | "timeout" | "crashed"
    attempts: int
    duration_s: float
    checks_pass: bool | None = None


@dataclass(frozen=True)
class PoolDegraded(RunnerEvent):
    """The worker pool failed; remaining tasks run serially in-process."""

    reason: str


@dataclass(frozen=True)
class RunCompleted(RunnerEvent):
    total: int
    ok: int
    failed: int
    duration_s: float


@dataclass
class ProgressPrinter:
    """Render runner events as one-line progress messages."""

    stream: object = None
    finished: int = field(default=0, init=False)

    def _print(self, message: str) -> None:
        import sys

        print(message, file=self.stream or sys.stdout, flush=True)

    def __call__(self, event: RunnerEvent) -> None:
        if isinstance(event, RunStarted):
            self._print(
                f"runner: {event.total} task(s), jobs={event.jobs}, "
                f"seed={event.root_seed}"
            )
        elif isinstance(event, TaskRetrying):
            self._print(
                f"  retry {event.task_id}: attempt {event.attempt + 1} "
                f"{event.reason}, backing off {event.delay_s:.2f}s"
            )
        elif isinstance(event, TaskFinished):
            self.finished += 1
            checks = ""
            if event.checks_pass is not None:
                checks = " checks=PASS" if event.checks_pass else " checks=FAIL"
            self._print(
                f"[{self.finished}/{event.total}] {event.task_id} "
                f"{event.status}{checks} ({event.duration_s:.1f}s, "
                f"{event.attempts} attempt(s))"
            )
        elif isinstance(event, PoolDegraded):
            self._print(f"runner: pool degraded, falling back to serial "
                        f"({event.reason})")
        elif isinstance(event, RunCompleted):
            self._print(
                f"runner: {event.ok}/{event.total} ok, {event.failed} failed "
                f"in {event.duration_s:.1f}s"
            )
