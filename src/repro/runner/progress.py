"""Structured progress events emitted by the experiment runner.

The pool never prints; it emits typed events to an ``on_event``
callback.  The CLI installs :class:`ProgressPrinter`; tests install a
recording callback and assert on the exact sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunnerEvent:
    """Base class for all runner events."""


@dataclass(frozen=True)
class RunStarted(RunnerEvent):
    total: int
    jobs: int
    root_seed: int


@dataclass(frozen=True)
class TaskStarted(RunnerEvent):
    task_id: str
    index: int
    total: int
    attempt: int


@dataclass(frozen=True)
class TaskRetrying(RunnerEvent):
    task_id: str
    attempt: int          #: the attempt that just failed (0-based)
    reason: str           #: "crashed" | "timeout" | "error"
    delay_s: float
    detail: str = ""


@dataclass(frozen=True)
class TaskFinished(RunnerEvent):
    task_id: str
    index: int
    total: int
    status: str           #: "ok" | "error" | "timeout" | "crashed"
    attempts: int
    duration_s: float
    checks_pass: bool | None = None


@dataclass(frozen=True)
class PoolDegraded(RunnerEvent):
    """The worker pool failed; remaining tasks run serially in-process."""

    reason: str


@dataclass(frozen=True)
class RunCompleted(RunnerEvent):
    total: int
    ok: int
    failed: int
    duration_s: float


@dataclass(frozen=True)
class ShardRoundCompleted(RunnerEvent):
    """One shard finished an exchange round (a sample boundary)."""

    scenario: str
    shard: int
    round_no: int
    exported_cids: int
    booted: int
    resident: int


@dataclass(frozen=True)
class ShardExchangeResolved(RunnerEvent):
    """The coordinator resolved one round's content-id exchange."""

    scenario: str
    round_no: int
    shards: int
    exchanged_cids: int
    intents_applied: int
    stale_dropped: int


@dataclass(frozen=True)
class ShardWorkerRetrying(RunnerEvent):
    """A shard worker failed; its shards rerun in a fresh process."""

    scenario: str
    shards: tuple[int, ...]
    reason: str           #: "crashed" | "timeout" | "error"
    attempt: int
    detail: str = ""


@dataclass(frozen=True)
class ShardPoolDegraded(RunnerEvent):
    """The shard pool gave up; remaining shards run serially."""

    scenario: str
    reason: str


@dataclass
class ProgressPrinter:
    """Render runner events as one-line progress messages.

    Shard-level events (per-round exports, exchange resolutions) are
    chatty — one line per shard per sample — so they only print when
    ``verbose`` is set (``repro fleet -v``); the shard balance summary
    they carry is exactly what the flag exists to show.
    """

    stream: object = None
    verbose: bool = False
    finished: int = field(default=0, init=False)

    def _print(self, message: str) -> None:
        import sys

        print(message, file=self.stream or sys.stdout, flush=True)

    def __call__(self, event: RunnerEvent) -> None:
        if isinstance(event, RunStarted):
            self._print(
                f"runner: {event.total} task(s), jobs={event.jobs}, "
                f"seed={event.root_seed}"
            )
        elif isinstance(event, TaskRetrying):
            self._print(
                f"  retry {event.task_id}: attempt {event.attempt + 1} "
                f"{event.reason}, backing off {event.delay_s:.2f}s"
            )
        elif isinstance(event, TaskFinished):
            self.finished += 1
            checks = ""
            if event.checks_pass is not None:
                checks = " checks=PASS" if event.checks_pass else " checks=FAIL"
            self._print(
                f"[{self.finished}/{event.total}] {event.task_id} "
                f"{event.status}{checks} ({event.duration_s:.1f}s, "
                f"{event.attempts} attempt(s))"
            )
        elif isinstance(event, PoolDegraded):
            self._print(f"runner: pool degraded, falling back to serial "
                        f"({event.reason})")
        elif isinstance(event, ShardRoundCompleted):
            if self.verbose:
                self._print(
                    f"  shard {event.shard} round {event.round_no}: "
                    f"{event.exported_cids} cid(s) exported, "
                    f"{event.booted} booted, {event.resident} resident"
                )
        elif isinstance(event, ShardExchangeResolved):
            if self.verbose:
                self._print(
                    f"  exchange round {event.round_no}: "
                    f"{event.exchanged_cids} cid(s) over {event.shards} "
                    f"shard(s), {event.intents_applied} merge intent(s) "
                    f"applied, {event.stale_dropped} stale dropped"
                )
        elif isinstance(event, ShardWorkerRetrying):
            self._print(
                f"  shard worker retry: shards {list(event.shards)} "
                f"{event.reason}, attempt {event.attempt + 1}"
            )
        elif isinstance(event, ShardPoolDegraded):
            self._print(
                f"runner: shard pool degraded, rerunning "
                f"{event.scenario} serially ({event.reason})"
            )
        elif isinstance(event, RunCompleted):
            self._print(
                f"runner: {event.ok}/{event.total} ok, {event.failed} failed "
                f"in {event.duration_s:.1f}s"
            )
