"""Long-lived shard workers for one sharded scenario.

Where :mod:`repro.runner.pool` parallelizes *across* tasks, this pool
parallelizes *inside* one: the ``spec.shards`` NUMA-style nodes of a
scenario (see :mod:`repro.harness.shardfleet`) are dealt round-robin to
``workers`` long-lived processes, each running its nodes to completion
while streaming per-round beacons back to the supervisor.  The same
failure machinery as the task pool applies:

* **Progress watchdog** — a worker that goes silent for ``timeout_s``
  is killed and its unfinished shards requeue.
* **Bounded retry** — crashed/hung/erroring workers get fresh
  processes for their unfinished shards, up to ``max_retries`` times.
  Finished shards are *kept*: a shard run is a pure function of
  ``(spec, shard)``, so partial results from a failed pool attempt are
  exactly what a retry would recompute.
* **Serial degradation** — when the retry budget runs out (or no pool
  can be built), the remaining shards run serially in-process and the
  scenario still completes.

Determinism: results are collected per shard and recombined by
:func:`~repro.harness.shardfleet.combine_shard_results`, which is a
pure fold in ``(shard, pfn)`` order — so ``--shards 1``, ``--shards
4``, a retried worker and the degraded path all produce byte-identical
artifacts.  :func:`run_sharded` is the one entry point every caller
(fleet tasks, the CLI, the benchmarks) goes through.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass

from repro.annotations import worker_entry
from repro.runner.progress import (
    ShardExchangeResolved,
    ShardPoolDegraded,
    ShardRoundCompleted,
    ShardWorkerRetrying,
)


@dataclass(frozen=True)
class ShardPoolConfig:
    """Execution policy for one sharded scenario."""

    workers: int = 1
    #: Progress watchdog: max silence per worker before it is killed.
    timeout_s: float | None = None
    #: Failed workers get this many fresh-process retries.
    max_retries: int = 1
    retry_backoff_s: float = 0.25
    #: multiprocessing start method; ``None`` prefers fork, then spawn.
    start_method: str | None = None
    #: Skip the pool entirely (also the degraded mode).
    force_serial: bool = False


@worker_entry
def _shard_worker_main(conn, spec, shards: tuple, shard_fn=None) -> None:
    """Child entry: run each assigned shard, streaming round beacons.

    ``shard_fn`` defaults to the real shard executor; the scaling
    benchmark injects a service-time-calibrated wrapper through it.
    """
    from repro.harness.shardfleet import run_one_shard

    runner = shard_fn or run_one_shard

    def on_round(driver, table) -> None:
        conn.send(("round", driver.shard, table.round_no,
                   len(table.entries), driver.booted,
                   driver.booted - driver.retired))

    try:
        for shard in shards:
            result = runner(spec, shard, on_round=on_round)
            conn.send(("done", shard, result))
        conn.send(("exit", None, None))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        diagnostic = getattr(exc, "diagnostic", None)
        detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        if diagnostic:
            detail = f"{diagnostic}\n{detail}"
        try:
            conn.send(("error", None, detail))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Worker:
    process: object
    conn: object
    shards: list[int]
    last_heard: float
    exited: bool = False


class _ShardPoolBroken(Exception):
    """Raised internally when the pool cannot make progress."""


class ShardPool:
    """Supervisor for one scenario's shard workers."""

    def __init__(self, spec, *, config: ShardPoolConfig | None = None,
                 on_event=None, shard_fn=None) -> None:
        self.spec = spec
        self.config = config or ShardPoolConfig()
        self.on_event = on_event or (lambda event: None)
        self.shard_fn = shard_fn
        self.results: dict[int, object] = {}

    # -- plumbing -------------------------------------------------------
    def _emit(self, event) -> None:
        self.on_event(event)

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        method = self.config.start_method or (
            "fork" if "fork" in methods else "spawn"
        )
        return multiprocessing.get_context(method)

    @staticmethod
    def _kill(worker: _Worker) -> None:
        try:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass

    def _spawn(self, ctx, shards: list[int]) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.spec, tuple(shards), self.shard_fn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn, shards=shards,
                       last_heard=time.monotonic())

    # -- one pool attempt ----------------------------------------------
    def _drain(self, worker: _Worker) -> str | None:
        """Pump one worker's pipe; returns a failure outcome or None."""
        while worker.conn.poll():
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                return "crashed"
            worker.last_heard = time.monotonic()
            kind = message[0]
            if kind == "round":
                _, shard, round_no, exported, booted, resident = message
                self._emit(ShardRoundCompleted(
                    scenario=self.spec.name, shard=shard, round_no=round_no,
                    exported_cids=exported, booted=booted, resident=resident,
                ))
            elif kind == "done":
                _, shard, result = message
                self.results[shard] = result
                if shard in worker.shards:
                    worker.shards.remove(shard)
            elif kind == "exit":
                worker.exited = True
            elif kind == "error":
                return f"error: {message[2]}"
        return None

    def _attempt(self, ctx, shards: list[int]) -> list[int]:
        """One pooled pass over ``shards``; returns the unfinished ones."""
        count = max(1, min(self.config.workers, len(shards)))
        workers: list[_Worker] = []
        try:
            for offset in range(count):
                workers.append(self._spawn(ctx, shards[offset::count]))
        except Exception as exc:
            # e.g. a daemonic task-pool worker cannot have children:
            # degrade to the in-process executor instead of failing.
            for worker in workers:
                self._kill(worker)
            raise _ShardPoolBroken(
                f"cannot start shard worker: {exc}"
            ) from exc
        failed: list[int] = []
        try:
            while workers:
                progressed = False
                now = time.monotonic()
                for worker in list(workers):
                    outcome = self._drain(worker)
                    if outcome is None and worker.exited:
                        worker.process.join(timeout=5)
                        workers.remove(worker)
                        progressed = True
                        continue
                    if outcome is None and not worker.process.is_alive():
                        outcome = (
                            f"crashed: exit code {worker.process.exitcode}"
                        )
                    if (outcome is None
                            and self.config.timeout_s is not None
                            and now - worker.last_heard
                            > self.config.timeout_s):
                        outcome = (
                            f"timeout: silent for {self.config.timeout_s}s"
                        )
                    if outcome is not None:
                        self._kill(worker)
                        workers.remove(worker)
                        failed.extend(worker.shards)
                        progressed = True
                        self._last_failure = outcome
                if not progressed:
                    time.sleep(0.005)
        finally:
            for worker in workers:
                self._kill(worker)
        return sorted(failed)

    # -- public API -----------------------------------------------------
    def run(self) -> list:
        """All shards' results, by shard, surviving worker failures."""
        spec = self.spec
        missing = list(range(spec.shards))
        self._last_failure = ""
        try:
            ctx = self._context()
        except Exception as exc:
            raise _ShardPoolBroken(
                f"no multiprocessing context: {exc}"
            ) from exc
        attempt = 0
        while missing:
            missing = self._attempt(ctx, missing)
            missing = [s for s in missing if s not in self.results]
            if not missing:
                break
            if attempt >= self.config.max_retries:
                summary = (self._last_failure or "unknown").splitlines()[0]
                raise _ShardPoolBroken(
                    f"shards {missing} kept failing ({summary})"
                )
            reason = self._last_failure.split(":", 1)[0] or "crashed"
            self._emit(ShardWorkerRetrying(
                scenario=spec.name, shards=tuple(missing), reason=reason,
                attempt=attempt, detail=self._last_failure,
            ))
            time.sleep(self.config.retry_backoff_s * (2 ** attempt))
            attempt += 1
        return [self.results[shard] for shard in sorted(self.results)]


def run_sharded(spec, *, config: ShardPoolConfig | None = None,
                on_event=None, shard_fn=None):
    """Run one scenario across its shards; the unified entry point.

    ``spec.shards == 1`` and single-worker/forced-serial configurations
    take the in-process reference executor; everything else goes
    through :class:`ShardPool` with serial degradation.  The returned
    :class:`~repro.harness.fleet.FleetResult` is byte-identical across
    all of these paths.
    """
    from repro.harness.shardfleet import (
        combine_shard_results,
        run_sharded_serial,
    )

    config = config or ShardPoolConfig()
    emit = on_event or (lambda event: None)

    def on_round(driver, table) -> None:
        emit(ShardRoundCompleted(
            scenario=spec.name, shard=driver.shard, round_no=table.round_no,
            exported_cids=len(table.entries), booted=driver.booted,
            resident=driver.booted - driver.retired,
        ))

    def on_exchange(outcome) -> None:
        emit(ShardExchangeResolved(
            scenario=spec.name, round_no=outcome.round_no,
            shards=spec.shards, exchanged_cids=outcome.exchanged_cids,
            intents_applied=outcome.applied,
            stale_dropped=outcome.stale_entries_dropped,
        ))

    serial = (spec.shards == 1 or config.workers <= 1
              or config.force_serial)
    if not serial:
        pool = ShardPool(spec, config=config, on_event=on_event,
                         shard_fn=shard_fn)
        try:
            results = pool.run()
            return combine_shard_results(spec, results,
                                         on_exchange=on_exchange)
        except _ShardPoolBroken as exc:
            emit(ShardPoolDegraded(scenario=spec.name, reason=str(exc)))
    return run_sharded_serial(spec, on_round=on_round,
                              on_exchange=on_exchange)
