"""Parallel fault-tolerant execution of task specs.

Each task attempt runs in its own worker process (simulations are
long-lived and CPU-bound, so per-task process overhead is noise), with
at most ``jobs`` attempts in flight.  The parent supervises:

* **Per-task timeout** — a hung worker is killed and the attempt
  counts as ``timeout``.
* **Bounded retry with backoff** — crashed (bad exit code, no reply),
  timed-out and erroring attempts are requeued up to ``max_retries``
  times with exponential backoff.
* **Graceful degradation** — if worker processes cannot be created at
  all (sandboxed environments, exhausted pids), the remaining tasks
  run serially in-process and the run still completes.

Determinism: a task's payload is a pure function of ``(spec, seed)``
and seeds are derived from ``(root_seed, task_id)`` alone, so results
are byte-identical for any ``jobs`` value and any retry history.
Results are returned in submission order, never completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass

from repro.runner.progress import (
    PoolDegraded,
    RunCompleted,
    RunStarted,
    TaskFinished,
    TaskRetrying,
    TaskStarted,
)
from repro.annotations import worker_entry
from repro.runner.seeds import derive_seed
from repro.runner.task import TaskSpec, execute_task


@dataclass(frozen=True)
class RunnerConfig:
    """Execution policy for one sweep."""

    jobs: int = 1
    #: Per-attempt wall-clock budget; ``None`` disables the watchdog.
    timeout_s: float | None = None
    #: Failed attempts are retried this many times (attempts = retries+1).
    max_retries: int = 2
    #: Base backoff; attempt ``n`` waits ``retry_backoff_s * 2**n``.
    retry_backoff_s: float = 0.25
    #: multiprocessing start method; ``None`` prefers fork, then spawn.
    start_method: str | None = None
    #: Skip the pool entirely and run in-process (also the degraded mode).
    force_serial: bool = False
    #: Worker processes per *sharded scenario* (``spec.shards > 1``
    #: fleet tasks; see repro.runner.shardpool).  Execution policy
    #: only — artifacts are byte-identical for any value.
    shard_workers: int = 1


def resolve_jobs(explicit: int | None = None, *,
                 env_var: str = "REPRO_JOBS",
                 env: dict | None = None,
                 default: int | None = 1) -> int:
    """One rule for every worker count (``--jobs``, ``--shards``).

    Priority: the explicit CLI value, then the environment variable,
    then ``default``.  A value of ``0`` from any source — or a
    ``default`` of ``None`` — resolves to the host cpu count.  Raises
    ``ValueError`` on malformed or negative inputs, so every entry
    point rejects bad worker counts identically instead of re-deriving
    its own rule.
    """
    value = explicit
    source = "worker count"
    if value is None:
        raw = (os.environ if env is None else env).get(env_var)
        if raw is not None:
            try:
                value = int(raw)
            except ValueError:
                raise ValueError(
                    f"{env_var} must be an integer, got {raw!r}"
                ) from None
            source = env_var
    if value is None:
        value = 0 if default is None else default
    if value == 0:
        value = os.cpu_count() or 1
    if value < 1:
        raise ValueError(f"{source} must be >= 1 (got {value})")
    return value


@dataclass
class TaskResult:
    """Outcome of one task after all attempts."""

    spec: TaskSpec
    seed: int
    status: str                  #: "ok" | "error" | "timeout" | "crashed"
    attempts: int
    duration_s: float
    payload: dict | None = None
    error: str | None = None
    mode: str = "pool"           #: "pool" | "serial"

    @property
    def task_id(self) -> str:
        return self.spec.task_id

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def checks_pass(self) -> bool | None:
        if self.payload is None:
            return False if not self.ok else None
        return self.payload.get("checks_pass")


@worker_entry
def _worker_main(conn, spec: TaskSpec, seed: int, attempt: int,
                 shard_workers: int = 1) -> None:
    """Child entry point: run the task, ship the payload back, exit."""
    try:
        payload = execute_task(spec, seed, attempt=attempt,
                               shard_workers=shard_workers)
        conn.send(("ok", payload, None))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        # Structured checker errors (FrameSan, simlint) carry a one-line
        # ``diagnostic`` with frame provenance; lead with it so the
        # supervisor can surface it without parsing the traceback.
        diagnostic = getattr(exc, "diagnostic", None)
        detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        if diagnostic:
            detail = f"{diagnostic}\n{detail}"
        try:
            conn.send(("error", None, detail))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


#: Markers of structured checker diagnostics (see repro.check): the one
#: line worth surfacing verbatim when an attempt's full detail is a
#: multi-page traceback.
_DIAGNOSTIC_MARKERS = ("[FrameSan:", "[simlint]")


def extract_diagnostic(detail: str | None) -> str | None:
    """Return the last checker diagnostic line in a failure detail."""
    if not detail:
        return None
    found = None
    for line in detail.splitlines():
        if any(marker in line for marker in _DIAGNOSTIC_MARKERS):
            found = line.strip()
    return found


@dataclass
class _Attempt:
    index: int
    attempt: int
    process: object
    conn: object
    started: float
    deadline: float | None


@dataclass
class _Pending:
    index: int
    attempt: int
    ready_at: float


class _PoolBroken(Exception):
    """Raised internally when worker processes cannot be created."""


class TaskPool:
    """Supervisor for one sweep (see module docstring)."""

    def __init__(self, tasks, *, root_seed: int = 1017,
                 config: RunnerConfig | None = None, on_event=None) -> None:
        self.tasks: list[TaskSpec] = list(tasks)
        self.root_seed = root_seed
        self.config = config or RunnerConfig()
        self.on_event = on_event or (lambda event: None)
        self.seeds = [
            task.seed if task.seed is not None
            else derive_seed(root_seed, task.task_id)
            for task in self.tasks
        ]
        self._results: list[TaskResult | None] = [None] * len(self.tasks)
        self._first_started: dict[int, float] = {}
        #: Per-task failure history ("attempt N: outcome: first line"),
        #: folded into the final error when the retry budget runs out.
        self._attempt_log: dict[int, list[str]] = {}

    # -- event helpers --------------------------------------------------
    def _emit(self, event) -> None:
        self.on_event(event)

    def _finish(self, index: int, status: str, attempts: int,
                payload=None, error=None, mode="pool") -> TaskResult:
        duration = time.monotonic() - self._first_started[index]
        result = TaskResult(
            spec=self.tasks[index], seed=self.seeds[index], status=status,
            attempts=attempts, duration_s=duration, payload=payload,
            error=error, mode=mode,
        )
        self._results[index] = result
        self._emit(TaskFinished(
            task_id=result.task_id, index=index, total=len(self.tasks),
            status=status, attempts=attempts, duration_s=duration,
            checks_pass=result.checks_pass,
        ))
        return result

    def _note_started(self, index: int, attempt: int) -> None:
        now = time.monotonic()
        self._first_started.setdefault(index, now)
        self._emit(TaskStarted(
            task_id=self.tasks[index].task_id, index=index,
            total=len(self.tasks), attempt=attempt,
        ))

    def _backoff(self, attempt: int) -> float:
        return self.config.retry_backoff_s * (2 ** attempt)

    def _note_failure(self, index: int, attempt: int, outcome: str,
                      detail: str) -> None:
        summary = (detail or outcome).strip()
        first_line = summary.splitlines()[0] if summary else outcome
        self._attempt_log.setdefault(index, []).append(
            f"attempt {attempt + 1}: {outcome}: {first_line}"
        )

    def _exhausted_error(self, index: int, outcome: str, detail: str) -> str:
        """Final error for a task that ran out of retries.

        Leads with the task id and the per-attempt history, then the
        last checker diagnostic (FrameSan/simlint) if one is buried in
        the traceback, then the full detail of the final attempt.
        """
        history = self._attempt_log.get(index, [])
        lines = [
            f"task '{self.tasks[index].task_id}' (seed {self.seeds[index]}) "
            f"gave up: {outcome} after {len(history)} attempt(s)"
        ]
        lines += [f"  {entry}" for entry in history]
        diagnostic = extract_diagnostic(detail)
        if diagnostic:
            lines.append(f"  last checker diagnostic: {diagnostic}")
        if detail:
            lines.append(detail)
        return "\n".join(lines)

    # -- public API -----------------------------------------------------
    def run(self) -> list[TaskResult]:
        started = time.monotonic()
        self._emit(RunStarted(total=len(self.tasks), jobs=self.config.jobs,
                              root_seed=self.root_seed))
        if self.config.force_serial:
            self._run_serial(range(len(self.tasks)))
        else:
            try:
                self._run_pool()
            except _PoolBroken as exc:
                self._emit(PoolDegraded(reason=str(exc)))
                remaining = [i for i, r in enumerate(self._results)
                             if r is None]
                self._run_serial(remaining)
        results = [result for result in self._results if result is not None]
        ok = sum(1 for result in results if result.ok)
        self._emit(RunCompleted(
            total=len(results), ok=ok, failed=len(results) - ok,
            duration_s=time.monotonic() - started,
        ))
        return results

    # -- pool mode ------------------------------------------------------
    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        method = self.config.start_method or (
            "fork" if "fork" in methods else "spawn"
        )
        return multiprocessing.get_context(method)

    def _start_process(self, ctx, index: int, attempt: int) -> _Attempt:
        """Launch one attempt; raises on pool-level failure."""
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.tasks[index], self.seeds[index], attempt,
                  self.config.shard_workers),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = (now + self.config.timeout_s
                    if self.config.timeout_s is not None else None)
        return _Attempt(index=index, attempt=attempt, process=process,
                        conn=parent_conn, started=now, deadline=deadline)

    def _run_pool(self) -> None:
        try:
            ctx = self._context()
        except Exception as exc:  # unknown start method, broken platform
            raise _PoolBroken(f"no multiprocessing context: {exc}") from exc
        jobs = max(1, self.config.jobs)
        pending = [
            _Pending(index=i, attempt=0, ready_at=0.0)
            for i in range(len(self.tasks))
        ]
        running: list[_Attempt] = []
        try:
            while pending or running:
                now = time.monotonic()
                # Fill free slots with due tasks (submission order).
                while len(running) < jobs and pending:
                    due = [p for p in pending if p.ready_at <= now]
                    if not due:
                        break
                    nxt = min(due, key=lambda p: (p.index, p.attempt))
                    pending.remove(nxt)
                    self._note_started(nxt.index, nxt.attempt)
                    try:
                        running.append(
                            self._start_process(ctx, nxt.index, nxt.attempt)
                        )
                    except Exception as exc:
                        raise _PoolBroken(
                            f"cannot start worker: {exc}"
                        ) from exc
                progressed = self._reap(running, pending)
                if not progressed:
                    time.sleep(0.005)
        finally:
            for attempt in running:
                self._kill(attempt)

    def _reap(self, running: list[_Attempt], pending: list[_Pending]) -> bool:
        """Collect finished/overdue attempts; True if anything changed."""
        progressed = False
        now = time.monotonic()
        for attempt in list(running):
            outcome = None
            detail = ""
            if attempt.conn.poll():
                try:
                    kind, payload, error = attempt.conn.recv()
                except (EOFError, OSError):
                    kind, payload, error = ("crashed", None,
                                            "worker pipe closed mid-reply")
                attempt.process.join(timeout=5)
                if kind == "ok":
                    self._finish(attempt.index, "ok", attempt.attempt + 1,
                                 payload=payload)
                    running.remove(attempt)
                    progressed = True
                    continue
                outcome = "error" if kind == "error" else "crashed"
                detail = error or ""
            elif not attempt.process.is_alive():
                outcome = "crashed"
                detail = f"exit code {attempt.process.exitcode}"
            elif attempt.deadline is not None and now > attempt.deadline:
                outcome = "timeout"
                detail = f"exceeded {self.config.timeout_s}s"
                self._kill(attempt)
            if outcome is None:
                continue
            running.remove(attempt)
            progressed = True
            self._kill(attempt)
            self._note_failure(attempt.index, attempt.attempt, outcome, detail)
            if attempt.attempt < self.config.max_retries:
                delay = self._backoff(attempt.attempt)
                self._emit(TaskRetrying(
                    task_id=self.tasks[attempt.index].task_id,
                    attempt=attempt.attempt, reason=outcome,
                    delay_s=delay, detail=detail,
                ))
                pending.append(_Pending(
                    index=attempt.index, attempt=attempt.attempt + 1,
                    ready_at=time.monotonic() + delay,
                ))
            else:
                self._finish(
                    attempt.index, outcome, attempt.attempt + 1,
                    error=self._exhausted_error(attempt.index, outcome, detail),
                )
        return progressed

    @staticmethod
    def _kill(attempt: _Attempt) -> None:
        try:
            if attempt.process.is_alive():
                attempt.process.terminate()
                attempt.process.join(timeout=1)
                if attempt.process.is_alive():
                    attempt.process.kill()
                    attempt.process.join(timeout=1)
        except Exception:
            pass
        try:
            attempt.conn.close()
        except Exception:
            pass

    # -- serial (degraded / forced) mode --------------------------------
    def _run_serial(self, indices) -> None:
        """In-process execution: no crash isolation, no timeouts, but
        the same retry policy and identical payloads."""
        for index in indices:
            attempt = 0
            while True:
                self._note_started(index, attempt)
                try:
                    payload = execute_task(
                        self.tasks[index], self.seeds[index],
                        attempt=attempt,
                        shard_workers=self.config.shard_workers,
                    )
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    diagnostic = getattr(exc, "diagnostic", None)
                    if diagnostic:
                        detail = f"{diagnostic}\n{detail}"
                    self._note_failure(index, attempt, "error", detail)
                    if attempt < self.config.max_retries:
                        delay = self._backoff(attempt)
                        self._emit(TaskRetrying(
                            task_id=self.tasks[index].task_id,
                            attempt=attempt, reason="error",
                            delay_s=delay, detail=detail,
                        ))
                        time.sleep(delay)
                        attempt += 1
                        continue
                    self._finish(
                        index, "error", attempt + 1,
                        error=self._exhausted_error(index, "error", detail),
                        mode="serial",
                    )
                    break
                self._finish(index, "ok", attempt + 1, payload=payload,
                             mode="serial")
                break


def run_tasks(tasks, *, root_seed: int = 1017,
              config: RunnerConfig | None = None,
              on_event=None) -> list[TaskResult]:
    """Run ``tasks`` under ``config``; results in submission order."""
    return TaskPool(tasks, root_seed=root_seed, config=config,
                    on_event=on_event).run()
