"""Parallel fault-tolerant experiment runner (``repro.runner``).

The public surface every sweep uses:

* :class:`TaskSpec` — picklable description of one experiment, one
  attack-vs-engine cell, or a self-test task.
* :func:`expand_selectors` — CLI selector grammar -> task list.
* :func:`run_tasks` / :class:`RunnerConfig` — the multiprocessing pool
  with per-task timeouts, bounded retry and serial degradation.
* :func:`derive_seed` — deterministic per-task seeding.
* :func:`resolve_jobs` — the one worker-count rule (explicit flag,
  then environment, then default) shared by every CLI entry point.
* :func:`run_sharded` / :class:`ShardPoolConfig` — intra-scenario
  shard workers (see :mod:`repro.runner.shardpool`).
* :func:`write_artifacts` — JSON artifacts under ``results/``.
* :class:`ProgressPrinter` and the event dataclasses in
  :mod:`repro.runner.progress`.
"""

from repro.runner.artifacts import canonical_json, sanitize, write_artifacts
from repro.runner.pool import (
    RunnerConfig,
    TaskPool,
    TaskResult,
    resolve_jobs,
    run_tasks,
)
from repro.runner.progress import (
    PoolDegraded,
    ProgressPrinter,
    RunCompleted,
    RunnerEvent,
    RunStarted,
    ShardExchangeResolved,
    ShardPoolDegraded,
    ShardRoundCompleted,
    ShardWorkerRetrying,
    TaskFinished,
    TaskRetrying,
    TaskStarted,
)
from repro.runner.seeds import derive_seed
from repro.runner.select import MATRIX_ENGINES, expand_selectors
from repro.runner.shardpool import ShardPool, ShardPoolConfig, run_sharded
from repro.runner.task import TaskSpec, execute_task

__all__ = [
    "MATRIX_ENGINES",
    "PoolDegraded",
    "ProgressPrinter",
    "RunCompleted",
    "RunnerConfig",
    "RunnerEvent",
    "RunStarted",
    "ShardExchangeResolved",
    "ShardPool",
    "ShardPoolConfig",
    "ShardPoolDegraded",
    "ShardRoundCompleted",
    "ShardWorkerRetrying",
    "TaskFinished",
    "TaskPool",
    "TaskResult",
    "TaskRetrying",
    "TaskStarted",
    "TaskSpec",
    "canonical_json",
    "derive_seed",
    "execute_task",
    "expand_selectors",
    "resolve_jobs",
    "run_sharded",
    "run_tasks",
    "sanitize",
    "write_artifacts",
]
