"""JSON result artifacts for runner sweeps.

Layout under the output directory (``results/run`` by default):

``manifest.json``
    Run-level metadata: root seed, jobs, per-task status/attempts/
    durations, and the artifact file each task's result landed in.

``<task>.json``
    One file per task: the spec, the derived seed and the canonical
    result payload.  The ``result`` block is a pure function of
    ``(spec, seed)`` — byte-identical across worker counts, retries
    and runs — while scheduling metadata lives only in the manifest.
"""

from __future__ import annotations

import json
import pathlib
import re


def sanitize(value):
    """Make ``value`` JSON-able without losing information.

    Tuples become lists, bytes become hex strings, non-string mapping
    keys become their ``repr`` (the key-value experiments use tuples
    like ``("redis", "KSM")`` as notes keys), NaN/inf floats become
    strings (canonical JSON forbids them).
    """
    if isinstance(value, dict):
        return {
            (key if isinstance(key, str) else repr(key)): sanitize(val)
            for key, val in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(value) -> str:
    """Deterministic serialization (sorted keys, fixed separators)."""
    return json.dumps(sanitize(value), sort_keys=True, indent=2,
                      allow_nan=False) + "\n"


def task_filename(task_id: str) -> str:
    """A filesystem-safe, still-readable name for one task's artifact."""
    return re.sub(r"[^A-Za-z0-9_.@-]", "-", task_id) + ".json"


def write_artifacts(out_dir, results, *, root_seed: int, jobs: int,
                    extra_meta: dict | None = None) -> pathlib.Path:
    """Write per-task artifacts plus the manifest; returns its path."""
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    manifest_tasks = []
    for result in results:
        filename = task_filename(result.task_id)
        document = {
            "task_id": result.task_id,
            "spec": result.spec.describe(),
            "seed": result.seed,
            "status": result.status,
            "error": result.error,
            "result": result.payload,
        }
        (out_path / filename).write_text(canonical_json(document))
        manifest_tasks.append(
            {
                "task_id": result.task_id,
                "file": filename,
                "status": result.status,
                "attempts": result.attempts,
                "duration_s": round(result.duration_s, 3),
                "checks_pass": result.checks_pass,
            }
        )
    manifest = {
        "root_seed": root_seed,
        "jobs": jobs,
        "ok": all(r.ok for r in results),
        "tasks": manifest_tasks,
    }
    manifest.update(extra_meta or {})
    manifest_path = out_path / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path
