"""Task specifications and the worker-side executor.

A :class:`TaskSpec` is a small, picklable, frozen description of one
unit of work — an experiment from the registry, one attack-vs-engine
cell of the security matrix, or a built-in self-test task used to
exercise the pool's failure handling.  :func:`execute_task` turns a
spec into a canonical JSON-able payload; it is a pure function of
``(spec, seed)``, which is the determinism contract the parallel
runner relies on.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.annotations import artifact_boundary
from repro.runner.artifacts import sanitize

#: Task kinds understood by :func:`execute_task`.
KINDS = ("experiment", "attack", "fleet", "selftest")


def _freeze(params: dict) -> tuple:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work."""

    kind: str
    name: str
    #: Scale preset name (experiments only; see ``SCALES``).
    scale: str = "quick"
    #: Explicit seed; ``None`` derives one from the run's root seed.
    seed: int | None = None
    #: Kind-specific parameters as sorted key/value pairs (kept as a
    #: tuple so specs stay hashable and deterministic to serialize).
    params: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown task kind {self.kind!r}")

    # -- constructors ---------------------------------------------------
    @classmethod
    def experiment(cls, name: str, scale: str = "quick",
                   seed: int | None = None) -> "TaskSpec":
        from repro.harness.experiments import EXPERIMENTS, SCALES

        if name not in EXPERIMENTS:
            raise ValueError(f"unknown experiment {name!r}")
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}")
        return cls(kind="experiment", name=name, scale=scale, seed=seed)

    @classmethod
    def attack(cls, name: str, target: str | None = None,
               seed: int | None = None, **env_overrides) -> "TaskSpec":
        from repro.attacks import ALL_ATTACKS
        from repro.fusion.registry import ENGINE_SPECS

        by_name = {a.name: a for a in ALL_ATTACKS}
        if name not in by_name:
            raise ValueError(f"unknown attack {name!r}")
        resolved = target or by_name[name].default_target
        if resolved not in ENGINE_SPECS:
            raise ValueError(f"unknown engine {resolved!r}")
        params = dict(env_overrides)
        params["target"] = resolved
        return cls(kind="attack", name=name, params=_freeze(params), seed=seed)

    @classmethod
    def fleet(cls, preset: str, system: str = "ksm", scale: str = "quick",
              seed: int | None = None) -> "TaskSpec":
        from repro.harness.fleet import FLEET_PRESETS
        from repro.harness.scenario import PRESETS

        if preset not in FLEET_PRESETS:
            raise ValueError(f"unknown fleet preset {preset!r} "
                             f"(known: {', '.join(FLEET_PRESETS)})")
        if system not in PRESETS:
            raise ValueError(f"unknown system preset {system!r} "
                             f"(known: {', '.join(PRESETS)})")
        if scale not in ("quick", "full"):
            raise ValueError(f"unknown scale {scale!r}")
        return cls(kind="fleet", name=preset, scale=scale, seed=seed,
                   params=_freeze({"system": system}))

    @classmethod
    def selftest(cls, name: str, **params) -> "TaskSpec":
        return cls(kind="selftest", name=name, params=_freeze(params))

    # -- accessors ------------------------------------------------------
    def param(self, key: str, default=None):
        return dict(self.params).get(key, default)

    @property
    def task_id(self) -> str:
        """Stable identity: seed derivation and artifact names key on it."""
        if self.kind == "attack":
            return f"attack:{self.name}@{self.param('target')}"
        if self.kind == "fleet":
            base = f"fleet:{self.name}@{self.param('system')}"
            return base if self.scale == "quick" else f"{base}#{self.scale}"
        if self.kind == "experiment" and self.scale != "quick":
            return f"experiment:{self.name}#{self.scale}"
        return f"{self.kind}:{self.name}"

    def describe(self) -> dict:
        """JSON-able description (goes into artifacts verbatim)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "scale": (self.scale if self.kind in ("experiment", "fleet")
                      else None),
            "params": {str(k): sanitize(v) for k, v in self.params},
            "explicit_seed": self.seed,
        }


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------
@artifact_boundary
def _run_experiment(spec: TaskSpec, seed: int) -> dict:
    from repro.harness.experiments import EXPERIMENTS, SCALES

    result = EXPERIMENTS[spec.name].run(SCALES[spec.scale], seed=seed)
    return {
        "type": "experiment",
        "experiment": result.experiment,
        "headers": sanitize(result.headers),
        "rows": sanitize(result.rows),
        "series": sanitize(result.series),
        "checks": sanitize(result.checks),
        "notes": sanitize(result.notes),
        "checks_pass": result.all_checks_pass,
    }


@artifact_boundary
def _run_attack(spec: TaskSpec, seed: int) -> dict:
    from repro.attacks import ALL_ATTACKS

    attack_cls = {a.name: a for a in ALL_ATTACKS}[spec.name]
    overrides = {k: v for k, v in spec.params if k != "target"}
    env = attack_cls.make_environment(spec.param("target"), seed=seed,
                                      **overrides)
    result = attack_cls(env).run()
    return {
        "type": "attack",
        "attack": result.attack,
        "target": result.target,
        "success": result.success,
        "mitigated_by": result.mitigated_by,
        "evidence": sanitize(result.evidence),
        "checks_pass": None,
    }


@artifact_boundary
def _run_fleet(spec: TaskSpec, seed: int, shard_workers: int = 1) -> dict:
    from repro.harness.fleet import FLEET_PRESETS
    from repro.runner.shardpool import ShardPoolConfig, run_sharded

    scenario_spec = FLEET_PRESETS[spec.name].spec(
        system=spec.param("system"), scale=spec.scale, seed=seed,
    )
    # ``shard_workers`` is execution policy (how many processes run the
    # spec's shard topology), so it must never reach the payload: the
    # byte-identity contract across --shards values depends on it.
    result = run_sharded(scenario_spec,
                         config=ShardPoolConfig(workers=shard_workers))
    return {
        "type": "fleet",
        "preset": spec.name,
        "system": spec.param("system"),
        "scale": spec.scale,
        "spec": sanitize(scenario_spec.to_dict()),
        "samples": sanitize(result.to_payload()["samples"]),
        "totals": sanitize(result.totals),
        "checks_pass": None,
    }


@artifact_boundary
def _run_selftest(spec: TaskSpec, seed: int, attempt: int) -> dict:
    """Controlled misbehaviour for pool tests and crash-injection runs.

    ``mode`` drives the failure; ``fail_attempts=N`` makes the first N
    attempts fail and later ones succeed, which is how the bounded
    retry path is exercised end to end.
    """
    mode = spec.param("mode", "ok")
    fail_attempts = int(spec.param("fail_attempts", 0))
    failing = attempt < fail_attempts or (fail_attempts == 0 and mode != "ok")
    if failing and mode == "crash":
        os._exit(23)  # simulates a segfaulting worker: no reply, bad exit
    if failing and mode == "hang":
        time.sleep(float(spec.param("hang_s", 3600.0)))
    if failing and mode == "raise":
        raise RuntimeError(f"selftest {spec.name!r} injected failure")
    sleep_s = float(spec.param("sleep_s", 0.0))
    if sleep_s:
        time.sleep(sleep_s)
    return {
        "type": "selftest",
        "name": spec.name,
        "value": sanitize(spec.param("value")),
        "seed": seed,
        "checks_pass": True,
    }


def execute_task(spec: TaskSpec, seed: int, attempt: int = 0, *,
                 shard_workers: int = 1) -> dict:
    """Run one task and return its canonical payload.

    Pure in ``(spec, seed)`` for experiments and attacks — ``attempt``
    only influences the self-test kind, so retries of real work always
    reproduce the first attempt's result, and ``shard_workers`` (the
    process count executing a sharded fleet scenario) never changes a
    payload byte.
    """
    if spec.kind == "experiment":
        return _run_experiment(spec, seed)
    if spec.kind == "attack":
        return _run_attack(spec, seed)
    if spec.kind == "fleet":
        return _run_fleet(spec, seed, shard_workers=shard_workers)
    return _run_selftest(spec, seed, attempt)
