"""Selector grammar: turn CLI words into task specs.

Accepted selectors (``python -m repro run <selector>...``):

``all``
    Every experiment in the registry (also ``--all``).
``<experiment>``
    One registry experiment by name (``fig4``, ``table1``...).
``tag:<tag>``
    Every experiment whose :class:`ExperimentSpec` carries the tag
    (``tag:quick`` is the CI smoke sweep).
``attack:<name>[@<engine>]``
    One attack cell; the engine defaults to the attack's published
    insecure target.
``fleet:<preset>[@<system>]``
    One spec-driven fleet scenario (see
    :data:`repro.harness.fleet.FLEET_PRESETS`) against one system
    preset — or, with no ``@<system>``, against all four columns.
``matrix``
    The full security matrix: every Table-1 attack against every
    engine in :data:`MATRIX_ENGINES` (insecure baselines and VUsion).

Duplicate expansions collapse on task id, preserving first-seen order.
"""

from __future__ import annotations

from repro.runner.task import TaskSpec

#: Engine columns of the security matrix sweep.
MATRIX_ENGINES = ("ksm", "coa-ksm", "wpf", "zeropage", "vusion")


def _matrix_tasks() -> list[TaskSpec]:
    from repro.harness.experiments import TABLE1_ATTACKS

    return [
        TaskSpec.attack(attack_cls.name, target=engine)
        for attack_cls in TABLE1_ATTACKS
        for engine in MATRIX_ENGINES
    ]


def _experiments_by_tag(tag: str) -> list[str]:
    from repro.harness.experiments import EXPERIMENTS

    names = [name for name, spec in EXPERIMENTS.items() if tag in spec.tags]
    if not names:
        known = sorted({t for s in EXPERIMENTS.values() for t in s.tags})
        raise ValueError(
            f"no experiment carries tag {tag!r} (known tags: {', '.join(known)})"
        )
    return names


def expand_selectors(selectors, *, select_all: bool = False,
                     scale: str = "quick") -> list[TaskSpec]:
    """Expand selector strings into a deduplicated task list."""
    from repro.harness.experiments import EXPERIMENTS

    tasks: list[TaskSpec] = []
    words = list(selectors)
    if select_all:
        words.append("all")
    if not words:
        raise ValueError("no selectors given (try an experiment name, "
                         "'tag:quick', 'matrix' or --all)")
    for word in words:
        if word == "all":
            tasks.extend(TaskSpec.experiment(name, scale=scale)
                         for name in EXPERIMENTS)
        elif word == "matrix":
            tasks.extend(_matrix_tasks())
        elif word.startswith("tag:"):
            tasks.extend(
                TaskSpec.experiment(name, scale=scale)
                for name in _experiments_by_tag(word[len("tag:"):])
            )
        elif word.startswith("attack:"):
            spec = word[len("attack:"):]
            name, _, engine = spec.partition("@")
            tasks.append(TaskSpec.attack(name, target=engine or None))
        elif word.startswith("fleet:"):
            from repro.harness.scenario import PRESETS

            spec = word[len("fleet:"):]
            name, _, system = spec.partition("@")
            systems = (system,) if system else tuple(PRESETS)
            tasks.extend(TaskSpec.fleet(name, system=sys_name, scale=scale)
                         for sys_name in systems)
        elif word in EXPERIMENTS:
            tasks.append(TaskSpec.experiment(word, scale=scale))
        else:
            raise ValueError(
                f"unknown selector {word!r} (experiment name, tag:<tag>, "
                f"attack:<name>[@<engine>], fleet:<preset>[@<system>], "
                f"'matrix' or 'all')"
            )
    seen: set[str] = set()
    unique: list[TaskSpec] = []
    for task in tasks:
        if task.task_id not in seen:
            seen.add(task.task_id)
            unique.append(task)
    return unique
