"""Deterministic per-task seed derivation.

Every task in a sweep gets its own seed, derived from the run's root
seed and the task's stable identity.  Derivation is a pure function —
independent of worker count, scheduling order, retries and platform —
which is what makes ``--jobs N`` bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import hashlib

#: Mask keeping derived seeds in a comfortable integer range (also the
#: range ``random.Random`` hashes cheaply).
_SEED_BITS = 63


def derive_seed(root_seed: int, task_id: str) -> int:
    """Derive the seed for ``task_id`` from ``root_seed``.

    SHA-256 over a canonical string; collisions between distinct task
    ids are cryptographically negligible, and nearby root seeds produce
    unrelated task seeds (no accidental correlation between sweeps).
    """
    material = f"repro-runner:{root_seed}:{task_id}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)
