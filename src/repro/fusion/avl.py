"""AVL tree keyed by page content, as used by Windows Page Fusion.

WPF stores already-fused pages in "multiple AVL trees that have the
same functionality as KSM's stable tree" (paper §2.2).  Keys here are
stable (fused pages are read-only), so a classic recursive AVL with
static keys is faithful.  ``on_compare`` charges simulated time per
content comparison, like the red-black tree.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class _AvlNode(Generic[T]):
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: bytes, value: T) -> None:
        self.key = key
        self.value = value
        self.left: "_AvlNode[T] | None" = None
        self.right: "_AvlNode[T] | None" = None
        self.height = 1


def _height(node: "_AvlNode[T] | None") -> int:
    return node.height if node is not None else 0


def _balance(node: "_AvlNode[T]") -> int:
    return _height(node.left) - _height(node.right)


class AvlTree(Generic[T]):
    """Self-balancing AVL tree mapping content keys to values."""

    def __init__(self, on_compare: Callable[[], None] | None = None) -> None:
        self._root: "_AvlNode[T] | None" = None
        self._on_compare = on_compare
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _compare(self, key: bytes, node_key: bytes) -> int:
        if self._on_compare is not None:
            self._on_compare()
        if key < node_key:
            return -1
        if key > node_key:
            return 1
        return 0

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: bytes) -> T | None:
        node = self._root
        while node is not None:
            order = self._compare(key, node.key)
            if order == 0:
                return node.value
            node = node.left if order < 0 else node.right
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.search(key) is not None

    # ------------------------------------------------------------------
    # Insert / delete
    # ------------------------------------------------------------------
    def insert(self, key: bytes, value: T) -> None:
        self._root = self._insert(self._root, key, value)
        self._size += 1

    def _insert(self, node: "_AvlNode[T] | None", key: bytes, value: T) -> "_AvlNode[T]":
        if node is None:
            return _AvlNode(key, value)
        order = self._compare(key, node.key)
        if order == 0:
            raise ValueError(f"duplicate key {key!r}")
        if order < 0:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return self._rebalance(node)

    def remove(self, key: bytes) -> T:
        self._root, removed = self._remove(self._root, key)
        self._size -= 1
        return removed

    def _remove(
        self, node: "_AvlNode[T] | None", key: bytes
    ) -> tuple["_AvlNode[T] | None", T]:
        if node is None:
            raise KeyError(key)
        order = self._compare(key, node.key)
        if order < 0:
            node.left, removed = self._remove(node.left, key)
        elif order > 0:
            node.right, removed = self._remove(node.right, key)
        else:
            removed = node.value
            if node.left is None:
                return node.right, removed
            if node.right is None:
                return node.left, removed
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _ = self._remove(node.right, successor.key)
        return self._rebalance(node), removed

    # ------------------------------------------------------------------
    # Balancing
    # ------------------------------------------------------------------
    def _rebalance(self, node: "_AvlNode[T]") -> "_AvlNode[T]":
        node.height = 1 + max(_height(node.left), _height(node.right))
        balance = _balance(node)
        if balance > 1:
            if _balance(node.left) < 0:
                node.left = self._rotate_left(node.left)
            return self._rotate_right(node)
        if balance < -1:
            if _balance(node.right) > 0:
                node.right = self._rotate_right(node.right)
            return self._rotate_left(node)
        return node

    def _rotate_left(self, node: "_AvlNode[T]") -> "_AvlNode[T]":
        pivot = node.right
        node.right = pivot.left
        pivot.left = node
        node.height = 1 + max(_height(node.left), _height(node.right))
        pivot.height = 1 + max(_height(pivot.left), _height(pivot.right))
        return pivot

    def _rotate_right(self, node: "_AvlNode[T]") -> "_AvlNode[T]":
        pivot = node.left
        node.left = pivot.right
        pivot.right = node
        node.height = 1 + max(_height(node.left), _height(node.right))
        pivot.height = 1 + max(_height(pivot.left), _height(pivot.right))
        return pivot

    # ------------------------------------------------------------------
    # Iteration / validation
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[bytes, T]]:
        def walk(node: "_AvlNode[T] | None") -> Iterator[tuple[bytes, T]]:
            if node is None:
                return
            yield from walk(node.left)
            yield node.key, node.value
            yield from walk(node.right)

        return walk(self._root)

    def check_invariants(self) -> None:
        """Verify AVL balance and key ordering."""

        def walk(node: "_AvlNode[T] | None") -> int:
            if node is None:
                return 0
            left = walk(node.left)
            right = walk(node.right)
            if abs(left - right) > 1:
                raise AssertionError("AVL balance violated")
            if node.height != 1 + max(left, right):
                raise AssertionError("stale height")
            if node.left is not None and not node.left.key < node.key:
                raise AssertionError("left key out of order")
            if node.right is not None and not node.key < node.right.key:
                raise AssertionError("right key out of order")
            return node.height

        walk(self._root)
