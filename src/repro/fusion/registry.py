"""Single factory for every fusion engine the harness can build.

Historically engine construction lived in two places with drifting
defaults: a factory dict in :mod:`repro.attacks.base` (fast scan
parameters for the attack harness) and ``build_engine`` in
:mod:`repro.harness.scenario` (per-:class:`SystemConfig` wiring for the
experiment drivers).  Both now delegate here: :func:`create_engine`
accepts a name plus optional configuration objects and returns a ready
engine (or ``None`` for the no-dedup baseline).

The registry also carries per-engine metadata (:class:`EngineSpec`) so
the CLI and the experiment runner can enumerate engines uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.core.vusion import Vusion
from repro.fusion.base import FusionEngine
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.memory_combining import MemoryCombining
from repro.fusion.wpf import WindowsPageFusion
from repro.fusion.zeropage import ZeroPageFusion
from repro.params import FusionConfig, MINUTE, MS, VusionConfig, WpfConfig


@dataclass(frozen=True)
class EngineSpec:
    """Metadata for one constructible engine."""

    name: str
    description: str
    #: Secure against the paper's Table-1 attacks (SB + RA enforced)?
    secure: bool = False
    #: Ablated VUsion variant (drops one §7.1 design decision)?
    ablation: bool = False


ENGINE_SPECS: dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec("none", "no page fusion (baseline)"),
        EngineSpec("ksm", "Linux KSM, copy-on-write unmerge"),
        EngineSpec("coa-ksm", "KSM variant with copy-on-access unmerge"),
        EngineSpec("wpf", "Windows Page Fusion (periodic full passes)"),
        EngineSpec("zeropage", "zero pages only"),
        EngineSpec("memory-combining", "Windows swap-cache deduplication"),
        EngineSpec("vusion", "VUsion: SB + RA secure fusion", secure=True),
        EngineSpec("vusion-nocd", "VUsion without the cache-disable bit",
                   ablation=True),
        EngineSpec("vusion-nodefer", "VUsion without deferred frame free",
                   ablation=True),
        EngineSpec("vusion-norerand", "VUsion without per-scan re-randomization",
                   ablation=True),
        EngineSpec("vusion-naive", "VUsion without working-set estimation",
                   ablation=True),
    )
}

#: Ablation name -> VusionConfig field it disables.
_VUSION_ABLATIONS: dict[str, dict] = {
    "vusion": {},
    "vusion-nocd": {"cache_disable_enabled": False},
    "vusion-nodefer": {"deferred_free_enabled": False},
    "vusion-norerand": {"rerandomize_each_scan": False},
    "vusion-naive": {"working_set_enabled": False},
}


def default_fusion_config() -> FusionConfig:
    """The attack harness's fast scan rate (512 pages / 20 ms)."""
    return FusionConfig(pages_per_scan=512, scan_interval=20 * MS)


def default_vusion_config() -> VusionConfig:
    """The attack harness's fast VUsion knobs."""
    return VusionConfig(random_pool_frames=2048, min_idle_ns=100 * MS)


def create_engine(
    name: str,
    *,
    fusion_config: FusionConfig | None = None,
    vusion_config: VusionConfig | None = None,
    wpf_config: WpfConfig | None = None,
    swap_after_ns: int | None = None,
) -> FusionEngine | None:
    """Build the engine ``name`` (``None`` for the no-dedup baseline).

    Defaults reproduce the attack harness's fast parameters; the
    scenario driver passes explicit configs derived from its
    :class:`~repro.harness.scenario.SystemConfig` instead.
    """
    if name not in ENGINE_SPECS:
        raise ValueError(f"unknown engine {name!r}")
    scan = fusion_config or default_fusion_config()
    if name == "none":
        return None
    if name == "ksm":
        return Ksm(scan)
    if name == "coa-ksm":
        return CopyOnAccessKsm(scan)
    if name == "zeropage":
        return ZeroPageFusion(scan)
    if name == "memory-combining":
        if swap_after_ns is None:
            return MemoryCombining(scan)
        return MemoryCombining(scan, swap_after_ns=swap_after_ns)
    if name == "wpf":
        return WindowsPageFusion(wpf_config or WpfConfig(pass_interval=15 * MINUTE))
    # VUsion proper and its ablated variants.
    base = vusion_config or default_vusion_config()
    overrides = _VUSION_ABLATIONS[name]
    if overrides:
        base = replace(base, **overrides)
    return Vusion(base, scan)


def engine_names() -> tuple[str, ...]:
    return tuple(ENGINE_SPECS)


def attack_engine_factories() -> dict[str, Callable[[], FusionEngine | None]]:
    """Name -> zero-arg factory with the attack harness's defaults."""

    def make(engine_name: str) -> Callable[[], FusionEngine | None]:
        if engine_name == "memory-combining":
            return lambda: create_engine(engine_name, swap_after_ns=200 * MS)
        return lambda: create_engine(engine_name)

    return {engine_name: make(engine_name) for engine_name in ENGINE_SPECS}
