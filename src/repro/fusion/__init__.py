"""Page-fusion engines: KSM, Windows Page Fusion and baselines.

The secure engine (VUsion) lives in :mod:`repro.core`.
"""

from repro.fusion.base import FusionEngine, FusionStats
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.memory_combining import MemoryCombining
from repro.fusion.wpf import WindowsPageFusion
from repro.fusion.zeropage import ZeroPageFusion

__all__ = [
    "CopyOnAccessKsm",
    "FusionEngine",
    "FusionStats",
    "Ksm",
    "MemoryCombining",
    "WindowsPageFusion",
    "ZeroPageFusion",
]
