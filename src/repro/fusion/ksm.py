"""Linux Kernel Same-page Merging (the paper's insecure baseline).

Faithful to the structure described in §2.1:

* madvise-registered VMAs are scanned round-robin, N pages per T ms;
* a *stable* red-black tree holds fused (read-only) pages and an
  *unstable* tree holds unprotected candidates whose contents may
  drift; the unstable tree is reset after every full scan;
* a checksum pass skips volatile pages (a page must be seen twice with
  identical content before it becomes merge-eligible);
* merging reuses **one of the sharing parties' frames** to back the
  shared copy and frees the duplicate to the buddy allocator — the two
  properties Flip Feng Shui and its reuse variant abuse;
* writing a fused page takes a copy-on-write fault, whose extra
  latency is the classic deduplication side channel (Fig. 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fusion.base import FusionEngine, ScanCursor
from repro.fusion.incremental import INSERT, NOOP, PURE, IncrementalScanCache
from repro.fusion.rbtree import RedBlackTree
from repro.mem.physmem import FrameType
from repro.mmu.pte import PteFlags
from repro.params import DEFAULT_FUSION, FusionConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.mmu.page_table import TranslationResult
    from repro.kernel.access import AccessKind


class StableNode:
    """One read-only shared page in the stable tree."""

    __slots__ = ("pfn",)

    def __init__(self, pfn: int) -> None:
        self.pfn = pfn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StableNode(pfn={self.pfn})"


class UnstableRef:
    """A scanned-but-unprotected candidate page in the unstable tree."""

    __slots__ = ("pid", "vaddr", "pfn")

    def __init__(self, pid: int, vaddr: int, pfn: int) -> None:
        self.pid = pid
        self.vaddr = vaddr
        self.pfn = pfn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UnstableRef(pid={self.pid}, vaddr={self.vaddr:#x}, pfn={self.pfn})"


class Ksm(FusionEngine):
    """Kernel Same-page Merging."""

    name = "ksm"

    def __init__(
        self,
        config: FusionConfig = DEFAULT_FUSION,
        protect_reads: bool = False,
        use_zero_pages: bool = False,
    ) -> None:
        """``protect_reads=True`` builds the modified KSM of Fig. 4 that
        unmerges on *any* page fault (copy-on-access) rather than only
        on writes — merged PTEs additionally carry the reserved bit.
        ``use_zero_pages`` enables KSM's off-by-default option of
        mapping all-zero candidates to the shared kernel zero page
        instead of a stable node."""
        super().__init__()
        self.config = config
        self.protect_reads = protect_reads
        self.use_zero_pages = use_zero_pages
        self.cursor: ScanCursor | None = None
        self.stable: RedBlackTree[StableNode] | None = None
        self.unstable: RedBlackTree[UnstableRef] | None = None
        self._nodes_by_pfn: dict[int, StableNode] = {}
        self._checksums: dict[tuple[int, int], int] = {}
        self._zero_mapped = 0
        self._inc: IncrementalScanCache | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, kernel: "Kernel") -> None:
        def charge() -> None:
            # Quiet inserts re-build tree state whose comparisons were
            # already charged when the originating memo was recorded.
            if inc.quiet:
                return
            kernel.clock.advance(kernel.costs.tree_compare)

        self.cursor = ScanCursor(kernel)
        self.stable = RedBlackTree(
            key_of=lambda node: kernel.physmem.read(node.pfn), on_compare=charge
        )
        self.unstable = RedBlackTree(
            key_of=lambda ref: kernel.physmem.read(ref.pfn), on_compare=charge
        )
        inc = self._inc = IncrementalScanCache(
            kernel, self.name, charged=True, insert=self.unstable.insert
        )
        kernel.register_daemon("ksmd", self.config.scan_interval, self.scan_tick)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan_tick(self) -> None:
        kernel = self.kernel
        inc = self._inc
        self.stats.scans += 1
        inc.begin_tick()
        for _ in range(self.config.pages_per_scan):
            full_scans_before = self.cursor.full_scans
            batch = self.cursor.next_pages(1)
            if self.cursor.full_scans != full_scans_before:
                # The cursor wrapped: a full pass over all candidates
                # completed and KSM rebuilds the unstable tree from
                # scratch — exactly at the wrap point, so scan order
                # within a round is strictly registration order.
                self.unstable.clear()
                inc.begin_round()
                self.stats.full_scans = self.cursor.full_scans
            if not batch:
                break
            process, _vma, vaddr = batch[0]
            kernel.clock.advance(kernel.costs.scan_page)
            self.stats.pages_scanned += 1
            if inc.try_replay(process, vaddr):
                continue
            inc.materialize()
            start = kernel.clock.now
            outcome = self._scan_one(process, vaddr)
            inc.commit(process, vaddr, outcome, kernel.clock.now - start)

    def _scan_one(self, process: "Process", vaddr: int):
        """Scan one page; returns the replay outcome for the memo cache
        (None marks the step opaque: it mutated engine/kernel state)."""
        kernel = self.kernel
        walk = process.address_space.page_table.walk(vaddr)
        if walk is None or walk.pte.fused or walk.pte.reserved:
            return (PURE,)
        pfn = walk.frame_for(vaddr)
        content = kernel.physmem.read(pfn)
        kernel.clock.advance(kernel.costs.checksum_page)
        if self.use_zero_pages and not content:
            self._merge_zero_page(process, vaddr, walk)
            return None
        key = (process.pid, vaddr)
        digest = kernel.physmem.digest(pfn)
        if self._checksums.get(key) != digest:
            # Volatile page: remember the checksum, try again next pass.
            self._checksums[key] = digest
            self.stats.volatile_skips += 1
            return None

        node = self.stable.search(content)
        if node is not None:
            if node.pfn == pfn:
                return (NOOP, pfn, digest)
            self._merge_into(process, vaddr, node)
            return None

        match = self.unstable.search(content)
        if match is not None and (match.pid, match.vaddr) != key:
            node = self._promote(match, content)
            if node is not None:
                self._merge_into(process, vaddr, node)
                return None
            match = None
        if match is None:
            ref = UnstableRef(process.pid, vaddr, pfn)
            self.unstable.insert(ref)
            return (INSERT, pfn, digest, ref)
        return (NOOP, pfn, digest)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _fused_flags(self) -> PteFlags:
        flags = PteFlags.USER | PteFlags.FUSED
        if self.protect_reads:
            flags |= PteFlags.RESERVED
        return flags

    def _promote(self, match: UnstableRef, content: bytes) -> StableNode | None:
        """Write-protect an unstable match and move it to the stable tree.

        The match's own physical frame becomes the shared stable page —
        KSM's defining (and exploitable) allocation behaviour.
        """
        kernel = self.kernel
        owner = kernel.find_process(match.pid)
        if owner is None or not owner.alive:
            self.unstable.discard(match)
            return None
        walk = owner.address_space.page_table.walk(match.vaddr)
        if (
            walk is None
            or walk.pte.fused
            or walk.pte.reserved
            or walk.frame_for(match.vaddr) != match.pfn
            or not kernel.physmem.same_content(match.pfn, content)
        ):
            # The unstable tree went stale underneath us.
            self.unstable.discard(match)
            return None
        if walk.huge:
            kernel.split_huge_mapping(owner, match.vaddr)
            walk = owner.address_space.page_table.walk(match.vaddr)
        pte = walk.pte
        pte.clear(PteFlags.WRITABLE)
        pte.set(self._fused_flags())
        owner.tlb.invalidate_page(match.vaddr >> 12)
        kernel.clock.advance(kernel.costs.pte_update)
        node = StableNode(match.pfn)
        kernel.physmem.pin_fused(match.pfn)
        kernel.physmem.get_ref(match.pfn)
        self.stable.insert(node)
        self._inc.bump_epoch()
        self._nodes_by_pfn[match.pfn] = node
        self.unstable.discard(match)
        self.stats.stable_nodes_created += 1
        self.stats.merge_frame_log.append(match.pfn)
        kernel.emit("fusion:promote", pid=match.pid, vaddr=match.vaddr, pfn=match.pfn)
        return node

    def _merge_zero_page(self, process: "Process", vaddr: int, walk) -> None:
        """Map an all-zero candidate onto the kernel's shared zero page."""
        from repro.kernel.kernel import ZERO_FRAME

        kernel = self.kernel
        if walk.frame_for(vaddr) == ZERO_FRAME:
            return
        if walk.huge:
            kernel.split_huge_mapping(process, vaddr)
        old_pfn, refcount, old_pte = kernel.unmap_page(process, vaddr)
        kernel.release_after_unmap(old_pfn, refcount, old_pte)
        kernel.map_page(process, vaddr, ZERO_FRAME, self._fused_flags())
        self._zero_mapped += 1
        self.stats.merges += 1

    def _merge_into(self, process: "Process", vaddr: int, node: StableNode) -> None:
        """Point the scanned page at the stable frame, free its duplicate."""
        kernel = self.kernel
        walk = process.address_space.page_table.walk(vaddr)
        if walk.huge:
            kernel.split_huge_mapping(process, vaddr)
        old_pfn, refcount, old_pte = kernel.unmap_page(process, vaddr)
        kernel.release_after_unmap(old_pfn, refcount, old_pte)
        kernel.map_page(process, vaddr, node.pfn, self._fused_flags())
        self.stats.merges += 1
        self.stats.merge_frame_log.append(node.pfn)
        kernel.emit("fusion:merge", pid=process.pid, vaddr=vaddr, pfn=node.pfn)

    # ------------------------------------------------------------------
    # Unmerging
    # ------------------------------------------------------------------
    def _unmerge(self, process: "Process", vaddr: int, node_pfn: int) -> None:
        """Copy-on-write/-access: give the faulting page a private copy."""
        kernel = self.kernel
        new_pfn = kernel.alloc_frame(FrameType.ANON)
        kernel.copy_page_cached(node_pfn, new_pfn)
        kernel.unmap_page(process, vaddr)
        kernel.map_page(
            process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE
        )
        self._note_fused_unmapped(node_pfn)
        self._maybe_release_node(node_pfn)
        kernel.emit("fusion:unmerge", pid=process.pid, vaddr=vaddr, pfn=node_pfn)

    def handle_fused_write(
        self, process: "Process", vaddr: int, walk: "TranslationResult"
    ) -> None:
        self.kernel.trace("ksm_cow",)
        self.stats.cow_unmerges += 1
        self._unmerge(process, vaddr, walk.pte.pfn)

    def handle_reserved_fault(
        self,
        process: "Process",
        vaddr: int,
        walk: "TranslationResult",
        kind: "AccessKind",
    ) -> None:
        if not self.protect_reads:
            return super().handle_reserved_fault(process, vaddr, walk, kind)
        self.kernel.trace("ksm_coa",)
        self.stats.coa_unmerges += 1
        self._unmerge(process, vaddr, walk.pte.pfn)

    def _note_fused_unmapped(self, pfn: int) -> None:
        from repro.kernel.kernel import ZERO_FRAME

        if self.use_zero_pages and pfn == ZERO_FRAME and self._zero_mapped > 0:
            self._zero_mapped -= 1

    def on_fused_ref_drop(self, pfn: int) -> None:
        self._note_fused_unmapped(pfn)
        self._maybe_release_node(pfn)

    def on_mergeable_unmapped(self, process: "Process", vma) -> None:
        """Drop the region's rmap state before its frames are freed.

        Unstable refs point at unprotected private frames; once the
        VMA's frames are released a tree comparison would read freed
        memory.  Removal is structural (no key comparisons), so no
        simulated time is charged — matching Linux KSM, where removing
        rmap_items on exit is not part of the scan cost.
        """
        pid = process.pid
        for ref in self.unstable.values():
            if ref.pid == pid and vma.start <= ref.vaddr < vma.end:
                self.unstable.remove(ref)
        stale = [key for key in self._checksums
                 if key[0] == pid and vma.start <= key[1] < vma.end]
        for key in stale:
            del self._checksums[key]

    def unmerge_for_collapse(self, process: "Process", vaddr: int) -> None:
        walk = process.address_space.page_table.walk(vaddr)
        if walk is not None and walk.pte.fused:
            self._unmerge(process, vaddr, walk.pte.pfn)

    def _maybe_release_node(self, pfn: int) -> None:
        """Drop a stable node once only the tree pin references it."""
        node = self._nodes_by_pfn.get(pfn)
        if node is None or self.kernel.physmem.refcount(pfn) != 1:
            return
        self.stable.remove(node)
        self._inc.bump_epoch()
        del self._nodes_by_pfn[pfn]
        self.kernel.physmem.unpin_fused(pfn)
        self.kernel.physmem.put_ref(pfn)
        self.kernel.free_frame(pfn)
        self.stats.stable_nodes_released += 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def incremental_stats(self) -> dict[str, int]:
        return self._inc.stats_dict() if self._inc is not None else {}

    def shard_exportable_pfns(self) -> list[int]:
        # Stable-tree frames only: merged, write-protected content.
        # Unstable candidates are still writable guest pages — their
        # digests never leave the node.
        return sorted(self._nodes_by_pfn)

    def sharing_pairs(self) -> tuple[int, int]:
        # One scan-kernel reduction over the stable pfns; monitors
        # sample this every tick, so it must not loop in Python.
        pages_shared = len(self._nodes_by_pfn)
        pages_sharing = (
            self.kernel.physmem.scan_kernel.refcount_sum(self._nodes_by_pfn)
            - pages_shared
        )
        if self._zero_mapped:
            pages_shared += 1
            pages_sharing += self._zero_mapped
        return pages_shared, pages_sharing

    def saved_frames(self) -> int:
        pages_shared, pages_sharing = self.sharing_pairs()
        return pages_sharing - pages_shared
