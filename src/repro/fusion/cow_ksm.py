"""The "unmerge on any page fault" KSM variant of Fig. 4.

The paper modifies KSM to unmerge on *any* access (copy-on-access) in
order to measure how much fusion rate the S⊕F principle costs.  Here
that is simply KSM with read protection switched on — kept as its own
class so experiments and docs can name it.  It inherits KSM's
incremental scan cache unchanged: the reserved bit rides on the same
PTEs, so the same replay gates apply.  It likewise inherits KSM's
content-identity fast paths (``same_content`` revalidation, arena-backed
digests); the frequent copy-on-access unmerges it triggers are O(1)
content-id moves on the columnar store.
"""

from __future__ import annotations

from repro.fusion.ksm import Ksm
from repro.params import DEFAULT_FUSION, FusionConfig


class CopyOnAccessKsm(Ksm):
    """KSM that copy-on-accesses merged pages instead of copy-on-write."""

    name = "coa-ksm"

    def __init__(self, config: FusionConfig = DEFAULT_FUSION) -> None:
        super().__init__(config=config, protect_reads=True)
