"""Zero-page-only fusion (the mitigation the paper rejects).

Dedup Est Machina proposed merging only all-zero pages as a
deduplication-side-channel mitigation; Fig. 4 of the VUsion paper shows
this captures only ~16% of the duplicate pages in a cloud setting, and
§6.1 notes it is not secure against Flip Feng Shui by itself.  This
engine merges every idle zero page onto one shared zero frame and does
nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fusion.base import FusionEngine, ScanCursor
from repro.mem.physmem import FrameType
from repro.mmu.pte import PteFlags
from repro.params import DEFAULT_FUSION, FusionConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.mmu.page_table import TranslationResult


class ZeroPageFusion(FusionEngine):
    """Merge only pages whose content is all zeros."""

    name = "zeropage"

    def __init__(self, config: FusionConfig = DEFAULT_FUSION) -> None:
        super().__init__()
        self.config = config
        self.cursor: ScanCursor | None = None
        self._zero_frame: int | None = None
        self._zero_mappers = 0

    def _register(self, kernel: "Kernel") -> None:
        self.cursor = ScanCursor(kernel)
        # A dedicated shared zero frame, pinned by the engine.
        self._zero_frame = kernel.alloc_frame(FrameType.KERNEL, zero=True)
        kernel.physmem.get_ref(self._zero_frame)
        kernel.physmem.pin_fused(self._zero_frame)
        kernel.register_daemon(
            "zeropaged", self.config.scan_interval, self.scan_tick
        )

    def scan_tick(self) -> None:
        kernel = self.kernel
        self.stats.scans += 1
        for process, vma, vaddr in self.cursor.next_pages(self.config.pages_per_scan):
            kernel.clock.advance(kernel.costs.scan_page)
            self.stats.pages_scanned += 1
            self._scan_one(process, vaddr)

    def _scan_one(self, process: "Process", vaddr: int) -> None:
        kernel = self.kernel
        walk = process.address_space.page_table.walk(vaddr)
        if walk is None or walk.pte.fused:
            return
        pfn = walk.frame_for(vaddr)
        # The scan kernel's zero probe: an integer compare against the
        # zero content id on the batch kernel, is_zero(read(pfn)) on
        # the scalar reference.
        if pfn == self._zero_frame or not kernel.physmem.scan_kernel.is_zero_frame(pfn):
            return
        if walk.huge:
            # Like KSM, break the THP to merge the zero subpage.
            kernel.split_huge_mapping(process, vaddr)
        kernel.clock.advance(kernel.costs.checksum_page)
        old_pfn, refcount, old_pte = kernel.unmap_page(process, vaddr)
        kernel.release_after_unmap(old_pfn, refcount, old_pte)
        kernel.map_page(
            process, vaddr, self._zero_frame, PteFlags.USER | PteFlags.FUSED
        )
        self._zero_mappers += 1
        self.stats.merges += 1
        self.stats.merge_frame_log.append(self._zero_frame)

    def handle_fused_write(
        self, process: "Process", vaddr: int, walk: "TranslationResult"
    ) -> None:
        kernel = self.kernel
        new_pfn = kernel.alloc_frame(FrameType.ANON, zero=True)
        kernel.clock.advance(kernel.costs.copy_page)
        kernel.unmap_page(process, vaddr)
        kernel.map_page(
            process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE
        )
        self._zero_mappers -= 1
        self.stats.cow_unmerges += 1

    def on_fused_ref_drop(self, pfn: int) -> None:
        if pfn == self._zero_frame:
            self._zero_mappers -= 1

    def unmerge_for_collapse(self, process: "Process", vaddr: int) -> None:
        walk = process.address_space.page_table.walk(vaddr)
        if walk is not None and walk.pte.fused:
            self.handle_fused_write(process, vaddr, walk)

    def shard_exportable_pfns(self) -> list[int]:
        # The pinned shared zero frame, once anyone maps it.  Every
        # shard advertises the same digest, so the exchange elects
        # shard 0's zero frame as the fabric-wide canonical holder.
        if self._zero_frame is None or not self._zero_mappers:
            return []
        return [self._zero_frame]

    def sharing_pairs(self) -> tuple[int, int]:
        return (1, self._zero_mappers) if self._zero_mappers else (0, 0)

    def saved_frames(self) -> int:
        return max(0, self._zero_mappers - 1) if self._zero_mappers else 0
