"""Incremental scan replay on top of the fingerprint subsystem.

The fingerprint cache (:mod:`repro.mem.fingerprint`) answers "is this
frame's digest still valid?".  This module answers the follow-up that
actually makes scans fast: "is this *scan step* going to do exactly
what it did last round?" — and if so, replays its recorded clock
charge and side effects instead of re-executing the Python.

Two cache shapes are provided:

:class:`IncrementalScanCache`
    Per-page memos for cursor-driven engines (KSM, VUsion, Memory
    Combining).  Each scanned page commits an *outcome*:

    * ``PURE`` — the page was skipped without reading its content
      (unmapped, already fused, reserved, huge non-base).  Replay is
      gated only on the owner's page-table version: every transition
      out of a skip state goes through map/unmap and bumps it.
    * ``NOOP`` / ``INSERT`` — the page was checksummed and searched
      (and, for ``INSERT``, added to the engine's per-round unstable
      tree).  The recorded charge embeds tree-comparison costs, which
      depend on every *earlier* page of the round, so charged replay
      is additionally gated on: the engine epoch (stable-tree
      content), the kernel's scan topology token, the frame's
      fingerprint generation, and a per-round *taint* flag.
    * ``OPAQUE`` (``None``) — the step mutated engine or kernel state
      (merge, promote, volatile checksum update, working-set probe).
      Never memoized; taints the rest of the round.

    The taint protocol keeps charged replay sound: a round replays
    only while its page-by-page history is byte-for-byte the history
    the memos were recorded against.  Any deviation — an opaque step,
    an insert appearing or disappearing, a digest change — forces the
    remainder of the round through the real scan path, which commits
    fresh memos; the *next* round then replays end to end.

    Replayed ``INSERT`` refs are not pushed into the red-black tree
    eagerly.  They accumulate in a pending list and the tree is only
    *materialized* (quiet, uncharged inserts in recorded order)
    immediately before a real scan needs to search it — in the steady
    state of an idle machine no tree is built at all.

:class:`IncrementalPassCache`
    Whole-pass memos for batch engines (WPF).  A pass that changes
    nothing observable — same topology token and global mutation
    epoch before and after — records its total clock charge; the next
    pass replays it with two integer comparisons.

Both caches are inert when ``MachineSpec.fingerprint_enabled`` is
off: every query returns "no replay" and engines run their original
code paths.  Replay never changes simulated time or simulated
behaviour; only the Python-level work is elided
(tests/test_fingerprint_determinism.py holds both runs byte-equal).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process

#: Outcome kinds committed by engines (``OPAQUE`` is plain ``None``).
PURE = "pure"
NOOP = "noop"
INSERT = "insert"


class PageMemo:
    """Everything needed to replay one page's scan step."""

    __slots__ = ("kind", "ptv", "pfn", "gen", "digest", "charge", "ref", "epoch", "token")

    def __init__(self, kind, ptv, pfn, gen, digest, charge, ref, epoch, token) -> None:
        self.kind = kind
        #: Owner page-table version at record time.
        self.ptv = ptv
        self.pfn = pfn
        #: Fingerprint generation of ``pfn`` at record time.
        self.gen = gen
        self.digest = digest
        #: Simulated nanoseconds the step charged beyond ``scan_page``.
        self.charge = charge
        #: The UnstableRef inserted by an ``INSERT`` step, else None.
        self.ref = ref
        self.epoch = epoch
        self.token = token


class IncrementalScanCache:
    """Per-page scan memos for one cursor-driven fusion engine."""

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        charged: bool = False,
        insert: Callable | None = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.enabled = kernel.physmem.fingerprints.enabled
        #: Whether this engine commits charged (NOOP/INSERT) memos;
        #: pure-skip-only engines (VUsion, Memory Combining) skip the
        #: taint/token machinery entirely.
        self.charged = charged
        self._insert = insert
        #: True while replayed refs are being inserted into the tree;
        #: the engine's on_compare closure checks it to suppress
        #: charges that were already replayed from the memo.
        self.quiet = False
        self._memo: dict[tuple[int, int], PageMemo] = {}
        self._pending: list = []
        self._materialized = False
        self._tainted = False
        self.epoch = 0
        self._token: tuple[int, int, int] | None = None
        self._dirty = (
            kernel.physmem.register_dirty_view(name)
            if charged and self.enabled
            else None
        )
        self.replayed_pure = 0
        self.replayed_charged = 0
        self.real_scans = 0
        self.tainted_rounds = 0

    # ------------------------------------------------------------------
    # Tick / round lifecycle
    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        """Refresh the topology token and audit frames dirtied since
        the last tick.  A mutated *stable* (fusion-pinned) frame is the
        one hazard per-memo generation gates cannot see — its content
        feeds every stable-tree comparison — so it bumps the engine
        epoch, lazily invalidating all charged memos."""
        if not self.enabled or not self.charged:
            return
        self._token = self.kernel.scan_topology_token()
        dirty = self._dirty.drain()
        # Dirty-set intersection with the fusion-pinned frames, via
        # the scan kernel (C-level set disjointness on the batch
        # kernel instead of a per-frame Python probe loop).
        if dirty and self.kernel.physmem.scan_kernel.any_fused(dirty):
            self.epoch += 1

    def begin_round(self) -> None:
        """A full scan completed and the unstable tree was reset."""
        if not self.enabled:
            return
        if self._tainted:
            self.tainted_rounds += 1
        self._tainted = False
        self._pending.clear()
        self._materialized = False

    def bump_epoch(self) -> None:
        """Stable-tree content changed: drop all charged memos (lazily)."""
        self.epoch += 1

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def try_replay(self, process: "Process", vaddr: int) -> bool:
        """Replay the memo for ``(process, vaddr)`` if provably valid.

        Returns True when the step's recorded charge (and insert, if
        any) has been applied and the engine must skip the real scan.
        """
        if not self.enabled:
            return False
        memo = self._memo.get((process.pid, vaddr))
        if memo is None:
            return False
        if memo.kind is PURE:
            if process.address_space.page_table.version != memo.ptv:
                return False
            self.replayed_pure += 1
            return True
        if (
            self._tainted
            or memo.epoch != self.epoch
            or memo.token != self._token
            or process.address_space.page_table.version != memo.ptv
            or self.kernel.physmem.generation(memo.pfn) != memo.gen
        ):
            return False
        if memo.charge:
            self.kernel.clock.advance(memo.charge)
        if memo.ref is not None:
            if self._materialized:
                self._insert_quiet(memo.ref)
            else:
                self._pending.append(memo.ref)
        self.replayed_charged += 1
        return True

    def materialize(self) -> None:
        """Build the unstable tree the replayed prefix implies.

        Called by the engine immediately before any real scan; from
        then until the round wraps, replayed inserts go straight into
        the live tree (still quiet — their compares were charged as
        part of the recorded memo).
        """
        if not self.enabled or self._materialized:
            return
        self._materialized = True
        if self._pending:
            self.quiet = True
            try:
                insert = self._insert
                for ref in self._pending:
                    insert(ref)
            finally:
                self.quiet = False
            self._pending.clear()

    def _insert_quiet(self, ref) -> None:
        self.quiet = True
        try:
            self._insert(ref)
        finally:
            self.quiet = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def commit(self, process: "Process", vaddr: int, outcome, charge: int) -> None:
        """Record the outcome of a real scan step.

        ``outcome`` is ``None`` (opaque), ``(PURE,)``,
        ``(NOOP, pfn, digest)`` or ``(INSERT, pfn, digest, ref)``;
        ``charge`` is the simulated time the step consumed.  Any
        mismatch against the page's previous memo means the round's
        insert sequence diverged from the one later memos were
        recorded against, so the round is tainted and the rest of it
        re-scans (committing fresh, mutually consistent memos).
        """
        if not self.enabled:
            return
        self.real_scans += 1
        key = (process.pid, vaddr)
        prior = self._memo.get(key)
        if outcome is None:
            self._tainted = True
            if prior is not None:
                del self._memo[key]
            return
        kind = outcome[0]
        ptv = process.address_space.page_table.version
        if kind is PURE:
            if prior is not None and prior.kind is INSERT:
                self._tainted = True
            self._memo[key] = PageMemo(PURE, ptv, -1, -1, 0, 0, None, 0, None)
            return
        pfn = outcome[1]
        digest = outcome[2]
        if kind is INSERT:
            ref = outcome[3]
            if prior is None or prior.kind is not INSERT or prior.digest != digest:
                self._tainted = True
        else:
            ref = None
            if prior is not None and prior.kind is INSERT:
                self._tainted = True
        self._memo[key] = PageMemo(
            kind,
            ptv,
            pfn,
            self.kernel.physmem.generation(pfn),
            digest,
            charge,
            ref,
            self.epoch,
            self._token,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_dict(self) -> dict[str, int]:
        return {
            "enabled": int(self.enabled),
            "memos": len(self._memo),
            "replayed_pure": self.replayed_pure,
            "replayed_charged": self.replayed_charged,
            "real_scans": self.real_scans,
            "tainted_rounds": self.tainted_rounds,
        }


class IncrementalPassCache:
    """Whole-pass memo for batch engines (WPF's 15-minute pass).

    A pass is *pure* when the scan topology token and the global frame
    mutation epoch are identical before and after: no page changed, no
    mapping changed, so the pass read everything and wrote nothing.
    The next pass under the same token/epoch necessarily repeats the
    identical work and is replayed as a single clock charge.
    """

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.enabled = kernel.physmem.fingerprints.enabled
        self._memo: tuple | None = None
        self.replays = 0
        self.real_passes = 0

    def try_replay(self) -> tuple[int, int] | None:
        """Return ``(charge, pages)`` to replay, or None to run live."""
        if not self.enabled or self._memo is None:
            return None
        token, epoch, charge, pages = self._memo
        if (
            self.kernel.scan_topology_token() != token
            or self.kernel.physmem.mutation_epoch != epoch
        ):
            self._memo = None
            return None
        self.replays += 1
        return (charge, pages)

    def begin_record(self) -> tuple:
        self.real_passes += 1
        return (
            self.kernel.scan_topology_token(),
            self.kernel.physmem.mutation_epoch,
            self.kernel.clock.now,
        )

    def commit(self, rec: tuple, pages: int) -> None:
        if not self.enabled:
            return
        token, epoch, start = rec
        if (
            self.kernel.scan_topology_token() == token
            and self.kernel.physmem.mutation_epoch == epoch
        ):
            self._memo = (token, epoch, self.kernel.clock.now - start, pages)
        else:
            self._memo = None

    def stats_dict(self) -> dict[str, int]:
        return {
            "enabled": int(self.enabled),
            "memos": int(self._memo is not None),
            "replayed_passes": self.replays,
            "real_passes": self.real_passes,
        }
