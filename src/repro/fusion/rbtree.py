"""Red-black tree keyed by page content, as used by KSM.

KSM's stable and unstable trees balance themselves on the *contents*
of the pages they index.  Stable-tree keys never change (stable pages
are read-only), but unstable-tree pages are unprotected and may be
rewritten after insertion — so the unstable tree "is not always
perfectly balanced" (paper §2.1) and lookups can miss.  The simulator
reproduces that honestly: keys are read through a callback at
comparison time, and the whole unstable tree is reset every scan
cycle, exactly like the real KSM.

Deletion never relies on key comparisons (a node whose key drifted can
still be unlinked): values map to their nodes directly.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)

RED = True
BLACK = False


class _Node(Generic[T]):
    __slots__ = ("value", "left", "right", "parent", "color")

    def __init__(self, value: T | None, color: bool) -> None:
        self.value = value
        self.left: "_Node[T] | None" = None
        self.right: "_Node[T] | None" = None
        self.parent: "_Node[T] | None" = None
        self.color = color


class RedBlackTree(Generic[T]):
    """CLRS-style red-black tree with live (possibly drifting) keys.

    ``key_of(value)`` returns the current comparison key of a stored
    value; it is invoked on every comparison, so key drift after
    insertion degrades search exactly as in KSM's unstable tree.
    ``on_compare`` is called once per comparison and lets the fusion
    engines charge simulated time for content comparisons.
    """

    def __init__(
        self,
        key_of: Callable[[T], bytes],
        on_compare: Callable[[], None] | None = None,
    ) -> None:
        self._key_of = key_of
        self._on_compare = on_compare
        self.nil: _Node[T] = _Node(None, BLACK)
        self.root: _Node[T] = self.nil
        self._nodes: dict[T, _Node[T]] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, value: T) -> bool:
        return value in self._nodes

    def values(self) -> Iterator[T]:
        return iter(list(self._nodes))

    def clear(self) -> None:
        self.root = self.nil
        self._nodes.clear()

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def _compare(self, key: bytes, node: _Node[T]) -> int:
        if self._on_compare is not None:
            self._on_compare()
        node_key = self._key_of(node.value)
        if key < node_key:
            return -1
        if key > node_key:
            return 1
        return 0

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: bytes) -> T | None:
        """Find a stored value whose *current* key equals ``key``."""
        node = self.root
        while node is not self.nil:
            order = self._compare(key, node)
            if order == 0:
                return node.value
            node = node.left if order < 0 else node.right
        return None

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, value: T) -> None:
        if value in self._nodes:
            raise ValueError(f"value {value!r} already in tree")
        key = self._key_of(value)
        node = _Node(value, RED)
        node.left = node.right = self.nil
        parent = self.nil
        cursor = self.root
        while cursor is not self.nil:
            parent = cursor
            cursor = cursor.left if self._compare(key, cursor) < 0 else cursor.right
        node.parent = parent
        if parent is self.nil:
            self.root = node
        elif self._compare(key, parent) < 0:
            parent.left = node
        else:
            parent.right = node
        self._nodes[value] = node
        self._insert_fixup(node)

    def _insert_fixup(self, node: _Node[T]) -> None:
        while node.parent.color is RED:
            parent = node.parent
            grandparent = parent.parent
            if parent is grandparent.left:
                uncle = grandparent.right
                if uncle.color is RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    node = grandparent
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                    node.parent.color = BLACK
                    node.parent.parent.color = RED
                    self._rotate_right(node.parent.parent)
            else:
                uncle = grandparent.left
                if uncle.color is RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    node = grandparent
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                    node.parent.color = BLACK
                    node.parent.parent.color = RED
                    self._rotate_left(node.parent.parent)
        self.root.color = BLACK

    # ------------------------------------------------------------------
    # Delete (structural; never compares keys)
    # ------------------------------------------------------------------
    def remove(self, value: T) -> None:
        node = self._nodes.pop(value)
        self._delete_node(node)

    def discard(self, value: T) -> bool:
        if value not in self._nodes:
            return False
        self.remove(value)
        return True

    def _delete_node(self, node: _Node[T]) -> None:
        removed_color = node.color
        if node.left is self.nil:
            replacement = node.right
            self._transplant(node, node.right)
        elif node.right is self.nil:
            replacement = node.left
            self._transplant(node, node.left)
        else:
            successor = node.right
            while successor.left is not self.nil:
                successor = successor.left
            removed_color = successor.color
            replacement = successor.right
            if successor.parent is node:
                replacement.parent = successor
            else:
                self._transplant(successor, successor.right)
                successor.right = node.right
                successor.right.parent = successor
            self._transplant(node, successor)
            successor.left = node.left
            successor.left.parent = successor
            successor.color = node.color
        if removed_color is BLACK:
            self._delete_fixup(replacement)

    def _transplant(self, old: _Node[T], new: _Node[T]) -> None:
        if old.parent is self.nil:
            self.root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        new.parent = old.parent

    def _delete_fixup(self, node: _Node[T]) -> None:
        while node is not self.root and node.color is BLACK:
            parent = node.parent
            if node is parent.left:
                sibling = parent.right
                if sibling.color is RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    sibling = parent.right
                if sibling.left.color is BLACK and sibling.right.color is BLACK:
                    sibling.color = RED
                    node = parent
                else:
                    if sibling.right.color is BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = parent.right
                    sibling.color = parent.color
                    parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(parent)
                    node = self.root
            else:
                sibling = parent.left
                if sibling.color is RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    sibling = parent.left
                if sibling.right.color is BLACK and sibling.left.color is BLACK:
                    sibling.color = RED
                    node = parent
                else:
                    if sibling.left.color is BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = parent.left
                    sibling.color = parent.color
                    parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(parent)
                    node = self.root
        node.color = BLACK

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------
    def _rotate_left(self, node: _Node[T]) -> None:
        pivot = node.right
        node.right = pivot.left
        if pivot.left is not self.nil:
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent is self.nil:
            self.root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot

    def _rotate_right(self, node: _Node[T]) -> None:
        pivot = node.left
        node.left = pivot.right
        if pivot.right is not self.nil:
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent is self.nil:
            self.root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot

    # ------------------------------------------------------------------
    # Validation (used by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify red-black structure (colors and black-height)."""
        if self.root.color is not BLACK:
            raise AssertionError("root is red")

        def walk(node: _Node[T]) -> int:
            if node is self.nil:
                return 1
            if node.color is RED:
                if node.left.color is RED or node.right.color is RED:
                    raise AssertionError("red node has red child")
            left_height = walk(node.left)
            right_height = walk(node.right)
            if left_height != right_height:
                raise AssertionError("black-height mismatch")
            return left_height + (1 if node.color is BLACK else 0)

        walk(self.root)
