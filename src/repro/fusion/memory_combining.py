"""Windows "Memory Combining": fuse only swapped-out pages (§10.1).

After Dedup Est Machina, Microsoft disabled active page fusion; the
current Windows design instead deduplicates pages *inside a compressed
in-memory swap cache*: a page must first be evicted from the working
set into the store, duplicates are combined there, and any access
swaps the page back in as a private copy.

The paper's point about this design is capacity, not security: because
only swapped pages are eligible, it "misses substantial fusion
opportunities compared to active page fusion."  This engine implements
the design so the comparison can be measured (see
``tests/test_memory_combining.py``), and because swapped pages are
unmapped entirely, the merge/unmerge side channels degenerate into
ordinary swap faults for every stored page — same-behaviour by
construction, at a heavy performance price.

Mechanics here:

* a scan daemon evicts pages idle for ``swap_after_ns`` into the
  store: the PTE is removed and the frame freed;
* the store keeps one compressed copy per distinct content and a map
  of evicted ``(pid, vaddr)`` slots to contents — duplicate contents
  share one entry (that is the combining);
* any access to an evicted page takes a swap-in fault: a fresh frame
  is allocated, the content decompressed into it, and the page mapped
  privately again.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from repro.fusion.base import FusionEngine, ScanCursor
from repro.fusion.incremental import PURE, IncrementalScanCache
from repro.kernel.idle import IdlePageTracker
from repro.mem.content import PageContent, ZERO_PAGE, content_digest
from repro.mem.physmem import FrameType
from repro.mmu.pte import PteFlags
from repro.params import DEFAULT_FUSION, FusionConfig, MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class CompressedStore:
    """Content-addressed compressed page store.

    One zlib-compressed blob per distinct content; reference counts
    track how many evicted page slots point at each blob.  Keys are the
    payloads handed out by ``physmem.read`` — on the columnar store
    those are interned, so the dict probes below resolve equal contents
    through ``bytes`` hash caching and the identity fast path rather
    than byte-by-byte comparison.
    """

    def __init__(self) -> None:
        self._blobs: dict[PageContent, bytes] = {}
        self._refs: dict[PageContent, int] = {}
        self.compressed_bytes = 0

    def __len__(self) -> int:
        return len(self._blobs)

    def insert(self, content: PageContent) -> bool:
        """Store a page; returns True if it combined with an existing one."""
        if content in self._blobs:
            self._refs[content] += 1
            return True
        blob = zlib.compress(content, level=1)
        self._blobs[content] = blob
        self._refs[content] = 1
        self.compressed_bytes += len(blob)
        return False

    def fetch(self, content: PageContent) -> PageContent:
        """Decompress-and-release one reference to ``content``."""
        blob = self._blobs[content]
        restored = zlib.decompress(blob)
        self._refs[content] -= 1
        if self._refs[content] == 0:
            del self._blobs[content]
            del self._refs[content]
            self.compressed_bytes -= len(blob)
        return restored

    def references(self, content: PageContent) -> int:
        return self._refs.get(content, 0)

    def contents(self) -> list[PageContent]:
        """All combined payloads currently stored (export/diagnostics)."""
        return list(self._blobs)


class MemoryCombining(FusionEngine):
    """Swap-cache-only deduplication (no active fusion)."""

    name = "memory-combining"

    def __init__(
        self,
        config: FusionConfig = DEFAULT_FUSION,
        swap_after_ns: int = 500 * MS,
    ) -> None:
        super().__init__()
        self.config = config
        self.swap_after_ns = swap_after_ns
        self.cursor: ScanCursor | None = None
        self.store = CompressedStore()
        #: (pid, vaddr) -> stored content, for every evicted page.
        self._evicted: dict[tuple[int, int], PageContent] = {}
        self.swap_ins = 0
        self.swap_outs = 0
        self.combined = 0
        self._tracker = IdlePageTracker()
        self._last_active: dict[tuple[int, int], int] = {}
        self._inc: IncrementalScanCache | None = None

    def _register(self, kernel: "Kernel") -> None:
        self.cursor = ScanCursor(kernel)
        # Pure-skip memos only: idleness probes clear the accessed bit
        # and evictions mutate the store, so only the walk-level skips
        # (unmapped / huge / fused) are replayable.
        self._inc = IncrementalScanCache(kernel, self.name)
        kernel.register_daemon(
            "memory-combining", self.config.scan_interval, self.scan_tick
        )

    # ------------------------------------------------------------------
    # Eviction scan
    # ------------------------------------------------------------------
    def scan_tick(self) -> None:
        kernel = self.kernel
        inc = self._inc
        self.stats.scans += 1
        for process, _vma, vaddr in self.cursor.next_pages(
            self.config.pages_per_scan
        ):
            kernel.clock.advance(kernel.costs.scan_page)
            self.stats.pages_scanned += 1
            if inc.try_replay(process, vaddr):
                continue
            inc.commit(process, vaddr, self._consider(process, vaddr), 0)
        self.stats.full_scans = self.cursor.full_scans

    def _consider(self, process: "Process", vaddr: int):
        kernel = self.kernel
        walk = process.address_space.page_table.walk(vaddr)
        if walk is None or walk.huge or walk.pte.fused:
            # Leaving these states goes through map/unmap/split and
            # bumps the page-table version, so the skip is pure.
            return (PURE,)
        if walk.pte.cow:
            # The COW bit can be cleared in place (no version bump),
            # so this skip must stay opaque.
            return None
        key = (process.pid, vaddr)
        now = kernel.clock.now
        if self._tracker.check_and_clear(walk.pte) or key not in self._last_active:
            self._last_active[key] = now
            return
        if now - self._last_active[key] < self.swap_after_ns:
            return
        self._swap_out(process, vaddr, walk.pte.pfn)

    def _swap_out(self, process: "Process", vaddr: int, pfn: int) -> None:
        kernel = self.kernel
        physmem = kernel.physmem
        if physmem.scan_kernel.is_zero_frame(pfn):
            # The canonical zero payload (reads identically from both
            # stores), without touching payload storage on the batch
            # kernel — zero pages are the bulk of an idle eviction
            # sweep.
            content = ZERO_PAGE
        else:
            content = physmem.read(pfn)
        combined = self.store.insert(content)
        self._evicted[(process.pid, vaddr)] = content
        old_pfn, refcount, old_pte = kernel.unmap_page(process, vaddr)
        kernel.release_after_unmap(old_pfn, refcount, old_pte)
        kernel.clock.advance(kernel.costs.copy_page)  # compression work
        self.swap_outs += 1
        if combined:
            self.combined += 1
            self.stats.merges += 1
        self._last_active.pop((process.pid, vaddr), None)

    # ------------------------------------------------------------------
    # Swap-in (rides the demand-fault path: the PTE is simply gone)
    # ------------------------------------------------------------------
    def handle_missing_page(self, process: "Process", vaddr: int) -> bool:
        return self.swap_in(process, vaddr)

    def swap_in(self, process: "Process", vaddr: int) -> bool:
        """Restore an evicted page; returns False if not evicted."""
        key = (process.pid, vaddr)
        content = self._evicted.pop(key, None)
        if content is None:
            return False
        kernel = self.kernel
        restored = self.store.fetch(content)
        pfn = kernel.alloc_frame(FrameType.ANON)
        kernel.physmem.write(pfn, restored)
        kernel.clock.advance(kernel.costs.copy_page * 2)  # decompress + copy
        kernel.map_page(
            process, vaddr, pfn, PteFlags.USER | PteFlags.WRITABLE
        )
        self.swap_ins += 1
        return True

    def unmerge_range(self, process: "Process", vma) -> int:
        """``MADV_UNMERGEABLE``: swap every evicted page back in."""
        restored = 0
        for vaddr in vma.pages():
            if self.swap_in(process, vaddr):
                restored += 1
        return restored

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def incremental_stats(self) -> dict[str, int]:
        return self._inc.stats_dict() if self._inc is not None else {}

    def saved_frames(self) -> int:
        """Frames saved vs. keeping every evicted page resident.

        Every evicted slot gave its frame back; the store itself is
        modelled as compressed kernel memory, so the *combining* part
        of the savings is evicted slots minus distinct blobs.
        """
        return len(self._evicted) - len(self.store)

    def sharing_pairs(self) -> tuple[int, int]:
        return len(self.store), len(self._evicted)

    def shard_export(self) -> list[tuple[int, int, int]]:
        """Advertise the compressed store, not resident frames.

        Combined blobs live in kernel memory without a pfn; each row
        uses its digest-sorted slot ordinal as the canonical "pfn", so
        cross-shard ties still resolve deterministically by
        ``(shard, slot)``.
        """
        rows = sorted(
            (content_digest(content), self.store.references(content))
            for content in self.store.contents()
        )
        return [(digest, slot, holders)
                for slot, (digest, holders) in enumerate(rows)]

    def evicted_pages(self) -> int:
        return len(self._evicted)
