"""Common machinery for page-fusion engines.

A fusion engine attaches to a kernel, registers one or more periodic
daemons, and receives fault hooks for the pages it manages (pages whose
PTEs carry the ``FUSED`` software bit and, for VUsion, the ``RESERVED``
hardware trap bit).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import FusionError
from repro.mmu.address_space import Vma
from repro.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.mmu.page_table import TranslationResult
    from repro.kernel.access import AccessKind


@dataclass
class FusionStats:
    """Counters every engine maintains.

    ``merge_frame_log`` records the physical frame chosen to back each
    (fake-)merge — the series whose distribution the paper's RA
    experiment KS-tests against uniform.
    """

    scans: int = 0
    pages_scanned: int = 0
    full_scans: int = 0
    merges: int = 0
    fake_merges: int = 0
    cow_unmerges: int = 0
    coa_unmerges: int = 0
    stable_nodes_created: int = 0
    stable_nodes_released: int = 0
    volatile_skips: int = 0
    working_set_skips: int = 0
    thp_splits: int = 0
    merge_frame_log: list[int] = field(default_factory=list)


class ScanCursor:
    """Round-robin cursor over all mergeable pages of all processes.

    Mirrors KSM's scan loop: VMAs registered via madvise are visited
    in order, ``N`` pages at a time; when the list is exhausted the
    cursor rebuilds it (picking up new VMAs/processes) and a *full
    scan* completes — the point at which KSM resets its unstable tree.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._items: list[tuple["Process", Vma]] = []
        self._vma_index = 0
        self._page_index = 0
        self._started = False
        self.full_scans = 0

    def _rebuild(self) -> None:
        if self._started and self._items:
            self.full_scans += 1
        self._started = True
        self._items = [
            (process, vma)
            for process in self._kernel.processes
            if process.alive
            for vma in process.address_space.mergeable_vmas()
        ]
        self._vma_index = 0
        self._page_index = 0

    def next_pages(self, count: int) -> list[tuple["Process", Vma, int]]:
        """Return up to ``count`` ``(process, vma, vaddr)`` scan targets."""
        result: list[tuple["Process", Vma, int]] = []
        rebuilds = 0
        while len(result) < count:
            if self._vma_index >= len(self._items):
                self._rebuild()
                rebuilds += 1
                if not self._items or rebuilds > 1:
                    break
            process, vma = self._items[self._vma_index]
            if (
                not process.alive
                or vma not in process.address_space.vmas
            ):
                self._vma_index += 1
                self._page_index = 0
                continue
            vaddr = vma.start + self._page_index * PAGE_SIZE
            if vaddr >= vma.end:
                self._vma_index += 1
                self._page_index = 0
                continue
            result.append((process, vma, vaddr))
            self._page_index += 1
        return result


class FusionEngine(ABC):
    """Base class for all page-fusion systems."""

    name = "fusion"

    def __init__(self) -> None:
        self.kernel: "Kernel | None" = None
        self.stats = FusionStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._register(kernel)

    @abstractmethod
    def _register(self, kernel: "Kernel") -> None:
        """Register daemons and allocate engine state."""

    # ------------------------------------------------------------------
    # Fault hooks (defaults; engines override what they use)
    # ------------------------------------------------------------------
    def handle_reserved_fault(
        self,
        process: "Process",
        vaddr: int,
        walk: "TranslationResult",
        kind: "AccessKind",
    ) -> None:
        raise FusionError(f"{self.name} does not use reserved-bit traps")

    def handle_fused_write(
        self, process: "Process", vaddr: int, walk: "TranslationResult"
    ) -> None:
        raise FusionError(f"{self.name} has no fused pages")

    def on_fused_ref_drop(self, pfn: int) -> None:
        """A mapping of a fused frame went away (munmap/exit)."""

    def on_mergeable_unmapped(self, process: "Process", vma: Vma) -> None:
        """A mergeable VMA is being torn down (munmap/process exit).

        Engines that keep references into candidate pages across scan
        ticks (KSM's unstable tree) must drop the region's entries
        here, before the frames are freed — Linux KSM does the same by
        removing the range's rmap_items from ``ksm_exit``/``unmap``.
        """

    def handle_missing_page(self, process: "Process", vaddr: int) -> bool:
        """Hook on the demand-fault path for engines that evict pages
        (e.g. Memory Combining's swap-in).  Return True if handled."""
        return False

    def release_frame(self, pfn: int) -> bool:
        """Claim the free of ``pfn``; return True if the engine took it."""
        return False

    def unmerge_for_collapse(self, process: "Process", vaddr: int) -> None:
        """Make a (fake-)merged page private so khugepaged may collapse."""
        raise FusionError(f"{self.name} cannot unmerge for collapse")

    def unmerge_range(self, process: "Process", vma: Vma) -> int:
        """Unmerge every fused page of a VMA (``MADV_UNMERGEABLE``).

        Linux's KSM walks the region and breaks all its merges when a
        process opts back out; the default implementation reuses each
        engine's khugepaged-unmerge hook.  Returns the page count.
        """
        unmerged = 0
        page_table = process.address_space.page_table
        for vaddr in vma.pages():
            walk = page_table.walk(vaddr)
            if walk is not None and not walk.huge and walk.pte.fused:
                self.unmerge_for_collapse(process, vaddr)
                unmerged += 1
        return unmerged

    # ------------------------------------------------------------------
    # Sanitizer integration
    # ------------------------------------------------------------------
    def pending_frees(self) -> frozenset[int]:
        """Frames the engine has queued for freeing but not yet freed.

        FrameSan's end-of-run audit exempts these from its leak check:
        a frame sitting in VUsion's deferred-free queue is in flight,
        not leaked — it is unreferenced *by design* until the next
        daemon drain.
        """
        return frozenset()

    def check_accounting(self) -> list[str]:
        """Cross-check this engine's merge-charge ledger via FrameSan.

        Returns problem descriptions (empty when clean or when the
        kernel runs unsanitized).  Engines with bespoke charge models
        may extend this with their own invariants.
        """
        if self.kernel is None or self.kernel.sanitizer is None:
            return []
        return self.kernel.sanitizer.check_fusion_accounting(self)

    # ------------------------------------------------------------------
    # Shard exchange (see repro.mem.shard)
    # ------------------------------------------------------------------
    def shard_exportable_pfns(self) -> list[int]:
        """Frames whose digests this engine may advertise cross-shard.

        The security boundary of the exchange protocol: only content
        the engine has already made *shared and write-protected* on its
        own node may be disclosed to the fabric.  Engines override this
        with their merged-frame sets; the default (and the ``none``
        engine) advertises nothing.
        """
        return []

    def shard_export(self) -> list[tuple[int, int, int]]:
        """``(digest, canonical pfn, holders)`` rows for one exchange
        round, digest-sorted, computed in one batch-kernel sweep."""
        if self.kernel is None:
            return []
        return self.kernel.physmem.digest_table(self.shard_exportable_pfns())

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def incremental_stats(self) -> dict[str, int]:
        """Counters of the engine's incremental scan cache, if it has
        one (kept out of :class:`FusionStats` so enabling/disabling
        the fingerprint cache cannot change the metrics tests see)."""
        return {}

    @abstractmethod
    def saved_frames(self) -> int:
        """Frames currently saved by fusion (sharers minus copies kept)."""

    def sharing_pairs(self) -> tuple[int, int]:
        """Return ``(pages_shared, pages_sharing)`` as in /sys/kernel/mm/ksm."""
        return (0, 0)
