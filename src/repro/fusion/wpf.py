"""Windows Page Fusion (WPF), as reverse engineered in §2.2.

Every 15 minutes WPF hashes all candidate anonymous pages, sorts them
by hash, groups them per owning process (processes ordered by their
memory-management struct pointer, pages by virtual address) and merges:

* pages matching an existing AVL-tree node are remapped to it;
* contents appearing at least twice get a **new** stable frame from a
  ``MiAllocatePagesForMdl``-style linear allocator that claims frames
  from the *end* of physical memory in hash order.

Allocating new frames defeats the classic Flip Feng Shui, but the
linear allocator's near-perfect reuse across passes (freed fusion
frames at the top of memory are re-claimed in the same order next
pass) enables the paper's new reuse-based Flip Feng Shui — Fig. 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import OutOfMemoryError
from repro.fusion.avl import AvlTree
from repro.fusion.base import FusionEngine
from repro.fusion.incremental import IncrementalPassCache
from repro.mem.content import PageContent, content_digest
from repro.mem.physmem import FrameType
from repro.mmu.pte import PteFlags
from repro.params import DEFAULT_WPF, WpfConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.mmu.page_table import TranslationResult


class WpfNode:
    """One fused page held in a WPF AVL tree."""

    __slots__ = ("pfn", "key")

    def __init__(self, pfn: int, key: bytes) -> None:
        self.pfn = pfn
        #: Content snapshot at insertion; used for structural removal
        #: even if the frame is later corrupted (e.g. by Rowhammer).
        self.key = key


class LinearHighAllocator:
    """Claims free frames from the top of physical memory, in order.

    Models ``MiAllocatePagesForMdl``: mostly-contiguous allocations
    starting from the end of the physical address space, with holes
    where frames cannot be reclaimed.  Combined with LIFO frees this
    yields the deterministic cross-pass reuse shown in Fig. 3.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def alloc_batch(self, count: int) -> list[int]:
        """Allocate ``count`` frames, highest free frames first."""
        if count <= 0:
            return []
        kernel = self.kernel
        targets: list[int] = []
        for pfn in kernel.buddy.iter_free_frames_desc():
            targets.append(pfn)
            if len(targets) == count:
                break
        if len(targets) < count:
            raise OutOfMemoryError(
                f"linear allocator found {len(targets)} of {count} frames"
            )
        frames = []
        for pfn in targets:
            kernel.buddy.alloc_specific(pfn)
            kernel.physmem.set_frame_type(pfn, FrameType.ANON)
            frames.append(pfn)
        kernel.clock.advance(kernel.costs.buddy_alloc * max(1, count // 8))
        kernel.stats.frames_allocated += count
        return frames


class WindowsPageFusion(FusionEngine):
    """The WPF engine."""

    name = "wpf"

    def __init__(
        self, config: WpfConfig = DEFAULT_WPF, num_trees: int = 4
    ) -> None:
        super().__init__()
        self.config = config
        self.num_trees = num_trees
        self._trees: list[AvlTree[WpfNode]] = []
        self._nodes_by_pfn: dict[int, WpfNode] = {}
        self._allocator: LinearHighAllocator | None = None
        self._pass_cache: IncrementalPassCache | None = None

    def _register(self, kernel: "Kernel") -> None:
        def charge() -> None:
            kernel.clock.advance(kernel.costs.tree_compare)

        self._trees = [AvlTree(on_compare=charge) for _ in range(self.num_trees)]
        self._allocator = LinearHighAllocator(kernel)
        self._pass_cache = IncrementalPassCache(kernel, self.name)
        kernel.register_daemon("wpf", self.config.pass_interval, self.full_pass)

    def _tree_for(self, content: PageContent) -> AvlTree[WpfNode]:
        return self._trees[content_digest(content) % self.num_trees]

    # ------------------------------------------------------------------
    # The fusion pass
    # ------------------------------------------------------------------
    def full_pass(self) -> None:
        kernel = self.kernel
        self.stats.scans += 1
        self.stats.full_scans += 1
        replay = self._pass_cache.try_replay()
        if replay is not None:
            # Nothing observable changed since the last (no-op) pass:
            # the identical work is replayed as one clock charge.
            charge, pages = replay
            if charge:
                kernel.clock.advance(charge)
            self.stats.pages_scanned += pages
            return
        rec = self._pass_cache.begin_record()
        candidates, contents, digests = self._gather_candidates()
        pages = sum(len(v) for v in candidates.values())
        self.stats.pages_scanned += pages
        self._create_nodes(candidates, contents, digests)
        self._merge_candidates(candidates, contents, digests)
        self._pass_cache.commit(rec, pages)

    def _gather_candidates(
        self,
    ) -> tuple[
        dict[object, list[tuple["Process", int, int]]],
        dict[object, PageContent],
        dict[object, int],
    ]:
        """Hash every candidate page, grouped by content identity.

        WPF computes the hash of every physical page that is a merge
        candidate; sorting-by-hash is applied later when the new stable
        frames are allocated.  The gather runs in two phases: a
        sequential page-table walk collects (and charges) every
        candidate, then one scan-kernel
        :meth:`~repro.mem.scankernel.ScanKernel.group_by_content` call
        buckets the batch by content identity — a vectorized pass over
        the cid column on the batch kernel, the classic ``merge_key``
        loop on the scalar reference; either way the partition (and
        its encounter order) is exactly the group-by-content of the
        original one-page-at-a-time implementation.  The returned
        ``digests`` map serves the per-content hash from the frame
        fingerprint cache, one batch lookup per unique content.
        """
        kernel = self.kernel
        physmem = kernel.physmem
        holders: list[tuple["Process", int, int]] = []
        pfns: list[int] = []
        for process in sorted(kernel.processes, key=lambda p: p.pid):
            if not process.alive:
                continue
            for vma in process.address_space.mergeable_vmas():
                for vaddr in vma.pages():
                    walk = process.address_space.page_table.walk(vaddr)
                    if walk is None or walk.huge or walk.pte.fused:
                        continue
                    pfn = walk.frame_for(vaddr)
                    kernel.clock.advance(kernel.costs.checksum_page)
                    holders.append((process, vaddr, pfn))
                    pfns.append(pfn)
        groups = physmem.scan_kernel.group_by_content(pfns)
        candidates = {
            key: [holders[index] for index in indices]
            for key, indices in groups.items()
        }
        contents = {
            key: physmem.read(pfns[indices[0]])
            for key, indices in groups.items()
        }
        digests = dict(
            zip(
                candidates,
                physmem.digests_many(
                    [pfns[indices[0]] for indices in groups.values()]
                ),
            )
        )
        return candidates, contents, digests

    def _create_nodes(
        self,
        candidates: dict[object, list[tuple["Process", int, int]]],
        contents: dict[object, PageContent],
        digests: dict[object, int],
    ) -> None:
        """Allocate new stable frames for duplicated contents, hash order."""
        kernel = self.kernel
        trees = self._trees
        new_keys = [
            key
            for key, holders in candidates.items()
            if len(holders) >= 2
            and trees[digests[key] % self.num_trees].search(contents[key]) is None
        ]
        new_keys.sort(key=digests.__getitem__)
        try:
            frames = self._allocator.alloc_batch(len(new_keys))
        except OutOfMemoryError:
            return
        for key, pfn in zip(new_keys, frames):
            content = contents[key]
            kernel.physmem.write(pfn, content)
            kernel.clock.advance(kernel.costs.copy_page)
            node = WpfNode(pfn, content)
            kernel.physmem.pin_fused(pfn)
            kernel.physmem.get_ref(pfn)
            trees[digests[key] % self.num_trees].insert(content, node)
            self._nodes_by_pfn[pfn] = node
            self.stats.stable_nodes_created += 1
            self.stats.merge_frame_log.append(pfn)

    def _merge_candidates(
        self,
        candidates: dict[object, list[tuple["Process", int, int]]],
        contents: dict[object, PageContent],
        digests: dict[object, int],
    ) -> None:
        """Remap candidates onto stable frames, per process, by vaddr."""
        kernel = self.kernel
        per_process: dict[int, list[tuple[int, object, int]]] = {}
        for key, holders in candidates.items():
            digest = digests[key]
            for process, vaddr, _pfn in holders:
                per_process.setdefault(process.pid, []).append(
                    (vaddr, key, digest)
                )
        for pid in sorted(per_process):
            process = kernel.find_process(pid)
            if process is None or not process.alive:
                continue
            # Each vaddr appears once, so sorting never compares the
            # key/digest fields and the original (vaddr, content)
            # order is preserved on both store backends.
            for vaddr, key, digest in sorted(per_process[pid]):
                node = self._trees[digest % self.num_trees].search(contents[key])
                if node is None:
                    continue
                walk = process.address_space.page_table.walk(vaddr)
                if walk is None or walk.huge or walk.pte.fused:
                    continue
                if walk.frame_for(vaddr) == node.pfn:
                    continue
                old_pfn, refcount, old_pte = kernel.unmap_page(process, vaddr)
                kernel.release_after_unmap(old_pfn, refcount, old_pte)
                kernel.map_page(
                    process, vaddr, node.pfn, PteFlags.USER | PteFlags.FUSED
                )
                self.stats.merges += 1

    # ------------------------------------------------------------------
    # Unmerge
    # ------------------------------------------------------------------
    def _alloc_unmerge_frame(self) -> int:
        """Allocate a copy-on-write target from the *bottom* of memory.

        Windows services ordinary demand allocations away from the
        end-of-memory region ``MiAllocatePagesForMdl`` harvests, which
        is why freed fusion frames survive untouched until the next
        pass (the reuse behaviour of Fig. 3).

        The interprocedural summary proves the returned pfn is a live
        handle (simflow infers the escape), so callers are held to the
        FLOW003-ip consumption discipline without an @escapes_frame
        annotation.
        """
        kernel = self.kernel
        for pfn in kernel.buddy.iter_free_frames_asc():
            kernel.buddy.alloc_specific(pfn)
            kernel.physmem.set_frame_type(pfn, FrameType.ANON)
            kernel.clock.advance(kernel.costs.buddy_alloc)
            kernel.stats.frames_allocated += 1
            return pfn
        raise OutOfMemoryError("no free frame for WPF unmerge")

    def handle_fused_write(
        self, process: "Process", vaddr: int, walk: "TranslationResult"
    ) -> None:
        kernel = self.kernel
        node_pfn = walk.pte.pfn
        new_pfn = self._alloc_unmerge_frame()
        kernel.physmem.copy(node_pfn, new_pfn)
        kernel.clock.advance(kernel.costs.copy_page)
        kernel.unmap_page(process, vaddr)
        kernel.map_page(
            process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE
        )
        self.stats.cow_unmerges += 1
        self._maybe_release_node(node_pfn)

    def on_fused_ref_drop(self, pfn: int) -> None:
        self._maybe_release_node(pfn)

    def unmerge_for_collapse(self, process: "Process", vaddr: int) -> None:
        walk = process.address_space.page_table.walk(vaddr)
        if walk is not None and walk.pte.fused:
            self.handle_fused_write(process, vaddr, walk)

    def _maybe_release_node(self, pfn: int) -> None:
        node = self._nodes_by_pfn.get(pfn)
        if node is None or self.kernel.physmem.refcount(pfn) != 1:
            return
        self._tree_for(node.key).remove(node.key)
        del self._nodes_by_pfn[pfn]
        self.kernel.physmem.unpin_fused(pfn)
        self.kernel.physmem.put_ref(pfn)
        # The freed stable frame returns to the buddy allocator near the
        # top of memory — where the next pass's linear allocator will
        # find it again.  This is the reuse the new attack rides on.
        self.kernel.free_frame(pfn)
        self.stats.stable_nodes_released += 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def incremental_stats(self) -> dict[str, int]:
        return self._pass_cache.stats_dict() if self._pass_cache is not None else {}

    def shard_exportable_pfns(self) -> list[int]:
        # Combined frames only (the AVL trees' node pages): already
        # shared read-only, so advertising their digests leaks nothing
        # an attacker on another node could not infer from a merge.
        return sorted(self._nodes_by_pfn)

    def sharing_pairs(self) -> tuple[int, int]:
        pages_shared = len(self._nodes_by_pfn)
        pages_sharing = (
            self.kernel.physmem.scan_kernel.refcount_sum(self._nodes_by_pfn)
            - pages_shared
        )
        return pages_shared, pages_sharing

    def saved_frames(self) -> int:
        pages_shared, pages_sharing = self.sharing_pairs()
        return pages_sharing - pages_shared
