"""A 4-level x86-64-style radix page table.

Virtual addresses are 48 bits: four 9-bit indices (PML4, PDPT, PD, PT)
above a 12-bit page offset.  A 2 MiB huge page is a leaf at the PD
level (PS bit set), so translating it walks one level less than a
4 KiB page — the structural difference behind the paper's
translation-change (AnC-style) side channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import MappingError
from repro.mmu.pte import PageTableEntry, PteFlags
from repro.params import HUGE_PAGE_SIZE, PAGE_SIZE, PAGES_PER_HUGE_PAGE

#: Bits of VA covered by the page offset.
PAGE_SHIFT = 12
#: Bits covered by a huge-page offset.
HUGE_SHIFT = 21
#: Index bits per level.
LEVEL_BITS = 9
#: Number of radix levels (PML4, PDPT, PD, PT).
NUM_LEVELS = 4


def _indices(vaddr: int) -> tuple[int, int, int, int]:
    vpn = vaddr >> PAGE_SHIFT
    return (
        (vpn >> (3 * LEVEL_BITS)) & 0x1FF,
        (vpn >> (2 * LEVEL_BITS)) & 0x1FF,
        (vpn >> LEVEL_BITS) & 0x1FF,
        vpn & 0x1FF,
    )


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a page-table walk.

    ``levels_walked`` is the number of table levels the hardware had to
    read (3 for a huge-page leaf, 4 for a 4 KiB page); it feeds the
    timing model on TLB misses.
    """

    pte: PageTableEntry
    huge: bool
    levels_walked: int
    page_base: int

    @property
    def pfn(self) -> int:
        return self.pte.pfn

    def frame_for(self, vaddr: int) -> int:
        """Physical frame backing ``vaddr`` (resolves huge-page offset)."""
        if not self.huge:
            return self.pte.pfn
        return self.pte.pfn + ((vaddr - self.page_base) >> PAGE_SHIFT)


class PageTable:
    """Radix page table for one address space."""

    def __init__(self) -> None:
        self._root: dict[int, dict] = {}
        #: Structure version: bumped by every mapping change (map,
        #: unmap, split, collapse).  Scan caches use it to prove a
        #: translation result is still current without re-walking.
        #: In-place PTE *flag* edits do not bump it.
        self.version = 0

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_page(self, vaddr: int, pfn: int, flags: PteFlags) -> PageTableEntry:
        """Install a 4 KiB leaf for the page containing ``vaddr``."""
        if flags & PteFlags.HUGE:
            raise MappingError("use map_huge for huge pages")
        l4, l3, l2, l1 = _indices(vaddr)
        pdpt = self._root.setdefault(l4, {})
        pd = pdpt.setdefault(l3, {})
        entry = pd.get(l2)
        if isinstance(entry, PageTableEntry):
            raise MappingError(f"huge page already maps {vaddr:#x}")
        pt = pd.setdefault(l2, {})
        if l1 in pt:
            raise MappingError(f"page already mapped at {vaddr:#x}")
        pte = PageTableEntry(pfn, flags | PteFlags.PRESENT)
        pt[l1] = pte
        self.version += 1
        return pte

    def map_huge(self, vaddr: int, pfn: int, flags: PteFlags) -> PageTableEntry:
        """Install a 2 MiB leaf; ``vaddr`` and ``pfn`` must be aligned."""
        if vaddr % HUGE_PAGE_SIZE != 0:
            raise MappingError(f"huge mapping at unaligned address {vaddr:#x}")
        if pfn % PAGES_PER_HUGE_PAGE != 0:
            raise MappingError(f"huge mapping of unaligned pfn {pfn}")
        l4, l3, l2, _ = _indices(vaddr)
        pdpt = self._root.setdefault(l4, {})
        pd = pdpt.setdefault(l3, {})
        if l2 in pd:
            raise MappingError(f"address {vaddr:#x} already mapped")
        pte = PageTableEntry(pfn, flags | PteFlags.PRESENT | PteFlags.HUGE)
        pd[l2] = pte
        self.version += 1
        return pte

    def unmap(self, vaddr: int) -> PageTableEntry:
        """Remove and return the leaf mapping ``vaddr`` (4 KiB or huge)."""
        l4, l3, l2, l1 = _indices(vaddr)
        pd = self._root.get(l4, {}).get(l3)
        if pd is None:
            raise MappingError(f"no mapping at {vaddr:#x}")
        entry = pd.get(l2)
        if isinstance(entry, PageTableEntry):
            del pd[l2]
            self.version += 1
            return entry
        if isinstance(entry, dict) and l1 in entry:
            pte = entry.pop(l1)
            if not entry:
                del pd[l2]
            self.version += 1
            return pte
        raise MappingError(f"no mapping at {vaddr:#x}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def walk(self, vaddr: int) -> TranslationResult | None:
        """Translate ``vaddr``; return None if nothing maps it."""
        l4, l3, l2, l1 = _indices(vaddr)
        pdpt = self._root.get(l4)
        if pdpt is None:
            return None
        pd = pdpt.get(l3)
        if pd is None:
            return None
        entry = pd.get(l2)
        if entry is None:
            return None
        if isinstance(entry, PageTableEntry):
            base = vaddr & ~(HUGE_PAGE_SIZE - 1)
            return TranslationResult(entry, huge=True, levels_walked=3, page_base=base)
        pte = entry.get(l1)
        if pte is None:
            return None
        base = vaddr & ~(PAGE_SIZE - 1)
        return TranslationResult(pte, huge=False, levels_walked=4, page_base=base)

    # ------------------------------------------------------------------
    # Huge-page restructuring
    # ------------------------------------------------------------------
    def split_huge(
        self, vaddr: int, pte_factory: Callable[[int, PageTableEntry], PageTableEntry]
    ) -> list[PageTableEntry]:
        """Replace the huge leaf covering ``vaddr`` with 512 4 KiB PTEs.

        ``pte_factory(index, huge_pte)`` builds the PTE for subpage
        ``index``; the kernel uses it to preserve flags and update rmap
        and refcounts.  Returns the new PTEs in subpage order.
        """
        base = vaddr & ~(HUGE_PAGE_SIZE - 1)
        l4, l3, l2, _ = _indices(base)
        pd = self._root.get(l4, {}).get(l3)
        entry = None if pd is None else pd.get(l2)
        if not isinstance(entry, PageTableEntry):
            raise MappingError(f"no huge page at {vaddr:#x}")
        new_ptes = [pte_factory(i, entry) for i in range(PAGES_PER_HUGE_PAGE)]
        pd[l2] = {i: pte for i, pte in enumerate(new_ptes)}
        self.version += 1
        return new_ptes

    def collapse_to_huge(self, vaddr: int, pfn: int, flags: PteFlags) -> PageTableEntry:
        """Replace a fully-populated PT with one huge leaf (khugepaged)."""
        base = vaddr & ~(HUGE_PAGE_SIZE - 1)
        l4, l3, l2, _ = _indices(base)
        pd = self._root.get(l4, {}).get(l3)
        entry = None if pd is None else pd.get(l2)
        if not isinstance(entry, dict):
            raise MappingError(f"no page table to collapse at {vaddr:#x}")
        if len(entry) != PAGES_PER_HUGE_PAGE:
            raise MappingError(
                f"page table at {vaddr:#x} has {len(entry)} of "
                f"{PAGES_PER_HUGE_PAGE} pages mapped"
            )
        pte = PageTableEntry(pfn, flags | PteFlags.PRESENT | PteFlags.HUGE)
        pd[l2] = pte
        self.version += 1
        return pte

    def pt_entries(self, vaddr: int) -> dict[int, PageTableEntry] | None:
        """Return the 4 KiB PTE dict of the PT covering ``vaddr``, if any."""
        l4, l3, l2, _ = _indices(vaddr)
        pd = self._root.get(l4, {}).get(l3)
        entry = None if pd is None else pd.get(l2)
        return entry if isinstance(entry, dict) else None

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_leaves(self) -> Iterator[tuple[int, PageTableEntry, bool]]:
        """Yield ``(vaddr, pte, is_huge)`` for every mapped leaf."""
        for l4, pdpt in sorted(self._root.items()):
            for l3, pd in sorted(pdpt.items()):
                for l2, entry in sorted(pd.items()):
                    base = ((l4 << 27) | (l3 << 18) | (l2 << 9)) << PAGE_SHIFT
                    if isinstance(entry, PageTableEntry):
                        yield base, entry, True
                    else:
                        for l1, pte in sorted(entry.items()):
                            yield base | (l1 << PAGE_SHIFT), pte, False
