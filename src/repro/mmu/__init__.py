"""Virtual-memory substrate: PTEs, page tables, TLBs and address spaces."""

from repro.mmu.address_space import AddressSpace, Vma
from repro.mmu.page_table import PageTable, TranslationResult
from repro.mmu.pte import PteFlags, PageTableEntry
from repro.mmu.tlb import Tlb

__all__ = [
    "AddressSpace",
    "PageTable",
    "PageTableEntry",
    "PteFlags",
    "Tlb",
    "TranslationResult",
    "Vma",
]
