"""Page-table entry representation.

Models the x86-64 PTE bits that matter to the paper:

* ``PRESENT``/``WRITABLE``/``ACCESSED``/``DIRTY`` — the ordinary
  protection and tracking bits.  The accessed bit drives idle page
  tracking (working-set estimation).
* ``HUGE`` — the PS bit marking a 2 MiB leaf at the PD level.
* ``RESERVED`` — VUsion sets a reserved bit so that *any* access
  (read, write or instruction/prefetch fetch) faults regardless of the
  permission bits, exactly as on real Intel/AMD MMUs.
* ``CACHE_DISABLED`` — VUsion sets the CD bit on (fake-)merged pages to
  defeat prefetch-based side channels: an uncached page can never be
  pulled into the LLC.

``COW`` and ``FUSED`` are software bits (real kernels keep equivalent
state in ``struct page`` / rmap); keeping them in the PTE simplifies the
simulator without changing observable behaviour.
"""

from __future__ import annotations

import enum


class PteFlags(enum.IntFlag):
    """Bit flags of a simulated page-table entry."""

    NONE = 0
    PRESENT = 1 << 0
    WRITABLE = 1 << 1
    USER = 1 << 2
    ACCESSED = 1 << 3
    DIRTY = 1 << 4
    HUGE = 1 << 5
    CACHE_DISABLED = 1 << 6
    RESERVED = 1 << 7
    # Software bits.
    COW = 1 << 8
    FUSED = 1 << 9


class PageTableEntry:
    """A leaf page-table entry mapping one 4 KiB or 2 MiB page."""

    __slots__ = ("pfn", "flags")

    def __init__(self, pfn: int, flags: PteFlags) -> None:
        self.pfn = pfn
        self.flags = flags

    # -- flag helpers ---------------------------------------------------
    @property
    def present(self) -> bool:
        return bool(self.flags & PteFlags.PRESENT)

    @property
    def writable(self) -> bool:
        return bool(self.flags & PteFlags.WRITABLE)

    @property
    def accessed(self) -> bool:
        return bool(self.flags & PteFlags.ACCESSED)

    @property
    def dirty(self) -> bool:
        return bool(self.flags & PteFlags.DIRTY)

    @property
    def huge(self) -> bool:
        return bool(self.flags & PteFlags.HUGE)

    @property
    def reserved(self) -> bool:
        return bool(self.flags & PteFlags.RESERVED)

    @property
    def cache_disabled(self) -> bool:
        return bool(self.flags & PteFlags.CACHE_DISABLED)

    @property
    def cow(self) -> bool:
        return bool(self.flags & PteFlags.COW)

    @property
    def fused(self) -> bool:
        return bool(self.flags & PteFlags.FUSED)

    def set(self, flags: PteFlags) -> None:
        self.flags |= flags

    def clear(self, flags: PteFlags) -> None:
        self.flags &= ~flags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageTableEntry(pfn={self.pfn}, flags={self.flags!r})"
