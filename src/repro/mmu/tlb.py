"""A small set-associative TLB.

One huge-page entry covers 2 MiB, so collapsing 512 base pages into a
THP both removes pressure (fewer entries needed) and shortens the walk
on a miss (3 levels instead of 4).  That is the performance effect the
paper's "VUsion THP" configuration conserves and the translation attack
measures.
"""

from __future__ import annotations

from repro.params import TlbGeometry


class Tlb:
    """LRU set-associative TLB holding 4 KiB and 2 MiB translations.

    Entries are keyed by ``(vpn, huge)``; huge entries are indexed by
    the 2 MiB virtual page number.  The TLB caches only the fact that a
    translation exists — the kernel invalidates on every PTE change, so
    permissions never go stale.
    """

    def __init__(self, geometry: TlbGeometry) -> None:
        self._geometry = geometry
        self._sets: list[list[tuple[int, bool]]] = [
            [] for _ in range(geometry.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_index(self, vpn: int) -> int:
        return vpn % len(self._sets)

    def lookup(self, vpn: int, huge: bool) -> bool:
        """Probe for a translation; updates LRU order and hit counters."""
        entry = (vpn, huge)
        tlb_set = self._sets[self._set_index(vpn)]
        if entry in tlb_set:
            tlb_set.remove(entry)
            tlb_set.append(entry)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, vpn: int, huge: bool) -> None:
        """Fill a translation, evicting the set's LRU entry if full."""
        entry = (vpn, huge)
        tlb_set = self._sets[self._set_index(vpn)]
        if entry in tlb_set:
            tlb_set.remove(entry)
        elif len(tlb_set) >= self._geometry.ways:
            tlb_set.pop(0)
        tlb_set.append(entry)

    def invalidate_page(self, vpn: int) -> None:
        """Drop the 4 KiB entry for ``vpn`` and any huge entry covering it."""
        tlb_set = self._sets[self._set_index(vpn)]
        if (vpn, False) in tlb_set:
            tlb_set.remove((vpn, False))
        huge_vpn = vpn >> 9
        huge_set = self._sets[self._set_index(huge_vpn)]
        if (huge_vpn, True) in huge_set:
            huge_set.remove((huge_vpn, True))

    def flush(self) -> None:
        """Flush the whole TLB."""
        for tlb_set in self._sets:
            tlb_set.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
