"""Per-process virtual address space: VMAs over a page table.

Mirrors the Linux structures the paper works with: contiguous virtual
memory areas with shared properties, an ``madvise(MADV_MERGEABLE)``
flag that opts a VMA into page fusion, and a bump allocator for new
mappings (2 MiB aligned so transparent huge pages are possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MappingError, SegmentationFault
from repro.mmu.page_table import PageTable
from repro.params import HUGE_PAGE_SIZE, PAGE_SIZE

#: Base of the mmap area in each address space.
MMAP_BASE = 0x1000_0000


@dataclass
class Vma:
    """A contiguous virtual memory area.

    ``file_key`` marks a file-backed region (its pages come from the
    shared page cache); anonymous VMAs have ``file_key=None``.
    ``mergeable`` is set by ``madvise(MADV_MERGEABLE)`` and makes the
    VMA a candidate for KSM/VUsion scanning.
    """

    start: int
    end: int
    name: str = "anon"
    mergeable: bool = False
    file_key: str | None = None
    thp_allowed: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def num_pages(self) -> int:
        return (self.end - self.start) // PAGE_SIZE

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    def pages(self) -> Iterator[int]:
        """Yield the base virtual address of every page in the VMA."""
        return iter(range(self.start, self.end, PAGE_SIZE))


class AddressSpace:
    """Virtual address space of one process or VM."""

    def __init__(self) -> None:
        self.page_table = PageTable()
        self._vmas: list[Vma] = []
        self._mmap_cursor = MMAP_BASE
        #: Layout epoch: bumped whenever the set of scannable pages can
        #: change (VMA added/removed, mergeable toggled).  Scan caches
        #: combine it with :attr:`PageTable.version` to detect topology
        #: changes without re-walking every VMA.
        self.epoch = 0

    # ------------------------------------------------------------------
    # VMA management
    # ------------------------------------------------------------------
    def mmap(
        self,
        num_pages: int,
        name: str = "anon",
        mergeable: bool = False,
        file_key: str | None = None,
        thp_allowed: bool = True,
    ) -> Vma:
        """Reserve ``num_pages`` of virtual address space.

        The region is 2 MiB aligned and pages are *not* populated; the
        first touch demand-faults them in, exactly as under Linux.
        """
        if num_pages <= 0:
            raise MappingError("mmap of zero pages")
        start = self._mmap_cursor
        end = start + num_pages * PAGE_SIZE
        # Keep regions 2 MiB aligned and separated so THP ranges never
        # straddle two VMAs.
        self._mmap_cursor = -(-end // HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE + HUGE_PAGE_SIZE
        vma = Vma(
            start=start,
            end=end,
            name=name,
            mergeable=mergeable,
            file_key=file_key,
            thp_allowed=thp_allowed,
        )
        self._vmas.append(vma)
        self.epoch += 1
        return vma

    def remove_vma(self, vma: Vma) -> None:
        """Forget a VMA (the kernel unmaps its pages first)."""
        self._vmas.remove(vma)
        self.epoch += 1

    def vma_at(self, vaddr: int) -> Vma:
        """Return the VMA containing ``vaddr`` or raise a segfault."""
        for vma in self._vmas:
            if vma.contains(vaddr):
                return vma
        raise SegmentationFault(vaddr)

    def find_vma(self, vaddr: int) -> Vma | None:
        for vma in self._vmas:
            if vma.contains(vaddr):
                return vma
        return None

    def madvise_mergeable(self, vma: Vma, mergeable: bool = True) -> None:
        """Toggle ``MADV_MERGEABLE`` on a VMA (the KSM opt-in)."""
        if vma.mergeable != mergeable:
            self.epoch += 1
        vma.mergeable = mergeable

    @property
    def vmas(self) -> tuple[Vma, ...]:
        return tuple(self._vmas)

    def mergeable_vmas(self) -> list[Vma]:
        return [vma for vma in self._vmas if vma.mergeable]

    def iter_pages(self) -> Iterator[tuple[int, Vma]]:
        """Yield ``(page_vaddr, vma)`` for every page of every VMA."""
        for vma in self._vmas:
            for vaddr in vma.pages():
                yield vaddr, vma
