"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``       — show every reproducible experiment and attack.
* ``experiment`` — regenerate one table/figure (``--full`` for the
  larger paper-scale parameters, ``--seed`` for reproducibility).
* ``attack``     — run one attack against one fusion engine.
* ``matrix``     — run the full Table 1 attack matrix.
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks import ALL_ATTACKS, AttackEnvironment
from repro.attacks.base import ENGINE_FACTORIES
from repro.harness.experiments import EXPERIMENT_REGISTRY, FULL, QUICK

ATTACKS_BY_NAME = {attack.name: attack for attack in ALL_ATTACKS}

#: Per-attack environment defaults (mirrors the Table 1 plan).
ATTACK_ENV_DEFAULTS = {
    "cow-timing": {},
    "page-color": {},
    "page-sharing": {},
    "prefetch-sharing": {"frames": 32768},
    "translation": {"thp_fault": True, "frames": 32768},
    "flip-feng-shui": {"thp_fault": True, "frames": 32768, "row_vulnerability": 0.3},
    "reuse-ffs": {"row_vulnerability": 0.3},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Secure Page Fusion with VUsion' (SOSP '17)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and attacks")

    exp = sub.add_parser("experiment", help="regenerate a table or figure")
    exp.add_argument("name", choices=sorted(EXPERIMENT_REGISTRY))
    exp.add_argument("--full", action="store_true",
                     help="full scale (slower, closer to the paper)")
    exp.add_argument("--seed", type=int, default=1017)

    atk = sub.add_parser("attack", help="run one attack against one engine")
    atk.add_argument("name", choices=sorted(ATTACKS_BY_NAME))
    atk.add_argument("--target", default="ksm",
                     choices=sorted(ENGINE_FACTORIES))
    atk.add_argument("--seed", type=int, default=1017)

    matrix = sub.add_parser("matrix", help="run the full Table 1 attack matrix")
    matrix.add_argument("--seed", type=int, default=1017)

    report = sub.add_parser(
        "report", help="run every experiment and write a combined report"
    )
    report.add_argument("--full", action="store_true")
    report.add_argument("--seed", type=int, default=1017)
    report.add_argument("--output", default="results/full_report.txt")
    return parser


def cmd_list() -> int:
    print("experiments (repro experiment <name>):")
    for name in sorted(EXPERIMENT_REGISTRY):
        print(f"  {name}")
    print("\nattacks (repro attack <name> --target <engine>):")
    for name in sorted(ATTACKS_BY_NAME):
        print(f"  {name}")
    print("\nengines:")
    for name in sorted(ENGINE_FACTORIES):
        print(f"  {name}")
    return 0


def cmd_experiment(name: str, full: bool, seed: int) -> int:
    scale = FULL if full else QUICK
    result = EXPERIMENT_REGISTRY[name](scale, seed)
    print(result.render())
    return 0 if result.all_checks_pass else 1


def cmd_attack(name: str, target: str, seed: int) -> int:
    env_kwargs = dict(ATTACK_ENV_DEFAULTS.get(name, {}))
    env = AttackEnvironment(target, seed=seed, **env_kwargs)
    result = ATTACKS_BY_NAME[name](env).run()
    print(result)
    for key, value in result.evidence.items():
        if isinstance(value, list) and len(value) > 8:
            value = f"[{len(value)} samples]"
        print(f"  {key}: {value}")
    return 0


def cmd_matrix(seed: int) -> int:
    result = EXPERIMENT_REGISTRY["table1"](QUICK, seed)
    print(result.render())
    return 0 if result.all_checks_pass else 1


def cmd_report(full: bool, seed: int, output: str) -> int:
    """Run the whole evaluation and write one combined report."""
    import pathlib
    import time

    scale = FULL if full else QUICK
    sections = []
    all_pass = True
    for name in EXPERIMENT_REGISTRY:
        started = time.perf_counter()
        result = EXPERIMENT_REGISTRY[name](scale, seed)
        elapsed = time.perf_counter() - started
        status = "OK" if result.all_checks_pass else "CHECKS FAILED"
        all_pass = all_pass and result.all_checks_pass
        print(f"{name:22s} {status:14s} [{elapsed:.1f}s]", flush=True)
        sections.append(f"### {name} ({status})\n\n{result.render()}")
    path = pathlib.Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n\n\n".join(sections) + "\n")
    print(f"\nreport written to {path}")
    return 0 if all_pass else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "experiment":
        return cmd_experiment(args.name, args.full, args.seed)
    if args.command == "attack":
        return cmd_attack(args.name, args.target, args.seed)
    if args.command == "matrix":
        return cmd_matrix(args.seed)
    if args.command == "report":
        return cmd_report(args.full, args.seed, args.output)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
