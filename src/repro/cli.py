"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``       — show every reproducible experiment, attack, engine.
* ``run``        — the unified entry point: fan any selection of
  experiments and attack-matrix cells out across a worker pool
  (``--jobs N``), with per-task seeds, retries and JSON artifacts.
* ``experiment`` — thin alias: one table/figure through the runner.
* ``attack``     — thin alias: one attack vs one engine.
* ``fleet``      — spec-driven consolidation scenarios: run a preset
  (or a ScenarioSpec JSON file) through the streaming fleet driver,
  or export a preset's spec as JSON (``--export-spec``).
* ``matrix``     — thin alias: the Table 1 attack matrix.
* ``report``     — run every experiment and write a combined report.
* ``lint``       — simlint, the simulation-invariant linter
  (determinism, write-barrier, layering rules; see docs/CHECKING.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks import ALL_ATTACKS
from repro.fusion.registry import ENGINE_SPECS
from repro.harness.experiments import EXPERIMENTS, ExperimentResult

ATTACKS_BY_NAME = {attack.name: attack for attack in ALL_ATTACKS}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Secure Page Fusion with VUsion' (SOSP '17)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, attacks and engines")

    run = sub.add_parser(
        "run",
        help="run experiments/attack cells through the parallel runner",
        description="Selectors: experiment names, tag:<tag>, "
                    "attack:<name>[@<engine>], fleet:<preset>[@<system>], "
                    "'matrix', 'all'.",
    )
    run.add_argument("selectors", nargs="*",
                     help="what to run (see --help for the grammar)")
    run.add_argument("--all", action="store_true", dest="select_all",
                     help="every experiment in the registry")
    run.add_argument("--jobs", "-j", type=int, default=None,
                     help="worker processes (default: REPRO_JOBS or 1; "
                          "0 = all cpus)")
    run.add_argument("--shards", type=int, default=None,
                     help="worker processes per sharded fleet scenario "
                          "(default: REPRO_SHARDS or 1; 0 = all cpus; "
                          "results are byte-identical for any value)")
    run.add_argument("--out", default="results/run",
                     help="artifact directory (default results/run)")
    run.add_argument("--no-artifacts", action="store_true",
                     help="skip writing JSON artifacts")
    run.add_argument("--seed", type=int, default=1017,
                     help="root seed; per-task seeds derive from it")
    run.add_argument("--full", action="store_true",
                     help="full scale (slower, closer to the paper)")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-task timeout in seconds")
    run.add_argument("--retries", type=int, default=2,
                     help="retry budget per task (default 2)")
    run.add_argument("--serial", action="store_true",
                     help="force in-process serial execution")

    exp = sub.add_parser("experiment", help="regenerate a table or figure")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--full", action="store_true",
                     help="full scale (slower, closer to the paper)")
    exp.add_argument("--seed", type=int, default=1017)

    atk = sub.add_parser("attack", help="run one attack against one engine")
    atk.add_argument("name", choices=sorted(ATTACKS_BY_NAME))
    atk.add_argument("--target", default=None,
                     choices=sorted(ENGINE_SPECS),
                     help="engine to attack (default: the attack's "
                          "published insecure target)")
    atk.add_argument("--seed", type=int, default=1017)

    fleet = sub.add_parser(
        "fleet",
        help="run a spec-driven consolidation scenario",
        description="Run a fleet preset (or a ScenarioSpec JSON file) "
                    "through the streaming consolidation driver.",
    )
    from repro.harness.fleet import FLEET_PRESETS
    from repro.harness.scenario import PRESETS as SYSTEM_PRESETS

    fleet.add_argument("preset", nargs="?", choices=sorted(FLEET_PRESETS),
                       help="fleet preset (omit when using --spec)")
    fleet.add_argument("--system", default="ksm",
                       choices=sorted(SYSTEM_PRESETS),
                       help="system column to run (default ksm)")
    fleet.add_argument("--full", action="store_true",
                       help="full scale (more VMs, slower)")
    fleet.add_argument("--seed", type=int, default=1017)
    fleet.add_argument("--spec", default=None, metavar="FILE",
                       help="run a ScenarioSpec JSON file instead of a preset")
    fleet.add_argument("--export-spec", default=None, metavar="FILE",
                       help="write the preset's ScenarioSpec JSON to FILE "
                            "('-' for stdout) and exit without running")
    fleet.add_argument("--shards", type=int, default=None,
                       help="worker processes executing the scenario's "
                            "shard topology (default: REPRO_SHARDS or 1; "
                            "0 = all cpus; results are byte-identical "
                            "for any value)")
    fleet.add_argument("--verbose", "-v", action="store_true",
                       help="stream per-shard round/exchange progress "
                            "(shard balance)")

    matrix = sub.add_parser("matrix", help="run the full Table 1 attack matrix")
    matrix.add_argument("--seed", type=int, default=1017)

    report = sub.add_parser(
        "report", help="run every experiment and write a combined report"
    )
    report.add_argument("--full", action="store_true")
    report.add_argument("--seed", type=int, default=1017)
    report.add_argument("--jobs", "-j", type=int, default=1)
    report.add_argument("--output", default="results/full_report.txt")

    from repro.check.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def cmd_list() -> int:
    print("experiments (repro run <name> / repro experiment <name>):")
    for name in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[name]
        tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        print(f"  {name:22s} {spec.paper_ref}{tags}")
    print("\nattacks (repro run attack:<name>[@<engine>]):")
    for name in sorted(ATTACKS_BY_NAME):
        attack = ATTACKS_BY_NAME[name]
        print(f"  {name:22s} insecure target: {attack.default_target}")
    print("\nfleet presets (repro fleet <preset> / repro run "
          "fleet:<preset>[@<system>]):")
    from repro.harness.fleet import FLEET_PRESETS

    for name in sorted(FLEET_PRESETS):
        print(f"  {name:22s} {FLEET_PRESETS[name].description}")
    print("\nengines:")
    for name in sorted(ENGINE_SPECS):
        print(f"  {name:22s} {ENGINE_SPECS[name].description}")
    return 0


def _result_from_payload(payload: dict) -> ExperimentResult:
    """Rebuild a renderable ExperimentResult from a task payload."""
    return ExperimentResult(
        experiment=payload["experiment"],
        headers=payload["headers"],
        rows=payload["rows"],
        series={label: [tuple(point) for point in series]
                for label, series in payload["series"].items()},
        checks=payload["checks"],
        notes=payload["notes"],
    )


def _print_attack_payload(payload: dict) -> None:
    verdict = "SUCCEEDED" if payload["success"] else "defeated"
    print(f"{payload['attack']} vs {payload['target']}: {verdict}")
    for key, value in payload["evidence"].items():
        if isinstance(value, list) and len(value) > 8:
            value = f"[{len(value)} samples]"
        print(f"  {key}: {value}")


def cmd_run(args) -> int:
    from repro.analysis.report import format_run_summary
    from repro.runner import (
        ProgressPrinter,
        RunnerConfig,
        expand_selectors,
        resolve_jobs,
        run_tasks,
        write_artifacts,
    )

    try:
        tasks = expand_selectors(
            args.selectors,
            select_all=args.select_all,
            scale="full" if args.full else "quick",
        )
        jobs = resolve_jobs(args.jobs, default=1)
        shard_workers = resolve_jobs(args.shards, env_var="REPRO_SHARDS",
                                     default=1)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = RunnerConfig(
        jobs=jobs,
        timeout_s=args.timeout,
        max_retries=args.retries,
        force_serial=args.serial,
        shard_workers=shard_workers,
    )
    results = run_tasks(tasks, root_seed=args.seed, config=config,
                        on_event=ProgressPrinter())
    print()
    print(format_run_summary(results))
    if not args.no_artifacts:
        manifest = write_artifacts(
            args.out, results, root_seed=args.seed, jobs=jobs,
            extra_meta={"selectors": list(args.selectors)
                        + (["all"] if args.select_all else [])},
        )
        print(f"\nartifacts written to {manifest.parent}")
    ok = all(r.ok and r.checks_pass is not False for r in results)
    return 0 if ok else 1


def _run_single(task, seed: int):
    """Alias path: one task, serial, explicit seed (no derivation)."""
    from dataclasses import replace as dc_replace

    from repro.runner import RunnerConfig, run_tasks

    task = dc_replace(task, seed=seed)
    return run_tasks([task], root_seed=seed,
                     config=RunnerConfig(jobs=1, force_serial=True))[0]


def cmd_experiment(name: str, full: bool, seed: int) -> int:
    from repro.runner import TaskSpec

    task = TaskSpec.experiment(name, scale="full" if full else "quick")
    outcome = _run_single(task, seed)
    if not outcome.ok:
        print(f"error: {outcome.error}", file=sys.stderr)
        return 1
    result = _result_from_payload(outcome.payload)
    print(result.render())
    return 0 if result.all_checks_pass else 1


def cmd_attack(name: str, target: str | None, seed: int) -> int:
    from repro.runner import TaskSpec

    outcome = _run_single(TaskSpec.attack(name, target=target), seed)
    if not outcome.ok:
        print(f"error: {outcome.error}", file=sys.stderr)
        return 1
    _print_attack_payload(outcome.payload)
    return 0


def _print_fleet_totals(name: str, system: str, totals: dict) -> None:
    print(f"fleet {name} vs {system}:")
    for key in (
        "booted_vms", "retired_vms", "booted_pages", "peak_resident_vms",
        "peak_frames_in_use", "peak_saved_frames", "final_saved_frames",
        "probes", "probe_hits", "scan_ns", "clock_ns",
    ):
        print(f"  {key:20s} {totals.get(key)}")


def cmd_fleet(args) -> int:
    import pathlib

    from repro.errors import ReproError
    from repro.harness.fleet import FLEET_PRESETS
    from repro.harness.spec import ScenarioSpec
    from repro.runner import (
        ProgressPrinter,
        ShardPoolConfig,
        resolve_jobs,
        run_sharded,
    )

    try:
        shard_workers = resolve_jobs(args.shards, env_var="REPRO_SHARDS",
                                     default=1)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.spec is not None:
        try:
            spec = ScenarioSpec.from_json(
                pathlib.Path(args.spec).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        if args.preset is None:
            print("error: give a fleet preset or --spec FILE",
                  file=sys.stderr)
            return 2
        scale = "full" if args.full else "quick"
        spec = FLEET_PRESETS[args.preset].spec(
            system=args.system, scale=scale, seed=args.seed)
        if args.export_spec is not None:
            if args.export_spec == "-":
                sys.stdout.write(spec.to_json())
            else:
                path = pathlib.Path(args.export_spec)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(spec.to_json())
                print(f"spec written to {path}")
            return 0
    try:
        result = run_sharded(
            spec,
            config=ShardPoolConfig(workers=shard_workers),
            on_event=ProgressPrinter(verbose=args.verbose),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_fleet_totals(spec.name, spec.system.label, result.totals)
    return 0


def cmd_matrix(seed: int) -> int:
    return cmd_experiment("table1", full=False, seed=seed)


def cmd_report(full: bool, seed: int, jobs: int, output: str) -> int:
    """Run the whole evaluation and write one combined report."""
    import pathlib

    from repro.runner import RunnerConfig, TaskSpec, run_tasks

    scale = "full" if full else "quick"
    tasks = [
        TaskSpec.experiment(name, scale=scale, seed=seed)
        for name in EXPERIMENTS
    ]
    config = RunnerConfig(jobs=jobs, force_serial=(jobs <= 1))
    results = run_tasks(tasks, root_seed=seed, config=config)
    sections = []
    all_pass = True
    for outcome in results:
        name = outcome.spec.name
        if outcome.ok:
            result = _result_from_payload(outcome.payload)
            status = "OK" if result.all_checks_pass else "CHECKS FAILED"
            all_pass = all_pass and result.all_checks_pass
            body = result.render()
        else:
            status = outcome.status.upper()
            all_pass = False
            body = outcome.error or outcome.status
        print(f"{name:22s} {status:14s} [{outcome.duration_s:.1f}s]",
              flush=True)
        sections.append(f"### {name} ({status})\n\n{body}")
    path = pathlib.Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n\n\n".join(sections) + "\n")
    print(f"\nreport written to {path}")
    return 0 if all_pass else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "experiment":
        return cmd_experiment(args.name, args.full, args.seed)
    if args.command == "attack":
        return cmd_attack(args.name, args.target, args.seed)
    if args.command == "fleet":
        return cmd_fleet(args)
    if args.command == "matrix":
        return cmd_matrix(args.seed)
    if args.command == "report":
        return cmd_report(args.full, args.seed, args.jobs, args.output)
    if args.command == "lint":
        from repro.check.cli import cmd_lint

        return cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
