"""Working-set estimation for VUsion (§7.2).

Built on the kernel's idle page tracking: the estimator clears the PTE
accessed bit on every visit and only reports a page *idle* when

* the accessed bit was still clear (untouched since the last visit),
  and
* the last visit was at least one scan period ago — so "idle" always
  means "idle for a controlled period", as in the paper, even when the
  scanner wraps around a short candidate list within one tick.

Huge pages have a single accessed bit for all 512 subpages, so they
are tracked under the 2 MiB base address; a THP therefore counts as
active if *any* subpage access set the bit (and VUsion will not split
it — §8.1's "only idle THPs are broken up").

With estimation disabled every visited page is treated as idle — the
"naive VUsion" configuration the paper uses to motivate the
optimisation.
"""

from __future__ import annotations

from repro.kernel.idle import IdlePageTracker
from repro.mmu.pte import PageTableEntry

#: A visit key: (pid, page base address).
VisitKey = tuple[int, int]


class WorkingSetEstimator:
    """Idle-tracking front end used by the VUsion scan loop."""

    def __init__(
        self,
        tracker: IdlePageTracker,
        enabled: bool = True,
        min_idle_ns: int = 0,
    ) -> None:
        self.tracker = tracker
        self.enabled = enabled
        self.min_idle_ns = min_idle_ns
        self.active_hits = 0
        self.idle_hits = 0
        #: Last time each page was *seen active* (accessed bit set at a
        #: visit); first sightings are baselined here too.
        self._last_active: dict[VisitKey, int] = {}

    def is_candidate(self, key: VisitKey, pte: PageTableEntry, now: int) -> bool:
        """Visit one page; True if it has been idle for ``min_idle_ns``.

        The accessed bit is harvested (cleared) on every visit; a page
        qualifies once it has gone a full ``min_idle_ns`` without the
        bit reappearing.  Unknown pages are baselined as active so a
        freshly faulted page always waits out one idle period first.
        """
        if not self.enabled:
            return True
        active = self.tracker.check_and_clear(pte)
        if active or key not in self._last_active:
            self._last_active[key] = now
            self.active_hits += 1
            return False
        if now - self._last_active[key] < self.min_idle_ns:
            return False
        self.idle_hits += 1
        return True

    def recently_active(self, key: VisitKey, now: int, horizon: int) -> bool:
        """Was the page seen active within the last ``horizon`` ns?

        The estimator consumes (clears) accessed bits on every scan
        visit, so other consumers — the secure khugepaged policy —
        read activity through this method instead of the raw bit.
        """
        last = self._last_active.get(key)
        return last is not None and now - last <= horizon

    def forget(self, key: VisitKey) -> None:
        """Drop visit state (page unmapped or VMA gone)."""
        self._last_active.pop(key, None)
