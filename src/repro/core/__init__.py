"""VUsion: the paper's secure page-fusion system."""

from repro.core.deferred_free import DeferredFreeQueue
from repro.core.random_pool import RandomFramePool
from repro.core.vusion import Vusion, VusionNode
from repro.core.working_set import WorkingSetEstimator

__all__ = [
    "DeferredFreeQueue",
    "RandomFramePool",
    "Vusion",
    "VusionNode",
    "WorkingSetEstimator",
]
