"""VUsion's deferred free queue (design decision (ii), §7.1).

Freeing a frame inside the copy-on-access fault handler would make
fake-merged pages (whose reference count drops to zero) measurably
slower to unmerge than really-merged pages (whose shared frame
survives).  VUsion therefore *queues* frees and lets a background
daemon drain them; the fault path always enqueues exactly one request
— a real free, a dummy, or a node-reclaim check — so both paths
execute the same instructions.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.random_pool import RandomFramePool
    from repro.kernel.kernel import Kernel


class DeferredFreeQueue:
    """Background free queue draining into the random pool."""

    def __init__(
        self,
        kernel: "Kernel",
        pool: "RandomFramePool",
        period: int,
    ) -> None:
        self.kernel = kernel
        self.pool = pool
        self._queue: deque[tuple[str, object]] = deque()
        self.drained = 0
        self.dummies = 0
        kernel.register_daemon("vusion-free", period, self.drain)

    def __len__(self) -> int:
        return len(self._queue)

    def _enqueue(self, kind: str, payload: object) -> None:
        self._queue.append((kind, payload))
        self.kernel.clock.advance(self.kernel.costs.deferred_free_enqueue)

    def queue_free(self, pfn: int) -> None:
        """Queue a real frame free."""
        self._enqueue("free", pfn)

    def queue_dummy(self) -> None:
        """Queue a no-op with identical enqueue cost (the dummy request)."""
        self._enqueue("dummy", None)

    def queue_reclaim(self, callback: Callable[[], None]) -> None:
        """Queue a stable-node reclaim check, run at drain time."""
        self._enqueue("reclaim", callback)

    def pending_frees(self) -> frozenset[int]:
        """Frames queued for freeing but not yet drained."""
        return frozenset(
            payload for kind, payload in self._queue if kind == "free"
        )

    def drain(self) -> None:
        """Process all queued requests (daemon context)."""
        while self._queue:
            kind, payload = self._queue.popleft()
            if kind == "free":
                self.pool.free(payload)
                self.kernel.clock.advance(self.kernel.costs.buddy_free)
                self.drained += 1
            elif kind == "reclaim":
                payload()
            else:
                self.dummies += 1
