"""VUsion's randomized frame pool (the RA principle, §7.1).

The paper reserves 128 MiB of physical memory as a cache, adding 15
bits of entropy to every allocation VUsion performs during merging and
unmerging: a freed frame lands in the pool and is handed out again
only with probability ~2^-15 per allocation, so an attacker cannot
steer which physical frame backs a fused page.

Frames in the pool are typed ``FREE`` (they are reserved capacity, not
data), are drawn uniformly at random on allocation, and the pool is
continuously topped up from the buddy allocator.  Overflow (more frees
than capacity) spills the *oldest* pooled frames back to the buddy —
further delaying any reuse.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.annotations import escapes_frame
from repro.errors import OutOfMemoryError
from repro.mem.physmem import FrameType

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class RandomFramePool:
    """Uniform-random frame allocator backed by a reserve cache."""

    def __init__(self, kernel: "Kernel", capacity: int, seed: int) -> None:
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        self.kernel = kernel
        self.requested_capacity = capacity
        # On scaled-down simulated machines the paper's full 128 MiB
        # reserve could swallow most of RAM; cap the pool at a quarter
        # of the currently-free frames so workloads can still run.
        self.capacity = max(1, min(capacity, kernel.buddy.free_frames() // 4))
        self._rng = random.Random(seed)
        self._frames: list[int] = []
        self.allocs = 0
        self.frees = 0
        #: When enabled, records the normalized rank (sorted position /
        #: pool size) of each chosen frame — the observable the RA
        #: uniformity experiment KS-tests against Uniform[0, 1).
        self.log_ranks = False
        self.rank_log: list[float] = []
        self.rank_log_limit = 5000
        self._refill()

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._frames

    def _refill(self) -> None:
        buddy = self.kernel.buddy
        sanitizer = self.kernel.sanitizer
        while len(self._frames) < self.capacity:
            try:
                pfn = buddy.alloc()
            except OutOfMemoryError:
                break
            self.kernel.physmem.set_frame_type(pfn, FrameType.FREE)
            if sanitizer is not None:
                # Reserve capacity holds no data: poison it so a stray
                # read/write of a pooled frame faults as use-after-free.
                sanitizer.on_reserve(pfn, "pool")
            self._frames.append(pfn)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @escapes_frame
    def alloc(self, frame_type: FrameType = FrameType.ANON) -> int:
        """Draw one frame uniformly at random from the pool."""
        if not self._frames:
            self._refill()
        if not self._frames:
            raise OutOfMemoryError("random pool exhausted and buddy empty")
        index = self._rng.randrange(len(self._frames))
        self._frames[index], self._frames[-1] = self._frames[-1], self._frames[index]
        pfn = self._frames.pop()
        if self.log_ranks and len(self.rank_log) < self.rank_log_limit:
            rank = sum(1 for frame in self._frames if frame < pfn)
            self.rank_log.append(rank / max(1, len(self._frames)))
        if self.kernel.sanitizer is not None:
            self.kernel.sanitizer.on_alloc(pfn, 1, "pool")
        self.kernel.physmem.set_frame_type(pfn, frame_type)
        self.kernel.clock.advance(self.kernel.costs.pool_alloc)
        self.allocs += 1
        self._refill()
        return pfn

    def free(self, pfn: int) -> None:
        """Return a frame to the pool (spilling the oldest on overflow)."""
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.on_free(pfn, 1, "pool")
        self.kernel.physmem.set_frame_type(pfn, FrameType.FREE)
        self._frames.append(pfn)
        self.frees += 1
        while len(self._frames) > self.capacity:
            spilled = self._frames.pop(0)
            if sanitizer is not None:
                # Pool -> buddy is a free-to-free transfer; clear our
                # poison so the buddy-free hook re-poisons it cleanly.
                sanitizer.on_release(spilled, "pool")
            self.kernel.buddy.free(spilled)

    def drain(self) -> int:
        """Return every pooled frame to the buddy (teardown); count them."""
        sanitizer = self.kernel.sanitizer
        count = len(self._frames)
        for pfn in self._frames:
            if sanitizer is not None:
                sanitizer.on_release(pfn, "pool")
            self.kernel.buddy.free(pfn)
        self._frames.clear()
        return count
