"""VUsion: secure page fusion (the paper's contribution, §6-§8).

The engine enforces the two design principles:

**Same Behaviour (SB).**  Every idle page considered for fusion loses
*all* access — the PTE gets the reserved trap bit (any read, write or
fetch faults) and the cache-disable bit (no prefetching into the LLC).
A page whose content matches an existing stable node is *merged* onto
that node's frame; a page with no match is *fake merged*: it is moved
to a fresh random frame and becomes a 1-mapper stable node (so VUsion
needs no unstable tree — design decision (i)).  The next access to
either kind takes an identical copy-on-access fault: allocate a random
frame, copy, remap privately, enqueue exactly one deferred-free
request (a real free or a dummy — decision (ii)).  Merged and
fake-merged pages are therefore indistinguishable.

**Randomized Allocation (RA).**  Every frame VUsion hands out —
stable-node backing, fake-merge backing, copy-on-access targets and
the per-scan re-backing of decision (iii) — comes from a
:class:`~repro.core.random_pool.RandomFramePool` with ~15 bits of
entropy, so physical memory reuse cannot be massaged.

Working-set estimation (§7.2) keeps the extra faults off hot pages:
only pages idle for a full scan period are candidates.  Huge pages are
broken up *before* candidacy (§8.1), so a THP split reveals only
idleness, never a merge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.deferred_free import DeferredFreeQueue
from repro.core.random_pool import RandomFramePool
from repro.core.working_set import WorkingSetEstimator
from repro.fusion.base import FusionEngine, ScanCursor
from repro.fusion.incremental import PURE, IncrementalScanCache
from repro.fusion.rbtree import RedBlackTree
from repro.mem.content import PageContent
from repro.mem.physmem import FrameType
from repro.mmu.pte import PteFlags
from repro.params import (
    DEFAULT_FUSION,
    DEFAULT_VUSION,
    FusionConfig,
    VusionConfig,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.mmu.page_table import TranslationResult
    from repro.kernel.access import AccessKind

#: PTE state of every (fake-)merged page: present but trapped on any
#: access via the reserved bit, and uncacheable against prefetch.
FUSED_FLAGS = (
    PteFlags.USER | PteFlags.FUSED | PteFlags.RESERVED | PteFlags.CACHE_DISABLED
)

#: Fused flags without the CD bit (the cache_disable_enabled ablation).
FUSED_FLAGS_NO_CD = PteFlags.USER | PteFlags.FUSED | PteFlags.RESERVED


class VusionNode:
    """A stable-tree node; fake-merged pages are 1-mapper nodes."""

    __slots__ = ("pfn", "last_move_round")

    def __init__(self, pfn: int, round_created: int) -> None:
        self.pfn = pfn
        #: Scan round in which the backing frame was last re-randomized
        #: (design decision (iii)).
        self.last_move_round = round_created

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VusionNode(pfn={self.pfn})"


class Vusion(FusionEngine):
    """The secure page-fusion engine."""

    name = "vusion"

    def __init__(
        self,
        config: VusionConfig = DEFAULT_VUSION,
        fusion_config: FusionConfig = DEFAULT_FUSION,
    ) -> None:
        super().__init__()
        self.config = config
        self.fusion_config = fusion_config
        self.cursor: ScanCursor | None = None
        self.stable: RedBlackTree[VusionNode] | None = None
        self.pool: RandomFramePool | None = None
        self.deferred: DeferredFreeQueue | None = None
        self.wse: WorkingSetEstimator | None = None
        self._nodes_by_pfn: dict[int, VusionNode] = {}
        self.rerandomizations = 0
        self._inc: IncrementalScanCache | None = None
        self._fused_flags = (
            FUSED_FLAGS if config.cache_disable_enabled else FUSED_FLAGS_NO_CD
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, kernel: "Kernel") -> None:
        def charge() -> None:
            kernel.clock.advance(kernel.costs.tree_compare)

        self.cursor = ScanCursor(kernel)
        self.stable = RedBlackTree(
            key_of=lambda node: kernel.physmem.read(node.pfn), on_compare=charge
        )
        self.pool = RandomFramePool(
            kernel, self.config.random_pool_frames, seed=kernel.spec.seed + 1
        )
        self.deferred = DeferredFreeQueue(
            kernel, self.pool, self.config.deferred_free_interval
        )
        min_idle = self.config.min_idle_ns
        if min_idle is None:
            min_idle = 5 * self.fusion_config.scan_interval
        self.wse = WorkingSetEstimator(
            kernel.idle_tracker,
            enabled=self.config.working_set_enabled,
            min_idle_ns=min_idle,
        )
        # Pure-skip memos only: every charged VUsion step either
        # mutates state (merge, fake merge, re-randomize, working-set
        # probe clearing the accessed bit) or depends on it.
        self._inc = IncrementalScanCache(kernel, self.name)
        kernel.register_daemon(
            "vusion", self.fusion_config.scan_interval, self.scan_tick
        )

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan_tick(self) -> None:
        kernel = self.kernel
        inc = self._inc
        self.stats.scans += 1
        for process, vma, vaddr in self.cursor.next_pages(
            self.fusion_config.pages_per_scan
        ):
            kernel.clock.advance(kernel.costs.scan_page)
            self.stats.pages_scanned += 1
            if inc.try_replay(process, vaddr):
                continue
            inc.commit(process, vaddr, self._scan_one(process, vaddr), 0)
        self.stats.full_scans = self.cursor.full_scans

    def _scan_one(self, process: "Process", vaddr: int):
        """Scan one page; returns the replay outcome for the memo cache
        (only content-free skips are pure — everything else mutates)."""
        kernel = self.kernel
        walk = process.address_space.page_table.walk(vaddr)
        if walk is None:
            return (PURE,)
        pte = walk.pte
        if pte.fused:
            # Already (fake-)merged; re-randomize its backing once per
            # scan round (decision (iii)).  Without re-randomization
            # the step is a pure skip; with it the skip-or-move choice
            # depends on the round counter, so it stays opaque.
            if not self.config.rerandomize_each_scan:
                return (PURE,)
            self._rerandomize(pte.pfn)
            return None
        if walk.huge:
            if vaddr != walk.page_base:
                # A huge page has one PTE (and one accessed bit) for
                # all 512 subpages; handle it once per round, at its
                # base address.
                return (PURE,)
            if self.config.thp_enabled and self.config.thp_active_threshold <= 1:
                # High-performance mode (§8.1, n = 1, à la Ingens):
                # only an *idle* THP is broken up — the split leaks
                # only idleness.  With n > 1 (capacity mode, à la KSM)
                # every candidate THP is broken and the secure
                # khugepaged's K >= n policy decides which ranges earn
                # their huge page back.
                key = (process.pid, walk.page_base)
                if not self.wse.is_candidate(key, pte, kernel.clock.now):
                    self.stats.working_set_skips += 1
                    return
            # Maximum-fusion mode (à la KSM, the paper's plain VUsion):
            # every THP considered for fusion is broken up; its 4 KiB
            # subpages then go through the normal per-page idle gate.
            kernel.split_huge_mapping(process, vaddr)
            self.stats.thp_splits += 1
            walk = process.address_space.page_table.walk(vaddr)
            pte = walk.pte
        key = (process.pid, walk.page_base)
        if not self.wse.is_candidate(key, pte, kernel.clock.now):
            self.stats.working_set_skips += 1
            return
        pfn = walk.frame_for(vaddr)
        content = kernel.physmem.read(pfn)
        kernel.clock.advance(kernel.costs.checksum_page)
        node = self.stable.search(content)
        if node is not None and node.pfn != pfn:
            self._merge(process, vaddr, node)
        else:
            self._fake_merge(process, vaddr, content)

    # ------------------------------------------------------------------
    # Merge and fake merge (symmetric by construction)
    # ------------------------------------------------------------------
    def _release_scanned_frame(self, pfn: int, refcount: int) -> None:
        """Queue the duplicate's frame for deferred freeing.

        Exactly one queue operation happens whether or not the frame
        is actually freeable, keeping the code paths symmetric.  With
        decision (ii) ablated, freeable frames are freed inline — the
        asymmetry the deferred queue exists to remove.
        """
        if not self.config.deferred_free_enabled:
            if refcount == 0:
                self.pool.free(pfn)
                self.kernel.clock.advance(self.kernel.costs.buddy_free)
            return
        if refcount == 0:
            self.deferred.queue_free(pfn)
        else:
            self.deferred.queue_dummy()

    def _merge(self, process: "Process", vaddr: int, node: VusionNode) -> None:
        kernel = self.kernel
        old_pfn, refcount, _old_pte = kernel.unmap_page(process, vaddr)
        self._release_scanned_frame(old_pfn, refcount)
        kernel.map_page(process, vaddr, node.pfn, self._fused_flags)
        self.stats.merges += 1
        self.stats.merge_frame_log.append(node.pfn)
        kernel.emit("fusion:merge", pid=process.pid, vaddr=vaddr, pfn=node.pfn)

    def _fake_merge(self, process: "Process", vaddr: int, content: PageContent) -> None:
        kernel = self.kernel
        new_pfn = self.pool.alloc(FrameType.ANON)
        # ``content`` was just read from the scanned frame, so on the
        # columnar store this write is a pure intern hit: the new frame
        # retains the same content id and no bytes are copied.  The
        # simulated copy_page charge below is unaffected.
        kernel.physmem.write(new_pfn, content)
        kernel.clock.advance(kernel.costs.copy_page)
        old_pfn, refcount, _old_pte = kernel.unmap_page(process, vaddr)
        self._release_scanned_frame(old_pfn, refcount)
        kernel.map_page(process, vaddr, new_pfn, self._fused_flags)
        node = VusionNode(new_pfn, self.cursor.full_scans)
        kernel.physmem.pin_fused(new_pfn)
        kernel.physmem.get_ref(new_pfn)
        self.stable.insert(node)
        self._nodes_by_pfn[new_pfn] = node
        self.stats.fake_merges += 1
        self.stats.stable_nodes_created += 1
        self.stats.merge_frame_log.append(new_pfn)
        kernel.emit("fusion:fake_merge", pid=process.pid, vaddr=vaddr, pfn=new_pfn)

    def _rerandomize(self, node_pfn: int) -> None:
        """Move a stable node to a fresh random frame, once per round."""
        if not self.config.rerandomize_each_scan:
            return
        node = self._nodes_by_pfn.get(node_pfn)
        if node is None or node.last_move_round >= self.cursor.full_scans:
            return
        kernel = self.kernel
        new_pfn = self.pool.alloc(FrameType.ANON)
        kernel.copy_page_cached(node_pfn, new_pfn)
        kernel.physmem.pin_fused(new_pfn)
        kernel.physmem.get_ref(new_pfn)
        for pid, vaddr in sorted(kernel.physmem.rmap(node_pfn)):
            owner = kernel.find_process(pid)
            if owner is None:
                continue
            kernel.unmap_page(owner, vaddr)
            kernel.map_page(owner, vaddr, new_pfn, self._fused_flags)
        kernel.physmem.unpin_fused(node_pfn)
        kernel.physmem.put_ref(node_pfn)
        if kernel.physmem.refcount(node_pfn) != 0:
            raise RuntimeError(f"re-randomized node pfn {node_pfn} still referenced")
        self.deferred.queue_free(node_pfn)
        node.pfn = new_pfn
        node.last_move_round = self.cursor.full_scans
        del self._nodes_by_pfn[node_pfn]
        self._nodes_by_pfn[new_pfn] = node
        self.rerandomizations += 1
        self.stats.merge_frame_log.append(new_pfn)
        kernel.emit("fusion:rerandomize", old_pfn=node_pfn, pfn=new_pfn)

    # ------------------------------------------------------------------
    # Copy-on-access (the only unmerge path; SB-symmetric)
    # ------------------------------------------------------------------
    def handle_reserved_fault(
        self,
        process: "Process",
        vaddr: int,
        walk: "TranslationResult",
        kind: "AccessKind",
    ) -> None:
        self._copy_on_access(process, vaddr, walk.pte.pfn)

    def _copy_on_access(self, process: "Process", vaddr: int, node_pfn: int) -> None:
        """Give the faulting page a private copy on a fresh random frame.

        The instruction sequence — pool alloc, page copy, remap, one
        queue operation — is identical whether the page was merged or
        fake merged, so the fault latency carries no merge information.
        """
        kernel = self.kernel
        kernel.trace("vusion_coa")
        new_pfn = self.pool.alloc(FrameType.ANON)
        kernel.copy_page_cached(node_pfn, new_pfn)
        kernel.unmap_page(process, vaddr)
        kernel.map_page(
            process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE
        )
        self._queue_node_check(node_pfn)
        self.stats.coa_unmerges += 1
        kernel.emit("fusion:coa", pid=process.pid, vaddr=vaddr)

    def _queue_node_check(self, node_pfn: int) -> None:
        """Enqueue exactly one request: reclaim check or dummy.

        With decision (ii) ablated the reclaim happens inline in the
        fault path, so unmerging a fake-merged page (whose node dies)
        is measurably slower than unmerging a merged one.
        """
        node = self._nodes_by_pfn.get(node_pfn)
        if not self.config.deferred_free_enabled:
            if node is not None and self.kernel.physmem.refcount(node.pfn) == 1:
                self.kernel.clock.advance(self.kernel.costs.buddy_free)
                self._reclaim_if_dead(node)
            return
        if node is None:
            self.deferred.queue_dummy()
            return
        self.deferred.queue_reclaim(lambda: self._reclaim_if_dead(node))

    def _reclaim_if_dead(self, node: VusionNode) -> None:
        """Drain-time check: release nodes with no mappers left."""
        kernel = self.kernel
        pfn = node.pfn
        if self._nodes_by_pfn.get(pfn) is not node:
            return
        if kernel.physmem.refcount(pfn) != 1:
            return
        self.stable.remove(node)
        del self._nodes_by_pfn[pfn]
        kernel.physmem.unpin_fused(pfn)
        kernel.physmem.put_ref(pfn)
        self.pool.free(pfn)
        self.stats.stable_nodes_released += 1

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------
    def on_fused_ref_drop(self, pfn: int) -> None:
        self._queue_node_check(pfn)

    def unmerge_for_collapse(self, process: "Process", vaddr: int) -> None:
        walk = process.address_space.page_table.walk(vaddr)
        if walk is not None and walk.pte.fused:
            self._copy_on_access(process, vaddr, walk.pte.pfn)

    def pending_frees(self) -> frozenset[int]:
        if self.deferred is None:
            return frozenset()
        return self.deferred.pending_frees()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def incremental_stats(self) -> dict[str, int]:
        return self._inc.stats_dict() if self._inc is not None else {}

    def shard_exportable_pfns(self) -> list[int]:
        # Only fused (S xor F disciplined) node frames.  Accessible
        # guest pages are never advertised: a cross-shard digest of a
        # page the guest can still time writes against would hand a
        # remote attacker exactly the disclosure oracle VUsion exists
        # to close.  Fused nodes include fake merges, so the export
        # itself is indistinguishable from real sharing — the same
        # share-xor-fetch argument as on the local node.
        return sorted(self._nodes_by_pfn)

    def sharing_pairs(self) -> tuple[int, int]:
        # One scan-kernel reduction over the stable pfns; monitors
        # sample this every tick, so it must not loop in Python.
        pages_shared = len(self._nodes_by_pfn)
        pages_sharing = (
            self.kernel.physmem.scan_kernel.refcount_sum(self._nodes_by_pfn)
            - pages_shared
        )
        return pages_shared, pages_sharing

    def saved_frames(self) -> int:
        pages_shared, pages_sharing = self.sharing_pairs()
        return pages_sharing - pages_shared
