"""Physical frame store: contents, reference counts, types and rmap.

This is the simulator's ground truth for what each physical frame
holds.  Fusion engines, the fault handler and the Rowhammer model all
manipulate frames through this object, which lets the test suite assert
the paper's key invariants (a merge only ever fuses equal contents; a
bit flip in a shared frame is visible to *every* mapper; refcounts
match the number of mappings).
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import InvalidFrameError
from repro.mem.content import PageContent, ZERO_PAGE
from repro.mem.fingerprint import DirtyFrameView, FingerprintCache
from repro.params import PAGE_SIZE


class FrameType(enum.Enum):
    """Classification of a frame's current use.

    Mirrors the page-type breakdown of the paper's Table 3 ("page
    cache", "buddy", "kernel", "rest").  ``FREE`` frames live in the
    buddy allocator or in VUsion's random pool.
    """

    FREE = "free"
    ANON = "anon"
    PAGE_CACHE = "page_cache"
    KERNEL = "kernel"
    OTHER = "other"


class PhysicalMemory:
    """All physical frames of the simulated machine.

    Frames are identified by frame number (pfn) in ``[0, num_frames)``.
    Contents are canonical :class:`~repro.mem.content.PageContent`
    payloads.  The reverse map records every ``(pid, vaddr)`` mapping of
    a frame, which is what WPF's per-process merge pass and the kernel's
    rmap-based unmapping walk.
    """

    def __init__(self, num_frames: int, fingerprint_enabled: bool = True) -> None:
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self._contents: list[PageContent] = [ZERO_PAGE] * num_frames
        self._refcount: list[int] = [0] * num_frames
        self._types: list[FrameType] = [FrameType.FREE] * num_frames
        self._rmap: dict[int, set[tuple[int, int]]] = {}
        #: Content version per frame, bumped on every mutation.  The
        #: Rowhammer engine uses it to model one-way charge leakage (a
        #: cell that already flipped cannot flip again until rewritten).
        self._versions: list[int] = [0] * num_frames
        #: Frames pinned by a fusion engine's stable tree (KSM-style).
        self._fusion_pinned: set[int] = set()
        #: Incremental content fingerprints; every mutation path below
        #: — including :meth:`corrupt_bit` — invalidates through it.
        self.fingerprints = FingerprintCache(num_frames, enabled=fingerprint_enabled)
        #: Optional FrameSan hooks (set by the kernel under
        #: ``REPRO_SANITIZE=1``); content accesses below consult it so
        #: use-after-free and CoW violations fault at the access site.
        self.sanitizer = None

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def check_pfn(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_frames:
            raise InvalidFrameError(f"pfn {pfn} outside [0, {self.num_frames})")

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    def read(self, pfn: int) -> PageContent:
        """Return the content of frame ``pfn``."""
        self.check_pfn(pfn)
        if self.sanitizer is not None:
            self.sanitizer.on_read(pfn)
        return self._contents[pfn]

    def peek_content(self, pfn: int) -> PageContent:
        """Diagnostic read bypassing the sanitizer's UAF check.

        For tests and debugging tools that legitimately inspect freed
        frames (e.g. validating that a freed frame's cached digest is
        still exact) — the moral equivalent of reading /proc/kcore.
        Simulation code must use :meth:`read`.
        """
        self.check_pfn(pfn)
        return self._contents[pfn]

    def write(self, pfn: int, content: PageContent) -> None:
        """Overwrite frame ``pfn`` with canonical ``content``."""
        self.check_pfn(pfn)
        if len(content) > PAGE_SIZE:
            raise InvalidFrameError("content larger than a page")
        if self.sanitizer is not None:
            self.sanitizer.on_write(pfn)
        self._contents[pfn] = content
        self._versions[pfn] += 1
        self.fingerprints.note_mutation(pfn)

    def copy(self, src: int, dst: int) -> None:
        """Copy the full page content of ``src`` into ``dst``."""
        self.check_pfn(src)
        self.check_pfn(dst)
        if self.sanitizer is not None:
            self.sanitizer.on_read(src)
            self.sanitizer.on_write(dst)
        self._contents[dst] = self._contents[src]
        self._versions[dst] += 1
        self.fingerprints.note_mutation(dst)

    def corrupt_bit(self, pfn: int, byte_offset: int, bit: int) -> None:
        """Flip one bit of frame ``pfn`` in place (Rowhammer).

        This bypasses permissions, refcounts and copy-on-write — which
        is exactly why Flip Feng Shui works against page fusion.
        """
        from repro.mem.content import flip_bit

        self.check_pfn(pfn)
        # Rowhammer also bypasses the sanitizer's UAF/CoW checks on
        # purpose: a flip landing in a shared or freed frame is the
        # physical phenomenon under study, not a simulator bug.
        self._contents[pfn] = flip_bit(self._contents[pfn], byte_offset, bit)
        # Rowhammer bypasses permissions and copy-on-write, but not the
        # fingerprint cache: a flipped frame must never keep its stale
        # digest (``_versions`` stays untouched on purpose — see below).
        self.fingerprints.note_mutation(pfn)

    def version(self, pfn: int) -> int:
        """Recharge epoch of frame ``pfn``.

        Bumped by CPU stores (:meth:`write`/:meth:`copy`) but *not* by
        :meth:`corrupt_bit`: a Rowhammer-discharged cell stays
        discharged until the frame is rewritten.
        """
        self.check_pfn(pfn)
        return self._versions[pfn]

    # ------------------------------------------------------------------
    # Content fingerprints
    # ------------------------------------------------------------------
    def digest(self, pfn: int) -> int:
        """64-bit content digest of ``pfn``, cached until invalidated.

        Always equals ``content_digest(read(pfn))``; with fingerprints
        disabled the hash is simply recomputed on every call.
        """
        self.check_pfn(pfn)
        return self.fingerprints.digest(pfn, self._contents[pfn])

    def generation(self, pfn: int) -> int:
        """Mutation generation of ``pfn``.

        Unlike :meth:`version`, this is bumped by **every** mutation
        including :meth:`corrupt_bit` — engines use it to prove "page
        unchanged since last pass", and a Rowhammer flip is a change.
        """
        self.check_pfn(pfn)
        return self.fingerprints.generation(pfn)

    @property
    def mutation_epoch(self) -> int:
        """Global counter of frame mutations (any frame, any cause)."""
        return self.fingerprints.mutation_epoch

    def register_dirty_view(self, name: str) -> DirtyFrameView:
        """Register a drainable view of frames mutated from now on."""
        return self.fingerprints.register_view(name)

    # ------------------------------------------------------------------
    # Reference counting
    # ------------------------------------------------------------------
    def refcount(self, pfn: int) -> int:
        self.check_pfn(pfn)
        return self._refcount[pfn]

    def get_ref(self, pfn: int) -> None:
        """Increment the reference count of ``pfn``."""
        self.check_pfn(pfn)
        self._refcount[pfn] += 1

    def put_ref(self, pfn: int) -> int:
        """Decrement the reference count and return the new value."""
        self.check_pfn(pfn)
        if self._refcount[pfn] <= 0:
            raise InvalidFrameError(f"refcount underflow on pfn {pfn}")
        self._refcount[pfn] -= 1
        return self._refcount[pfn]

    # ------------------------------------------------------------------
    # Frame type bookkeeping (Table 3)
    # ------------------------------------------------------------------
    def frame_type(self, pfn: int) -> FrameType:
        self.check_pfn(pfn)
        return self._types[pfn]

    def set_frame_type(self, pfn: int, frame_type: FrameType) -> None:
        self.check_pfn(pfn)
        self._types[pfn] = frame_type

    # ------------------------------------------------------------------
    # Fusion pinning (stable-tree membership)
    # ------------------------------------------------------------------
    def pin_fused(self, pfn: int) -> None:
        self.check_pfn(pfn)
        self._fusion_pinned.add(pfn)

    def unpin_fused(self, pfn: int) -> None:
        self._fusion_pinned.discard(pfn)

    def is_fused(self, pfn: int) -> bool:
        return pfn in self._fusion_pinned

    # ------------------------------------------------------------------
    # Reverse map
    # ------------------------------------------------------------------
    def rmap_add(self, pfn: int, pid: int, vaddr: int) -> None:
        """Record that process ``pid`` maps ``pfn`` at ``vaddr``."""
        self.check_pfn(pfn)
        self._rmap.setdefault(pfn, set()).add((pid, vaddr))

    def rmap_remove(self, pfn: int, pid: int, vaddr: int) -> None:
        entries = self._rmap.get(pfn)
        if not entries or (pid, vaddr) not in entries:
            raise InvalidFrameError(
                f"rmap entry ({pid}, {vaddr:#x}) missing for pfn {pfn}"
            )
        entries.remove((pid, vaddr))
        if not entries:
            del self._rmap[pfn]

    def rmap(self, pfn: int) -> frozenset[tuple[int, int]]:
        """Return the set of ``(pid, vaddr)`` mappings of ``pfn``."""
        self.check_pfn(pfn)
        return frozenset(self._rmap.get(pfn, ()))

    def mapped_frames(self) -> Iterator[int]:
        """Iterate over frames with at least one virtual mapping."""
        return iter(sorted(self._rmap))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def frames_in_use(self) -> int:
        """Number of frames not currently free."""
        return sum(1 for t in self._types if t is not FrameType.FREE)

    def type_histogram(self) -> dict[FrameType, int]:
        histogram: dict[FrameType, int] = {t: 0 for t in FrameType}
        for frame_type in self._types:
            histogram[frame_type] += 1
        return histogram
