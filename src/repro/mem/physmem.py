"""Physical frame store: contents, reference counts, types and rmap.

This is the simulator's ground truth for what each physical frame
holds.  Fusion engines, the fault handler and the Rowhammer model all
manipulate frames through this object, which lets the test suite assert
the paper's key invariants (a merge only ever fuses equal contents; a
bit flip in a shared frame is visible to *every* mapper; refcounts
match the number of mappings).

Two interchangeable content backends exist:

* the **columnar** store (default): an ``array``-backed column of
  content ids into a hash-consed :class:`~repro.mem.arena.ContentArena`
  — one canonical payload per unique content, O(1) frame copies
  (retain/release an id, no bytes move) and one digest per unique
  payload;
* the **legacy** store: one ``bytes`` object per frame, kept as the
  differential reference implementation.

Both expose identical semantics through this class; the lockstep suite
in ``tests/test_store_differential.py`` proves simulated time, merge
behaviour and runner artifacts are byte-identical either way.  Select a
backend per machine via ``MachineSpec.frame_store`` or globally via the
``REPRO_FRAME_STORE`` environment variable.

On top of the content column sit O(1) accounting structures — a
``frames_in_use`` counter and a frame-type histogram maintained in
:meth:`set_frame_type`, plus a sorted-pfn cache behind
:meth:`mapped_frames` invalidated only when the rmap's key set changes
— so per-sample metrics cost is independent of machine size.

Batch queries over many frames (zero sweeps, duplicate grouping,
digest sweeps) go through the pluggable scan kernel exposed as
:attr:`PhysicalMemory.scan_kernel` — see :mod:`repro.mem.scankernel`
— selected per machine via ``MachineSpec.scan_kernel`` or globally
via ``REPRO_SCAN_KERNEL``.
"""

from __future__ import annotations

import enum
import os
from array import array
from typing import Iterator

from repro.errors import InvalidFrameError
from repro.mem.arena import ContentArena, ZERO_ID
from repro.mem.content import PageContent, ZERO_PAGE, flip_bit
from repro.mem.fingerprint import DirtyFrameView, FingerprintCache
from repro.mem.scankernel import default_scan_kernel, make_scan_kernel
from repro.params import PAGE_SIZE

#: Environment override for the default content backend.
FRAME_STORE_ENV = "REPRO_FRAME_STORE"

#: Recognised backend names.
FRAME_STORES = ("columnar", "legacy")


def default_frame_store() -> str:
    """The process-wide default backend (env override or columnar)."""
    value = os.environ.get(FRAME_STORE_ENV, "").strip().lower()
    return value if value in FRAME_STORES else "columnar"


class FrameType(enum.Enum):
    """Classification of a frame's current use.

    Mirrors the page-type breakdown of the paper's Table 3 ("page
    cache", "buddy", "kernel", "rest").  ``FREE`` frames live in the
    buddy allocator or in VUsion's random pool.
    """

    FREE = "free"
    ANON = "anon"
    PAGE_CACHE = "page_cache"
    KERNEL = "kernel"
    OTHER = "other"


class LegacyFrameStore:
    """One ``bytes`` payload per frame (the pre-arena representation)."""

    name = "legacy"
    arena: ContentArena | None = None

    def __init__(self, num_frames: int) -> None:
        self._contents: list[PageContent] = [ZERO_PAGE] * num_frames

    def get(self, pfn: int) -> PageContent:
        return self._contents[pfn]

    def set(self, pfn: int, content: PageContent) -> None:
        self._contents[pfn] = content

    def copy(self, src: int, dst: int) -> None:
        self._contents[dst] = self._contents[src]

    def merge_key(self, pfn: int) -> PageContent:
        return self._contents[pfn]

    def snapshot(self) -> list[PageContent]:
        return list(self._contents)


class ColumnarFrameStore:
    """An ``array`` column of content ids over a hash-consed arena.

    Each frame holds exactly one arena reference on its current content
    id — including FREE frames, which keep their last payload alive so
    diagnostic reads (:meth:`PhysicalMemory.peek_content`) and cached
    digests of freed frames behave exactly as in the legacy store.
    """

    name = "columnar"

    def __init__(self, num_frames: int) -> None:
        self.arena = ContentArena()
        self._cids = array("q", [ZERO_ID]) * num_frames
        self.arena._retain(ZERO_ID, num_frames)

    def get(self, pfn: int) -> PageContent:
        return self.arena.payload(self._cids[pfn])

    def set(self, pfn: int, content: PageContent) -> None:
        arena = self.arena
        cid = arena._intern(content)
        arena._release(self._cids[pfn])
        self._cids[pfn] = cid

    def copy(self, src: int, dst: int) -> None:
        arena = self.arena
        cid = self._cids[src]
        arena._retain(cid)
        arena._release(self._cids[dst])
        self._cids[dst] = cid

    def merge_key(self, pfn: int) -> int:
        return self._cids[pfn]

    def content_id(self, pfn: int) -> int:
        return self._cids[pfn]

    def snapshot(self) -> list[PageContent]:
        payload = self.arena.payload
        return [payload(cid) for cid in self._cids]


def _make_store(kind: str, num_frames: int):
    if kind == "columnar":
        return ColumnarFrameStore(num_frames)
    if kind == "legacy":
        return LegacyFrameStore(num_frames)
    raise ValueError(
        f"unknown frame store {kind!r}; expected one of {FRAME_STORES}"
    )


class PhysicalMemory:
    """All physical frames of the simulated machine.

    Frames are identified by frame number (pfn) in ``[0, num_frames)``.
    Contents are canonical :class:`~repro.mem.content.PageContent`
    payloads.  The reverse map records every ``(pid, vaddr)`` mapping of
    a frame, which is what WPF's per-process merge pass and the kernel's
    rmap-based unmapping walk.
    """

    def __init__(
        self,
        num_frames: int,
        fingerprint_enabled: bool = True,
        frame_store: str | None = None,
        scan_kernel: str | None = None,
    ) -> None:
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        #: Content backend ("columnar" by default, "legacy" reference).
        self._backing = _make_store(frame_store or default_frame_store(), num_frames)
        #: The content arena behind the columnar store (None on legacy).
        self.arena: ContentArena | None = self._backing.arena
        #: A fixed-size signed-64 column (never reallocated) so the
        #: batch scan kernel can hold a zero-copy view over it.
        self._refcount = array("q", bytes(8 * num_frames))
        self._types: list[FrameType] = [FrameType.FREE] * num_frames
        self._rmap: dict[int, set[tuple[int, int]]] = {}
        #: Content version per frame, bumped on every mutation.  The
        #: Rowhammer engine uses it to model one-way charge leakage (a
        #: cell that already flipped cannot flip again until rewritten).
        self._versions: list[int] = [0] * num_frames
        #: Frames pinned by a fusion engine's stable tree (KSM-style).
        self._fusion_pinned: set[int] = set()
        #: O(1) accounting, maintained by :meth:`set_frame_type`.
        self._in_use = 0
        self._type_counts: dict[FrameType, int] = {t: 0 for t in FrameType}
        self._type_counts[FrameType.FREE] = num_frames
        #: Sorted mapped-pfn snapshot; dropped when the rmap key set
        #: changes (entry appears/disappears), not on every rmap touch.
        self._mapped_cache: tuple[int, ...] | None = None
        #: Incremental content fingerprints; every mutation path below
        #: — including :meth:`corrupt_bit` — invalidates through it.
        self.fingerprints = FingerprintCache(
            num_frames, enabled=fingerprint_enabled, backing=self._backing
        )
        #: Optional FrameSan hooks (set by the kernel under
        #: ``REPRO_SANITIZE=1``); content accesses below consult it so
        #: use-after-free and CoW violations fault at the access site.
        self.sanitizer = None
        #: Batch scan primitives over the content column (zero sweep,
        #: duplicate grouping, dirty intersection, generation deltas —
        #: see :mod:`repro.mem.scankernel`).  Engines reach it through
        #: ``kernel.physmem.scan_kernel``; the flavour is another pure
        #: representation choice proven observation-identical by
        #: ``tests/test_scan_kernel_differential.py``.
        self.scan_kernel = make_scan_kernel(
            scan_kernel or default_scan_kernel(), self
        )

    @property
    def store_kind(self) -> str:
        """Name of the active content backend ("columnar" | "legacy")."""
        return self._backing.name

    @property
    def scan_kernel_kind(self) -> str:
        """Name of the active scan kernel ("batch" | "scalar")."""
        return self.scan_kernel.name

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def check_pfn(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_frames:
            raise InvalidFrameError(f"pfn {pfn} outside [0, {self.num_frames})")

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    def read(self, pfn: int) -> PageContent:
        """Return the content of frame ``pfn``."""
        self.check_pfn(pfn)
        if self.sanitizer is not None:
            self.sanitizer.on_read(pfn)
        return self._backing.get(pfn)

    def peek_content(self, pfn: int) -> PageContent:
        """Diagnostic read bypassing the sanitizer's UAF check.

        For tests and debugging tools that legitimately inspect freed
        frames (e.g. validating that a freed frame's cached digest is
        still exact) — the moral equivalent of reading /proc/kcore.
        Simulation code must use :meth:`read`.
        """
        self.check_pfn(pfn)
        return self._backing.get(pfn)

    def write(self, pfn: int, content: PageContent) -> None:
        """Overwrite frame ``pfn`` with canonical ``content``."""
        self.check_pfn(pfn)
        if len(content) > PAGE_SIZE:
            raise InvalidFrameError("content larger than a page")
        if self.sanitizer is not None:
            self.sanitizer.on_write(pfn)
        self._backing.set(pfn, content)
        self._versions[pfn] += 1
        self.fingerprints.note_mutation(pfn)

    def copy(self, src: int, dst: int) -> None:
        """Copy the full page content of ``src`` into ``dst``.

        On the columnar store this moves no bytes at all: ``dst`` simply
        retains ``src``'s content id.
        """
        self.check_pfn(src)
        self.check_pfn(dst)
        if self.sanitizer is not None:
            self.sanitizer.on_read(src)
            self.sanitizer.on_write(dst)
        self._backing.copy(src, dst)
        self._versions[dst] += 1
        self.fingerprints.note_mutation(dst)

    def corrupt_bit(self, pfn: int, byte_offset: int, bit: int) -> None:
        """Flip one bit of frame ``pfn`` in place (Rowhammer).

        This bypasses permissions, refcounts and copy-on-write — which
        is exactly why Flip Feng Shui works against page fusion.
        """
        self.check_pfn(pfn)
        # Rowhammer also bypasses the sanitizer's UAF/CoW checks on
        # purpose: a flip landing in a shared or freed frame is the
        # physical phenomenon under study, not a simulator bug.  On the
        # columnar store the flip re-interns: the frame moves to the
        # flipped payload's id, other holders of the old id are
        # untouched (a flip is per *frame*, not per content).
        backing = self._backing
        backing.set(pfn, flip_bit(backing.get(pfn), byte_offset, bit))
        # Rowhammer bypasses permissions and copy-on-write, but not the
        # fingerprint cache: a flipped frame must never keep its stale
        # digest (``_versions`` stays untouched on purpose — see below).
        self.fingerprints.note_mutation(pfn)

    def version(self, pfn: int) -> int:
        """Recharge epoch of frame ``pfn``.

        Bumped by CPU stores (:meth:`write`/:meth:`copy`) but *not* by
        :meth:`corrupt_bit`: a Rowhammer-discharged cell stays
        discharged until the frame is rewritten.
        """
        self.check_pfn(pfn)
        return self._versions[pfn]

    def contents_snapshot(self) -> list[PageContent]:
        """All frame contents by pfn (diagnostics/differential tests)."""
        return self._backing.snapshot()

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def merge_key(self, pfn: int) -> object:
        """A hashable key equal iff two frames hold equal content.

        Columnar store: the integer content id (one dict probe groups a
        merge candidate in O(1) regardless of payload size).  Legacy
        store: the content bytes themselves.  Either way, bucketing by
        merge key partitions frames exactly like bucketing by content —
        in the same encounter order — so engines grouping candidates
        behave identically on both backends.  Counts as a content read
        for the sanitizer (use-after-free checks fire exactly as for
        :meth:`read`).
        """
        self.check_pfn(pfn)
        if self.sanitizer is not None:
            self.sanitizer.on_read(pfn)
        return self._backing.merge_key(pfn)

    def content_id(self, pfn: int) -> int | None:
        """The arena content id of ``pfn`` (None on the legacy store)."""
        self.check_pfn(pfn)
        if self.arena is None:
            return None
        return self._backing.content_id(pfn)

    def same_content(self, pfn: int, content: PageContent) -> bool:
        """Whether frame ``pfn`` currently holds exactly ``content``.

        The supported way for engines to re-validate a match (simlint's
        MEM002 flags raw ``read(pfn) == content`` comparisons in fusion
        hot paths).  On the columnar store interned payloads make the
        common case an object-identity check.
        """
        self.check_pfn(pfn)
        if self.sanitizer is not None:
            self.sanitizer.on_read(pfn)
        stored = self._backing.get(pfn)
        return stored is content or stored == content

    # ------------------------------------------------------------------
    # Content fingerprints
    # ------------------------------------------------------------------
    def digest(self, pfn: int) -> int:
        """64-bit content digest of ``pfn``, cached until invalidated.

        Always equals ``content_digest(read(pfn))``; with fingerprints
        disabled the hash is simply recomputed on every call.
        """
        self.check_pfn(pfn)
        return self.fingerprints.digest(pfn)

    def digests_many(self, pfns: list[int]) -> list[int]:
        """Digests for many frames in one pass.

        Behaviourally ``[digest(pfn) for pfn in pfns]``; on the
        columnar store duplicate content ids in the batch collapse to
        a single cache probe each (and under the batch scan kernel the
        column indexing itself is vectorized), with hit/miss stats
        matching the per-frame path exactly either way.
        """
        return self.scan_kernel.digest_sweep(pfns)

    def digest_table(self, pfns) -> list[tuple[int, int, int]]:
        """``(digest, canonical pfn, holders)`` rows for a shard export.

        Duplicate digests among ``pfns`` collapse to their minimal pfn
        with mapper counts (refcounts) summed — exactly the canonical
        form :meth:`repro.mem.shard.ShardContentTable.build` would
        produce, computed here in one :meth:`digests_many` sweep so the
        batch scan kernel vectorizes the digest pass.
        """
        ordered = sorted(set(pfns))
        rows: dict[int, tuple[int, int]] = {}
        for pfn, digest in zip(ordered, self.digests_many(ordered)):
            if digest in rows:
                prev_pfn, holders = rows[digest]
                rows[digest] = (prev_pfn, holders + self._refcount[pfn])
            else:
                rows[digest] = (pfn, self._refcount[pfn])
        return [(digest, pfn, holders)
                for digest, (pfn, holders) in sorted(rows.items())]

    def generation(self, pfn: int) -> int:
        """Mutation generation of ``pfn``.

        Unlike :meth:`version`, this is bumped by **every** mutation
        including :meth:`corrupt_bit` — engines use it to prove "page
        unchanged since last pass", and a Rowhammer flip is a change.
        """
        self.check_pfn(pfn)
        return self.fingerprints.generation(pfn)

    @property
    def mutation_epoch(self) -> int:
        """Global counter of frame mutations (any frame, any cause)."""
        return self.fingerprints.mutation_epoch

    def register_dirty_view(self, name: str) -> DirtyFrameView:
        """Register a drainable view of frames mutated from now on."""
        return self.fingerprints.register_view(name)

    # ------------------------------------------------------------------
    # Reference counting
    # ------------------------------------------------------------------
    def refcount(self, pfn: int) -> int:
        self.check_pfn(pfn)
        return self._refcount[pfn]

    def get_ref(self, pfn: int) -> None:
        """Increment the reference count of ``pfn``."""
        self.check_pfn(pfn)
        self._refcount[pfn] += 1

    def put_ref(self, pfn: int) -> int:
        """Decrement the reference count and return the new value."""
        self.check_pfn(pfn)
        if self._refcount[pfn] <= 0:
            raise InvalidFrameError(f"refcount underflow on pfn {pfn}")
        self._refcount[pfn] -= 1
        return self._refcount[pfn]

    # ------------------------------------------------------------------
    # Frame type bookkeeping (Table 3)
    # ------------------------------------------------------------------
    def frame_type(self, pfn: int) -> FrameType:
        self.check_pfn(pfn)
        return self._types[pfn]

    def set_frame_type(self, pfn: int, frame_type: FrameType) -> None:
        self.check_pfn(pfn)
        previous = self._types[pfn]
        if previous is frame_type:
            return
        self._types[pfn] = frame_type
        self._type_counts[previous] -= 1
        self._type_counts[frame_type] += 1
        if previous is FrameType.FREE:
            self._in_use += 1
        elif frame_type is FrameType.FREE:
            self._in_use -= 1

    # ------------------------------------------------------------------
    # Fusion pinning (stable-tree membership)
    # ------------------------------------------------------------------
    def pin_fused(self, pfn: int) -> None:
        self.check_pfn(pfn)
        self._fusion_pinned.add(pfn)

    def unpin_fused(self, pfn: int) -> None:
        self._fusion_pinned.discard(pfn)

    def is_fused(self, pfn: int) -> bool:
        return pfn in self._fusion_pinned

    # ------------------------------------------------------------------
    # Reverse map
    # ------------------------------------------------------------------
    def rmap_add(self, pfn: int, pid: int, vaddr: int) -> None:
        """Record that process ``pid`` maps ``pfn`` at ``vaddr``."""
        self.check_pfn(pfn)
        entries = self._rmap.get(pfn)
        if entries is None:
            self._rmap[pfn] = {(pid, vaddr)}
            self._mapped_cache = None
        else:
            entries.add((pid, vaddr))

    def rmap_remove(self, pfn: int, pid: int, vaddr: int) -> None:
        entries = self._rmap.get(pfn)
        if not entries or (pid, vaddr) not in entries:
            raise InvalidFrameError(
                f"rmap entry ({pid}, {vaddr:#x}) missing for pfn {pfn}"
            )
        entries.remove((pid, vaddr))
        if not entries:
            del self._rmap[pfn]
            self._mapped_cache = None

    def rmap(self, pfn: int) -> frozenset[tuple[int, int]]:
        """Return the set of ``(pid, vaddr)`` mappings of ``pfn``."""
        self.check_pfn(pfn)
        return frozenset(self._rmap.get(pfn, ()))

    def mapped_frames(self) -> Iterator[int]:
        """Iterate over frames with at least one virtual mapping.

        Sorted ascending.  Columnar store: the sorted snapshot is
        cached and only rebuilt after a frame gains its first or loses
        its last mapping, so steady-state calls are O(1) + iteration.
        Legacy store: the historical per-call re-sort, preserved so the
        end-to-end gate compares the old cost model faithfully.
        """
        if self._backing.arena is None:
            return iter(sorted(self._rmap))
        cached = self._mapped_cache
        if cached is None:
            cached = tuple(sorted(self._rmap))
            self._mapped_cache = cached
        return iter(cached)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    # The counters are maintained for both backends, but the legacy
    # accessors recount per call — that O(num_frames)-per-sample cost
    # *is* the pre-columnar behaviour the legacy store exists to
    # preserve (and ``tests/test_store_accounting.py`` proves counter
    # and recount never disagree).

    def frames_in_use(self) -> int:
        """Number of frames not currently free (columnar: O(1))."""
        if self._backing.arena is None:
            free = FrameType.FREE
            return sum(1 for t in self._types if t is not free)
        return self._in_use

    def type_histogram(self) -> dict[FrameType, int]:
        """Frame counts per :class:`FrameType` (columnar: O(#types))."""
        if self._backing.arena is None:
            histogram = {frame_type: 0 for frame_type in FrameType}
            for frame_type in self._types:
                histogram[frame_type] += 1
            return histogram
        return dict(self._type_counts)
