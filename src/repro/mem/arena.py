"""Hash-consed content arena: one canonical copy per unique page payload.

Content identity — not content bytes — is the primitive every dedup
mechanism (and attack) actually operates on, so the columnar frame
store deduplicates its own ground truth the same way the engines it
simulates deduplicate guest memory.  The arena interns every
:class:`~repro.mem.content.PageContent` payload into a small integer
**content id** (cid):

* equal payloads always share one cid, so frame-content equality is an
  integer comparison (and ``bytes`` equality between two interned
  payloads short-circuits on object identity);
* cids are reference counted; a frame holds exactly one reference on
  its current cid, and an entry is recycled the moment the last holder
  releases it;
* the 64-bit content digest is computed at most once per *unique*
  payload.  Digests are content-addressed: mutating a frame swaps its
  cid, it never edits a payload in place, so a cached digest can never
  go stale — the property that lets the columnar store drop the
  per-frame invalidation bookkeeping of the legacy fingerprint cache.

Invariants (cross-checked by FrameSan's end-of-run audit and the
property tests in ``tests/test_content_arena.py``):

* ``_ids[payload] == cid`` iff ``_payloads[cid] is payload`` and
  ``_refcount[cid] > 0``;
* the refcount of a live cid equals the number of frames currently
  holding it (plus the arena's own permanent reference for
  :data:`ZERO_ID`);
* a recycled slot holds no payload and no digest.

Only ``repro.mem`` may call the underscore mutators (``_intern`` /
``_retain`` / ``_release``); simlint's MEM001 enforces this the same
way it protects ``PhysicalMemory._contents``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.content import PageContent, ZERO_PAGE, content_digest

#: The cid of the canonical all-zero page; permanently live.
ZERO_ID = 0


@dataclass
class ArenaStats:
    """Counters for the content arena."""

    #: ``_intern()`` calls answered by an existing entry.
    intern_hits: int = 0
    #: ``_intern()`` calls that created a new entry.
    intern_misses: int = 0
    #: Entries whose last reference was dropped (slot recycled).
    entries_freed: int = 0
    #: Digests computed (at most once per live unique payload).
    digests_computed: int = 0
    #: High-water mark of simultaneously live unique payloads.
    peak_unique: int = 1

    def as_dict(self) -> dict[str, int]:
        return {
            "intern_hits": self.intern_hits,
            "intern_misses": self.intern_misses,
            "entries_freed": self.entries_freed,
            "digests_computed": self.digests_computed,
            "peak_unique": self.peak_unique,
        }


class ContentArena:
    """Refcounted intern table mapping payloads to content ids."""

    __slots__ = ("_ids", "_payloads", "_refcount", "_digest_cache",
                 "_free_ids", "stats")

    #: Mirror of :data:`ZERO_ID` reachable through an instance, so
    #: consumers that must not import repro.mem at runtime (FrameSan —
    #: LAY001 keeps repro.check a leaf) can still name the zero id.
    zero_id = ZERO_ID

    def __init__(self) -> None:
        self._ids: dict[PageContent, int] = {ZERO_PAGE: ZERO_ID}
        self._payloads: list[PageContent | None] = [ZERO_PAGE]
        # Slot ZERO_ID carries one permanent self-reference so the zero
        # page is never recycled (every frame starts out holding it).
        self._refcount: list[int] = [1]
        self._digest_cache: list[int | None] = [None]
        self._free_ids: list[int] = []
        self.stats = ArenaStats()

    # ------------------------------------------------------------------
    # Mutators — repro.mem only (MEM001)
    # ------------------------------------------------------------------
    def _intern(self, content: PageContent) -> int:
        """Return the cid for ``content``, holding one new reference."""
        cid = self._ids.get(content)
        if cid is not None:
            self._refcount[cid] += 1
            self.stats.intern_hits += 1
            return cid
        self.stats.intern_misses += 1
        if self._free_ids:
            cid = self._free_ids.pop()
            self._payloads[cid] = content
            self._refcount[cid] = 1
            self._digest_cache[cid] = None
        else:
            cid = len(self._payloads)
            self._payloads.append(content)
            self._refcount.append(1)
            self._digest_cache.append(None)
        self._ids[content] = cid
        unique = len(self._ids)
        if unique > self.stats.peak_unique:
            self.stats.peak_unique = unique
        return cid

    def _retain(self, cid: int, count: int = 1) -> None:
        """Take ``count`` extra references on a live cid."""
        if self._refcount[cid] <= 0:
            raise ValueError(f"retain of dead content id {cid}")
        self._refcount[cid] += count

    def _release(self, cid: int) -> None:
        """Drop one reference; recycles the slot at zero."""
        refs = self._refcount[cid] - 1
        if refs < 0:
            raise ValueError(f"refcount underflow on content id {cid}")
        self._refcount[cid] = refs
        if refs == 0:
            payload = self._payloads[cid]
            del self._ids[payload]
            self._payloads[cid] = None
            self._digest_cache[cid] = None
            self._free_ids.append(cid)
            self.stats.entries_freed += 1

    # ------------------------------------------------------------------
    # Read-only queries
    # ------------------------------------------------------------------
    def payload(self, cid: int) -> PageContent:
        """The canonical payload behind a live cid."""
        payload = self._payloads[cid]
        if payload is None:
            raise ValueError(f"content id {cid} is not live")
        return payload

    def refcount(self, cid: int) -> int:
        """Current reference count of ``cid`` (0 for recycled slots)."""
        return self._refcount[cid]

    def digest(self, cid: int) -> int:
        """64-bit digest of ``cid``'s payload, computed once per entry.

        Safe to cache unconditionally: payloads are immutable and the
        slot's digest is cleared when the slot is recycled.
        """
        cached = self._digest_cache[cid]
        if cached is not None:
            return cached
        value = content_digest(self.payload(cid))
        self._digest_cache[cid] = value
        self.stats.digests_computed += 1
        return value

    def peek_digest(self, cid: int) -> int | None:
        """The cached digest of ``cid``, or None if never computed."""
        return self._digest_cache[cid]

    def lookup(self, content: PageContent) -> int | None:
        """The cid currently interning ``content``, without retaining."""
        return self._ids.get(content)

    def unique_contents(self) -> int:
        """Number of distinct payloads currently live."""
        return len(self._ids)

    def live_ids(self) -> list[int]:
        """All live cids, ascending (diagnostics and audits)."""
        return sorted(self._ids.values())

    def cid_table(self) -> list[tuple[int, int, int]]:
        """``(digest, cid, refcount)`` export of every live content.

        Digest-sorted like a shard export table; the global ledger
        audit cross-checks each shard's advertised holder counts
        against this ground truth.
        """
        return sorted(
            (self.digest(cid), cid, self._refcount[cid])
            for cid in self._ids.values()
        )

    def __len__(self) -> int:
        return len(self._ids)
