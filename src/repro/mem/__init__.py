"""Physical-memory substrate: page contents, frames and the buddy allocator."""

from repro.mem.arena import ContentArena, ZERO_ID
from repro.mem.buddy import BuddyAllocator
from repro.mem.content import (
    PageContent,
    ZERO_PAGE,
    content_digest,
    flip_bit,
    make_content,
    random_content,
)
from repro.mem.physmem import FRAME_STORES, FrameType, PhysicalMemory
from repro.mem.scankernel import (
    BatchScanKernel,
    HAVE_NUMPY,
    SCAN_KERNELS,
    ScalarScanKernel,
)

__all__ = [
    "BatchScanKernel",
    "BuddyAllocator",
    "ContentArena",
    "FRAME_STORES",
    "FrameType",
    "HAVE_NUMPY",
    "PageContent",
    "PhysicalMemory",
    "SCAN_KERNELS",
    "ScalarScanKernel",
    "ZERO_ID",
    "ZERO_PAGE",
    "content_digest",
    "flip_bit",
    "make_content",
    "random_content",
]
