"""Physical-memory substrate: page contents, frames and the buddy allocator."""

from repro.mem.buddy import BuddyAllocator
from repro.mem.content import (
    PageContent,
    ZERO_PAGE,
    content_digest,
    flip_bit,
    make_content,
    random_content,
)
from repro.mem.physmem import FrameType, PhysicalMemory

__all__ = [
    "BuddyAllocator",
    "FrameType",
    "PageContent",
    "PhysicalMemory",
    "ZERO_PAGE",
    "content_digest",
    "flip_bit",
    "make_content",
    "random_content",
]
