"""Binary buddy allocator with deliberately predictable reuse.

Like Linux's page allocator, free blocks are kept in per-order LIFO
free lists, so the frame freed most recently is the first one handed
back out.  The paper's Flip Feng Shui analysis hinges on exactly this
predictability ("efficient physical memory allocators often promote
predictable reuse"); the simulator preserves it so the attacks have the
same substrate to exploit, and VUsion's randomized pool is layered *on
top of* this allocator rather than replacing it.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvalidFrameError, OutOfMemoryError

#: Largest block order managed (2**10 pages = 4 MiB blocks, as in Linux).
MAX_ORDER = 10


class BuddyAllocator:
    """Buddy allocator over the frame range ``[start, start + count)``.

    Orders run from 0 (one frame) to :data:`MAX_ORDER`.  Blocks are
    identified by their head frame number; alignment is with respect to
    absolute frame numbers, as on real hardware.
    """

    def __init__(self, start: int, count: int) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.start = start
        self.end = start + count
        self._free_lists: list[list[int]] = [[] for _ in range(MAX_ORDER + 1)]
        #: head pfn -> order, for every free block.
        self._free_blocks: dict[int, int] = {}
        #: Free-frame total, maintained by the free-list primitives so
        #: :meth:`free_frames` is O(1) (it used to walk every order's
        #: list — a per-sample cost on large machines).
        self._free_frames = 0
        self.alloc_count = 0
        self.free_count = 0
        #: Optional FrameSan hooks (set by the kernel under
        #: ``REPRO_SANITIZE=1``): every alloc/free below reports its
        #: frames so freed blocks are poisoned and bad frees fault.
        self.sanitizer = None
        self._seed_free_blocks()

    def _seed_free_blocks(self) -> None:
        """Decompose the managed range into maximal aligned free blocks."""
        pfn = self.start
        while pfn < self.end:
            order = MAX_ORDER
            while order > 0 and (pfn % (1 << order) != 0 or pfn + (1 << order) > self.end):
                order -= 1
            self._insert_free(pfn, order)
            pfn += 1 << order

    # ------------------------------------------------------------------
    # Free-list primitives
    # ------------------------------------------------------------------
    def _insert_free(self, pfn: int, order: int) -> None:
        self._free_lists[order].append(pfn)
        self._free_blocks[pfn] = order
        self._free_frames += 1 << order

    def _remove_free(self, pfn: int, order: int) -> None:
        self._free_lists[order].remove(pfn)
        del self._free_blocks[pfn]
        self._free_frames -= 1 << order

    def _pop_free(self, order: int) -> int:
        pfn = self._free_lists[order].pop()
        del self._free_blocks[pfn]
        self._free_frames -= 1 << order
        return pfn

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, order: int = 0) -> int:
        """Allocate a block of ``2**order`` frames; return its head pfn.

        Splits the smallest available larger block if needed; the upper
        buddy of each split is returned to the free list, so the lower
        half is handed out — matching Linux's ``expand()``.
        """
        if not 0 <= order <= MAX_ORDER:
            raise ValueError(f"order {order} outside [0, {MAX_ORDER}]")
        current = order
        while current <= MAX_ORDER and not self._free_lists[current]:
            current += 1
        if current > MAX_ORDER:
            raise OutOfMemoryError(f"no free block of order {order}")
        pfn = self._pop_free(current)
        while current > order:
            current -= 1
            self._insert_free(pfn + (1 << current), current)
        self.alloc_count += 1
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(pfn, 1 << order, "buddy")
        return pfn

    def alloc_specific(self, pfn: int) -> int:
        """Claim one specific free frame (WPF's page-stealing allocator).

        The containing free block is split until ``pfn`` is an order-0
        block, which is then removed.  Raises
        :class:`InvalidFrameError` if the frame is not free.
        """
        found = self._block_containing(pfn)
        if found is None:
            raise InvalidFrameError(f"pfn {pfn} is not free")
        head, order = found
        self._remove_free(head, order)
        while order > 0:
            order -= 1
            half = 1 << order
            if pfn < head + half:
                self._insert_free(head + half, order)
            else:
                self._insert_free(head, order)
                head += half
        self.alloc_count += 1
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(pfn, 1, "buddy")
        return pfn

    # ------------------------------------------------------------------
    # Freeing
    # ------------------------------------------------------------------
    def free(self, pfn: int, order: int = 0) -> None:
        """Free the block of ``2**order`` frames headed by ``pfn``.

        Coalesces with the buddy block whenever the buddy is free, the
        same order, and fully inside the managed range.
        """
        if not 0 <= order <= MAX_ORDER:
            raise ValueError(f"order {order} outside [0, {MAX_ORDER}]")
        if pfn % (1 << order) != 0:
            raise InvalidFrameError(f"pfn {pfn} misaligned for order {order}")
        if pfn < self.start or pfn + (1 << order) > self.end:
            raise InvalidFrameError(f"block {pfn}+{1 << order} outside managed range")
        if self._overlaps_free(pfn, order):
            raise InvalidFrameError(f"double free of pfn {pfn} (order {order})")
        if self.sanitizer is not None:
            self.sanitizer.on_free(pfn, 1 << order, "buddy")
        while order < MAX_ORDER:
            buddy = pfn ^ (1 << order)
            if (
                self._free_blocks.get(buddy) != order
                or buddy < self.start
                or buddy + (1 << order) > self.end
            ):
                break
            self._remove_free(buddy, order)
            pfn = min(pfn, buddy)
            order += 1
        self._insert_free(pfn, order)
        self.free_count += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _block_containing(self, pfn: int) -> tuple[int, int] | None:
        """Return ``(head, order)`` of the free block containing ``pfn``."""
        if not self.start <= pfn < self.end:
            return None
        for order in range(MAX_ORDER + 1):
            head = pfn & ~((1 << order) - 1)
            if self._free_blocks.get(head) == order:
                return head, order
        return None

    def _overlaps_free(self, pfn: int, order: int) -> bool:
        """True if any frame of the block ``pfn``/``order`` is already free."""
        if self._block_containing(pfn) is not None:
            return True
        for head_order in range(order):
            step = 1 << head_order
            for head in range(pfn, pfn + (1 << order), step):
                if self._free_blocks.get(head) == head_order:
                    return True
        return False

    def is_free(self, pfn: int) -> bool:
        """True if frame ``pfn`` is currently free."""
        return self._block_containing(pfn) is not None

    def free_frames(self) -> int:
        """Total number of free frames (O(1), counter-backed)."""
        return self._free_frames

    def iter_free_frames_desc(self) -> Iterator[int]:
        """Yield free frames from the top of memory downward.

        This is the scan order of WPF's ``MiAllocatePagesForMdl``-style
        linear allocator.
        """
        heads = sorted(self._free_blocks.items(), reverse=True)
        for head, order in heads:
            for pfn in range(head + (1 << order) - 1, head - 1, -1):
                yield pfn

    def iter_free_frames_asc(self) -> Iterator[int]:
        """Yield free frames from the bottom of memory upward."""
        heads = sorted(self._free_blocks.items())
        for head, order in heads:
            yield from range(head, head + (1 << order))

    def free_list_snapshot(self) -> dict[int, tuple[int, ...]]:
        """Expose the free lists (for invariant tests), order -> heads."""
        return {order: tuple(lst) for order, lst in enumerate(self._free_lists)}
