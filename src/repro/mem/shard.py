"""NUMA-style shard topology and the deterministic content-id exchange.

One big scenario is partitioned into ``shards`` NUMA-node-style shards:
each shard owns a contiguous range of the global frame space and a
round-robin slice of the VM plan, and runs its local scan passes with
the existing batch scan kernel, fully independently.  Once per scan
round every shard exports a compact :class:`ShardContentTable` — the
``(digest, canonical pfn, holders)`` rows its fusion engine is willing
to advertise cross-shard — and :func:`resolve_exchange` folds the
tables of one round into :class:`MergeIntent` messages.

Determinism contract (the scenario-level ``-j1 == -jN``): the resolver
is a pure function of the admitted tables.  Cross-shard duplicates
elect their canonical holder by **minimal (shard, pfn)**, intents are
emitted in sorted ``(source shard, source pfn, target shard, target
pfn)`` order, and stale tables (an older generation than the ledger has
already admitted for that shard) are dropped *before* resolution — so
any worker count, interleaving or retry history produces bit-identical
exchange outcomes.  :func:`verify_exchange` is an independent
re-derivation used by the differential suite and the global ledger
audit; the seeded mutants it must catch live behind the test-only
``_mutant`` hook of :func:`resolve_exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: Simulated interconnect service per exported table row (digest +
#: canonical pfn + holder count over the node fabric).  Charged to the
#: ``shardx`` daemon account off the critical path.
EXCHANGE_ENTRY_NS = 120
#: Simulated coordinator service per resolved merge intent.
RESOLVE_INTENT_NS = 400


class ShardExchangeError(ReproError):
    """A shard exchange violated the determinism/audit contract."""


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardMap:
    """Static partition of one machine into NUMA-node-style shards.

    Frames are split into ``shards`` equal contiguous ranges; VMs are
    dealt round-robin by plan index.  Both assignments are pure
    functions of the topology, so every worker derives the identical
    partition from the spec alone.
    """

    shards: int
    frames: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.frames < 1 or self.frames % self.shards != 0:
            raise ValueError(
                f"frames ({self.frames}) must divide evenly into "
                f"{self.shards} shard(s)"
            )

    @property
    def frames_per_shard(self) -> int:
        return self.frames // self.shards

    def shard_of_frame(self, pfn: int) -> int:
        """Owning shard of a *global* frame number."""
        if not 0 <= pfn < self.frames:
            raise ValueError(f"pfn {pfn} outside machine of {self.frames}")
        return pfn // self.frames_per_shard

    def shard_of_vm(self, plan_index: int) -> int:
        """Owning shard of a VM by its plan index (round-robin deal)."""
        return plan_index % self.shards

    def global_pfn(self, shard: int, local_pfn: int) -> int:
        """Translate a shard-local pfn into the global frame space."""
        self._check_shard(shard)
        if not 0 <= local_pfn < self.frames_per_shard:
            raise ValueError(f"local pfn {local_pfn} outside shard range")
        return shard * self.frames_per_shard + local_pfn

    def local_pfn(self, pfn: int) -> tuple[int, int]:
        """Translate a global pfn into ``(shard, local pfn)``."""
        shard = self.shard_of_frame(pfn)
        return shard, pfn - shard * self.frames_per_shard

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")


# ---------------------------------------------------------------------------
# Export tables
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardExportEntry:
    """One advertised content: digest, canonical local pfn, holders."""

    digest: int
    pfn: int
    holders: int


@dataclass(frozen=True)
class ShardContentTable:
    """One shard's compact export for one exchange round."""

    shard: int
    round_no: int
    #: Monotonic per-shard freshness token (the shard clock at export).
    generation: int
    entries: tuple[ShardExportEntry, ...]

    @classmethod
    def build(cls, shard: int, round_no: int, generation: int,
              rows) -> "ShardContentTable":
        """Normalize raw ``(digest, pfn, holders)`` rows into a table.

        Duplicate digests collapse to their minimal pfn with holder
        counts summed; entries come out digest-sorted, so the table is
        canonical no matter what order the engine walked its frames.
        """
        merged: dict[int, tuple[int, int]] = {}
        for digest, pfn, holders in rows:
            if digest in merged:
                prev_pfn, prev_holders = merged[digest]
                merged[digest] = (min(prev_pfn, pfn), prev_holders + holders)
            else:
                merged[digest] = (pfn, holders)
        entries = tuple(
            ShardExportEntry(digest=digest, pfn=pfn, holders=holders)
            for digest, (pfn, holders) in sorted(merged.items())
        )
        return cls(shard=shard, round_no=round_no, generation=generation,
                   entries=entries)


# ---------------------------------------------------------------------------
# Exchange resolution
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MergeIntent:
    """One cross-shard merge message: fold target into source.

    ``source`` is the canonical holder (minimal ``(shard, pfn)`` among
    all shards advertising the digest); the target shard is asked to
    drop its local canonical copy in favour of a remote mapping.
    """

    digest: int
    source_shard: int
    source_pfn: int
    target_shard: int
    target_pfn: int
    holders: int

    @property
    def order_key(self) -> tuple[int, int, int, int]:
        return (self.source_shard, self.source_pfn,
                self.target_shard, self.target_pfn)


@dataclass(frozen=True)
class ExchangeOutcome:
    """Deterministic result of resolving one round's tables."""

    round_no: int
    intents: tuple[MergeIntent, ...]
    #: Total content ids shipped over the interconnect this round.
    exchanged_cids: int
    #: Frames the fabric could reclaim if every intent were applied:
    #: one per non-canonical shard per cross-shard digest.
    remote_saved_frames: int
    #: Entries dropped because their table was stale (old generation).
    stale_entries_dropped: int

    @property
    def applied(self) -> int:
        return len(self.intents)

    def charge_ns(self) -> int:
        """Simulated coordinator service for this round's resolution."""
        return RESOLVE_INTENT_NS * len(self.intents)


def _admit(tables, min_generations) -> tuple[list[ShardContentTable], int]:
    """Filter one round's tables: freshest per shard, no stale posts."""
    freshest: dict[int, ShardContentTable] = {}
    stale = 0
    for table in tables:
        floor = (min_generations or {}).get(table.shard, 0)
        if table.generation < floor:
            stale += len(table.entries)
            continue
        kept = freshest.get(table.shard)
        if kept is None or table.generation > kept.generation:
            if kept is not None:
                stale += len(kept.entries)
            freshest[table.shard] = table
        else:
            stale += len(table.entries)
    admitted = [freshest[shard] for shard in sorted(freshest)]
    return admitted, stale


def resolve_exchange(tables, *, round_no: int,
                     min_generations: dict[int, int] | None = None,
                     _mutant: str | None = None) -> ExchangeOutcome:
    """Resolve one round of shard exports into merge intents.

    Pure in the (admitted) tables: any permutation of ``tables`` yields
    the same outcome.  ``min_generations`` is the ledger's staleness
    floor per shard.  ``_mutant`` is the meta-test hook — it seeds the
    defects (dropped intent, wrong tiebreak, stale admission) that
    :func:`verify_exchange` must catch; production callers never pass
    it.
    """
    if _mutant == "stale":
        min_generations = None  # seeded defect: admit stale tables
    admitted, stale = _admit(tables, min_generations)
    exchanged = sum(len(table.entries) for table in admitted)
    by_digest: dict[int, list[tuple[int, int, int]]] = {}
    for table in admitted:
        for entry in table.entries:
            by_digest.setdefault(entry.digest, []).append(
                (table.shard, entry.pfn, entry.holders)
            )
    intents: list[MergeIntent] = []
    remote_saved = 0
    for digest in sorted(by_digest):
        holders = sorted(by_digest[digest])
        if len(holders) < 2:
            continue
        if _mutant == "tiebreak":
            holders = holders[::-1]  # seeded defect: max-(shard, pfn) wins
        src_shard, src_pfn, _ = holders[0]
        remote_saved += len(holders) - 1
        for tgt_shard, tgt_pfn, tgt_holders in holders[1:]:
            intents.append(MergeIntent(
                digest=digest, source_shard=src_shard, source_pfn=src_pfn,
                target_shard=tgt_shard, target_pfn=tgt_pfn,
                holders=tgt_holders,
            ))
    intents.sort(key=lambda intent: intent.order_key)
    if _mutant == "drop-intent" and intents:
        intents = intents[:-1]  # seeded defect: lost interconnect message
    return ExchangeOutcome(
        round_no=round_no, intents=tuple(intents), exchanged_cids=exchanged,
        remote_saved_frames=remote_saved, stale_entries_dropped=stale,
    )


def verify_exchange(tables, outcome: ExchangeOutcome, *,
                    min_generations: dict[int, int] | None = None) -> None:
    """Independently re-derive the exchange and cross-check ``outcome``.

    This is the global ledger audit: a second, structurally different
    derivation (per-pair scan instead of group-by-digest) that must
    agree field for field.  Raises :class:`ShardExchangeError` on any
    divergence — including every seeded mutant of the resolver.
    """
    admitted, stale = _admit(tables, min_generations)
    if outcome.stale_entries_dropped != stale:
        raise ShardExchangeError(
            f"exchange round {outcome.round_no}: resolver admitted "
            f"{outcome.stale_entries_dropped} stale entries, audit "
            f"expected {stale}"
        )
    exchanged = sum(len(table.entries) for table in admitted)
    if outcome.exchanged_cids != exchanged:
        raise ShardExchangeError(
            f"exchange round {outcome.round_no}: exchanged_cids "
            f"{outcome.exchanged_cids} != audited {exchanged}"
        )
    # Reference derivation: flat (shard, pfn)-sorted holder list per
    # digest, canonical = first element after the sort.
    flat = sorted(
        (entry.digest, table.shard, entry.pfn, entry.holders)
        for table in admitted for entry in table.entries
    )
    expected: list[MergeIntent] = []
    saved = 0
    index = 0
    while index < len(flat):
        digest = flat[index][0]
        group = [row for row in flat if row[0] == digest]
        index += len(group)
        if len(group) < 2:
            continue
        _, src_shard, src_pfn, _ = group[0]
        saved += len(group) - 1
        for _, tgt_shard, tgt_pfn, tgt_holders in group[1:]:
            expected.append(MergeIntent(
                digest=digest, source_shard=src_shard, source_pfn=src_pfn,
                target_shard=tgt_shard, target_pfn=tgt_pfn,
                holders=tgt_holders,
            ))
    expected.sort(key=lambda intent: intent.order_key)
    if list(outcome.intents) != expected:
        raise ShardExchangeError(
            f"exchange round {outcome.round_no}: intent stream diverges "
            f"from the (shard, pfn)-ordered reference "
            f"({len(outcome.intents)} vs {len(expected)} intents)"
        )
    if outcome.remote_saved_frames != saved:
        raise ShardExchangeError(
            f"exchange round {outcome.round_no}: remote_saved_frames "
            f"{outcome.remote_saved_frames} != audited {saved}"
        )


# ---------------------------------------------------------------------------
# Cross-round ledger
# ---------------------------------------------------------------------------
@dataclass
class RemoteShareLedger:
    """Coordinator-side memory of what the fabric has admitted.

    Tracks, per shard, the highest export generation admitted so far
    (the staleness floor for the next round) and, per digest, the
    current canonical owner.  A re-posted table from a crashed-and-
    retried worker therefore can never roll an exchange backwards.
    """

    _generations: dict[int, int] = field(default_factory=dict)
    _owners: dict[int, tuple[int, int]] = field(default_factory=dict)

    def generations(self) -> dict[int, int]:
        """Snapshot of the per-shard staleness floors."""
        return dict(self._generations)

    def owner(self, digest: int) -> tuple[int, int] | None:
        """Current canonical ``(shard, pfn)`` owner of a digest."""
        return self._owners.get(digest)

    def owners(self) -> dict[int, tuple[int, int]]:
        return dict(self._owners)

    def resolve_round(self, tables, *, round_no: int) -> ExchangeOutcome:
        """Resolve one round against the ledger and record it."""
        floors = self.generations()
        outcome = resolve_exchange(tables, round_no=round_no,
                                   min_generations=floors)
        verify_exchange(tables, outcome, min_generations=floors)
        admitted, _ = _admit(tables, floors)
        for table in admitted:
            previous = self._generations.get(table.shard, 0)
            self._generations[table.shard] = max(previous, table.generation)
        for intent in outcome.intents:
            self._owners[intent.digest] = (intent.source_shard,
                                           intent.source_pfn)
        return outcome
