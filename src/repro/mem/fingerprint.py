"""Incremental content fingerprints for physical frames.

Every fusion engine repeatedly hashes page contents: KSM checksums each
candidate on each pass, WPF re-sorts its candidate list by digest.  At
simulation scale that blake2b work is the hottest loop in the whole
system.  This module serves one 64-bit digest per frame from a cache
whose layout depends on the frame-store backend:

* **legacy** store: one cached digest per *frame*, invalidated through
  a write barrier in :class:`~repro.mem.physmem.PhysicalMemory` —
  including Rowhammer's ``corrupt_bit``, which bypasses permissions but
  **not** the cache (a stale digest would make a corrupted frame merge
  as if it still held its old contents, silently breaking the attacks
  the simulator exists to reproduce);
* **columnar** store: one cached digest per *unique content* in the
  :class:`~repro.mem.arena.ContentArena`.  Arena digests are
  content-addressed — a mutation swaps the frame's content id rather
  than editing a payload — so they can never go stale and need no
  invalidation at all.  ``digest(pfn)`` costs one blake2b per unique
  payload instead of one per frame.

Two things must never change whichever backend serves the digest:

* **Simulated time.**  Engines keep charging ``costs.checksum_page``
  (and every other cost) exactly as before; the cache only removes the
  *Python* work of recomputing the hash.  Fig. 5/6 latency
  distributions are byte-identical with the cache on or off and with
  either store.
* **Behaviour.**  ``digest(pfn)`` always equals
  ``content_digest(read(pfn))``; the differential hypothesis suites
  (``tests/test_fingerprint_differential.py`` and
  ``tests/test_store_differential.py``) check this under random
  interleavings of writes, bit flips, merges and unmerges.

With fingerprints *disabled* the hash is recomputed on every call in
both backends — the disabled configuration stays a true no-cache
baseline (the scan-throughput perf gate measures against it).

On top of the digest cache sit two cheap change detectors engines use
to skip *re-examining* unchanged pages; both are backend-independent:

* a per-frame **generation counter** bumped on every mutation (unlike
  :meth:`PhysicalMemory.version`, which deliberately ignores
  ``corrupt_bit`` to model one-way Rowhammer charge leakage), plus a
  global ``mutation_epoch``;
* **dirty-frame views**: consumers register a view and periodically
  drain the set of frames mutated since their last drain, giving the
  batch "only re-examine frames whose generation advanced" pattern.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mem.content import content_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.arena import ContentArena


@dataclass
class FingerprintStats:
    """Counters for the digest cache (diagnostic only, never artifacts)."""

    #: ``digest()`` answered from the cache.
    digest_hits: int = 0
    #: ``digest()`` had to run blake2b (also counted when disabled).
    digest_misses: int = 0
    #: A cached digest was dropped by the write barrier (legacy store
    #: only; arena digests are content-addressed and never invalidate).
    invalidations: int = 0
    #: Total frame mutations seen (writes, copies, bit corruptions).
    mutations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "digest_hits": self.digest_hits,
            "digest_misses": self.digest_misses,
            "invalidations": self.invalidations,
            "mutations": self.mutations,
        }


class DirtyFrameView:
    """One consumer's view of the frames mutated since its last drain."""

    __slots__ = ("name", "_dirty")

    def __init__(self, name: str) -> None:
        self.name = name
        self._dirty: set[int] = set()

    def __len__(self) -> int:
        return len(self._dirty)

    def note(self, pfn: int) -> None:
        self._dirty.add(pfn)

    def peek(self) -> frozenset[int]:
        """Return the pending dirty set without clearing it."""
        return frozenset(self._dirty)

    def drain(self) -> frozenset[int]:
        """Return and clear the frames mutated since the last drain."""
        if not self._dirty:
            return frozenset()
        dirty = frozenset(self._dirty)
        self._dirty.clear()
        return dirty


class FingerprintCache:
    """Frame digests with generation-based change tracking.

    Owned by :class:`~repro.mem.physmem.PhysicalMemory`; all mutation
    paths funnel through :meth:`note_mutation`.  ``backing`` is the
    frame-store backend the digests are read through — when it exposes
    a content arena the cache delegates digest storage to it.
    Generations, the mutation epoch and dirty views are maintained even
    when caching is disabled — they are behaviour-neutral bookkeeping —
    so the ``fingerprint_enabled`` flag toggles only whether blake2b
    results are remembered.
    """

    def __init__(self, num_frames: int, enabled: bool = True,
                 backing=None) -> None:
        self.enabled = enabled
        self.stats = FingerprintStats()
        #: Bumped once per mutation of any frame.
        self.mutation_epoch = 0
        self._num_frames = num_frames
        #: Per-frame generation counters in a fixed-size signed-64
        #: column (never reallocated), so the batch scan kernel can
        #: hold a zero-copy view for generation-delta filtering.
        self._generations = array("q", bytes(8 * num_frames))
        self._backing = backing
        self._arena: "ContentArena | None" = getattr(backing, "arena", None)
        #: Per-frame digests (legacy backend only; None under an arena,
        #: where digests live per unique content instead).
        self._digests: dict[int, int] | None = (
            None if self._arena is not None else {}
        )
        self._views: list[DirtyFrameView] = []

    # ------------------------------------------------------------------
    # Write barrier
    # ------------------------------------------------------------------
    def note_mutation(self, pfn: int) -> None:
        """Record that frame ``pfn``'s content changed (any cause)."""
        self._generations[pfn] += 1
        self.mutation_epoch += 1
        self.stats.mutations += 1
        if self._digests is not None and self._digests.pop(pfn, None) is not None:
            self.stats.invalidations += 1
        for view in self._views:
            view.note(pfn)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def generation(self, pfn: int) -> int:
        return self._generations[pfn]

    def digest(self, pfn: int) -> int:
        """64-bit digest of the current content of ``pfn``."""
        backing = self._backing
        if not self.enabled:
            self.stats.digest_misses += 1
            return content_digest(backing.get(pfn))
        arena = self._arena
        if arena is not None:
            cid = backing.content_id(pfn)
            cached = arena.peek_digest(cid)
            if cached is not None:
                self.stats.digest_hits += 1
                return cached
            self.stats.digest_misses += 1
            return arena.digest(cid)
        cached = self._digests.get(pfn)
        if cached is not None:
            self.stats.digest_hits += 1
            return cached
        value = content_digest(backing.get(pfn))
        self._digests[pfn] = value
        self.stats.digest_misses += 1
        return value

    def peek(self, pfn: int) -> int | None:
        """Return the cached digest of ``pfn`` without computing one."""
        if self._arena is not None:
            return self._arena.peek_digest(self._backing.content_id(pfn))
        return self._digests.get(pfn)

    def cached_frames(self) -> frozenset[int]:
        """Frames whose digest would be served from cache right now."""
        if self._arena is not None:
            backing, arena = self._backing, self._arena
            return frozenset(
                pfn for pfn in range(self._num_frames)
                if arena.peek_digest(backing.content_id(pfn)) is not None
            )
        return frozenset(self._digests)

    # ------------------------------------------------------------------
    # Dirty views
    # ------------------------------------------------------------------
    def register_view(self, name: str) -> DirtyFrameView:
        """Register a new dirty-frame view (initially empty)."""
        view = DirtyFrameView(name)
        self._views.append(view)
        return view
