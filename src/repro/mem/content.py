"""Canonical representation of 4 KiB page contents.

A page's content is stored as an immutable ``bytes`` payload that is
*conceptually* zero-padded to :data:`repro.params.PAGE_SIZE` bytes.  The
canonical form strips trailing zero bytes, so the all-zero page is the
empty payload and content equality is plain bytes equality.  This keeps
hundreds of thousands of simulated frames cheap while preserving the
two operations the paper's attacks need:

* exact content comparison (what every fusion engine merges on), and
* single-bit corruption at an arbitrary page offset (what Rowhammer
  does to a physical frame, bypassing any page-table protection).
"""

from __future__ import annotations

import hashlib
import random
import struct

from repro.params import PAGE_SIZE

#: Type alias: page contents are canonical ``bytes`` payloads.
PageContent = bytes

#: The canonical all-zero page.
ZERO_PAGE: PageContent = b""


def make_content(data: bytes) -> PageContent:
    """Return the canonical form of ``data`` as page content.

    ``data`` may be up to :data:`PAGE_SIZE` bytes; the conceptual page
    is ``data`` followed by zero padding.  Trailing zero bytes are
    stripped so equal pages always compare equal.
    """
    if len(data) > PAGE_SIZE:
        raise ValueError(f"page content of {len(data)} bytes exceeds {PAGE_SIZE}")
    return data.rstrip(b"\x00")


def is_zero(content: PageContent) -> bool:
    """Return True if ``content`` is the all-zero page."""
    return content == ZERO_PAGE


def content_digest(content: PageContent) -> int:
    """Return a 64-bit content hash (what WPF sorts its candidate list by)."""
    digest = hashlib.blake2b(content, digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


def flip_bit(content: PageContent, byte_offset: int, bit: int) -> PageContent:
    """Return ``content`` with one bit flipped, as a Rowhammer hit would.

    ``byte_offset`` addresses the conceptual 4 KiB page, so flips can
    land in the zero-padded tail; the payload is extended as needed and
    re-canonicalised afterwards.
    """
    if not 0 <= byte_offset < PAGE_SIZE:
        raise ValueError(f"byte offset {byte_offset} outside page")
    if not 0 <= bit < 8:
        raise ValueError(f"bit index {bit} outside byte")
    buf = bytearray(content)
    if byte_offset >= len(buf):
        buf.extend(b"\x00" * (byte_offset + 1 - len(buf)))
    buf[byte_offset] ^= 1 << bit
    return make_content(bytes(buf))


def random_content(rng: random.Random, length: int = 32) -> PageContent:
    """Return random page content with ``length`` payload bytes.

    Used by workloads to model unique (unmergeable) pages; a trailing
    non-zero byte guarantees distinct payloads stay distinct after
    canonicalisation.
    """
    if not 1 <= length <= PAGE_SIZE:
        raise ValueError(f"length {length} outside [1, {PAGE_SIZE}]")
    body = rng.randbytes(length - 1) if length > 1 else b""
    return make_content(body + bytes([rng.randrange(1, 256)]))


def tagged_content(*fields: object) -> PageContent:
    """Build deterministic content from a tuple of hashable fields.

    Two calls with equal fields produce identical page contents; this
    is how workloads express "these pages across different VMs hold the
    same library/page-cache data".
    """
    text = "\x1f".join(repr(field) for field in fields)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=24).digest()
    return make_content(digest + b"\x01")
