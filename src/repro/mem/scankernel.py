"""Batch scan primitives over the frame store's content column.

Fusion engines spend their scan passes asking the same few questions
about many frames at once: "which of these are zero?", "which hold
equal content?", "which changed since I last looked?".  Asked one
frame at a time through :class:`~repro.mem.physmem.PhysicalMemory`,
every answer costs a Python method call; at fleet scale (256k+
frames) that interpreter overhead dwarfs the simulation itself.  This
module turns the questions into batch primitives over the columnar
store's cid column:

* **zero-page sweep** — :meth:`ScanKernel.zero_frames` /
  :meth:`ScanKernel.is_zero_frame`: a frame is zero iff its content id
  is :data:`~repro.mem.arena.ZERO_ID` (canonical contents strip
  trailing zero bytes, so the zero page is the empty payload);
* **duplicate-cid candidate grouping** —
  :meth:`ScanKernel.group_by_content`: partition a candidate batch by
  content identity, preserving first-encounter order exactly like the
  scalar ``merge_key`` loop it replaces;
* **dirty-set intersection** — :meth:`ScanKernel.dirty_intersection` /
  :meth:`ScanKernel.any_fused`: intersect a drained dirty view with a
  candidate list or the fusion-pinned set;
* **generation-delta filtering** —
  :meth:`ScanKernel.generation_snapshot` /
  :meth:`ScanKernel.changed_since`: keep only the frames whose
  mutation generation advanced past a snapshot;
* **digest sweep** — :meth:`ScanKernel.digest_sweep`: the batch
  fingerprint lookup behind ``PhysicalMemory.digests_many``;
* **refcount reduction** — :meth:`ScanKernel.refcount_sum`: the
  sharing-pair accounting sum behind every engine's ``saved_frames``.

Two implementations sit behind one interface:

:class:`ScalarScanKernel`
    The reference: per-frame loops through the public
    ``PhysicalMemory`` API.  Works on both frame-store backends, and
    is the implementation every content-reading primitive delegates to
    while a FrameSan sanitizer is attached — so ``on_read`` hooks fire
    exactly as the scalar loops fire them.

:class:`BatchScanKernel`
    Vectorized over zero-copy views of the cid / generation / refcount
    columns: NumPy when installed (the ``repro[fast]`` extra), a pure
    ``array``-module fallback otherwise.  The columns are fixed-size
    ``array("q")`` buffers that never reallocate, so the NumPy views
    (``numpy.frombuffer``) stay live for the machine's lifetime.
    Requires the columnar store; on the legacy store every primitive
    transparently takes the scalar path.

Selection mirrors the frame-store switch: per machine via
``MachineSpec.scan_kernel``, globally via the ``REPRO_SCAN_KERNEL``
environment variable, default "batch".  The choice is pure
representation — simulated clocks, ledgers, artifacts and sanitizer
audits are byte-identical either way.
``tests/test_scan_kernel_differential.py`` runs all five fusion
engines in lockstep under both kernels to prove it,
``tests/test_scan_kernel_props.py`` pins the NumPy and array-fallback
implementations against each other element-for-element, and the
mutation meta-test plants boundary bugs in this file and checks the
suites catch each one.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.mem.arena import ZERO_ID
from repro.mem.content import is_zero

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.physmem import PhysicalMemory

# NumPy is an optional accelerator (`pip install repro[fast]`); the
# guard keeps the module import-safe — and deterministic, hence
# simlint-clean — on hosts without it, where the pure array-module
# fallback serves every batch primitive.
try:  # pragma: no cover - exercised by the no-NumPy CI leg
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

#: Environment override for the default scan kernel.
SCAN_KERNEL_ENV = "REPRO_SCAN_KERNEL"

#: Recognised kernel names.
SCAN_KERNELS = ("batch", "scalar")


def default_scan_kernel() -> str:
    """The process-wide default kernel (env override or batch)."""
    value = os.environ.get(SCAN_KERNEL_ENV, "").strip().lower()
    return value if value in SCAN_KERNELS else "batch"


class ScalarScanKernel:
    """Reference scan kernel: per-frame loops over the public API.

    Every primitive is the obvious scalar loop; the batch kernel must
    be indistinguishable from this class through any observable
    (results, stats accounting, raised errors, sanitizer hook
    sequences).
    """

    name = "scalar"

    def __init__(self, physmem: "PhysicalMemory") -> None:
        self.physmem = physmem

    @property
    def backend(self) -> str:
        """The implementation serving batch primitives right now."""
        return "scalar"

    def pfn_batch(self, pfns: Sequence[int]) -> Sequence[int]:
        """A reusable batch handle for ``pfns``.

        Monitors running several primitives over one frame set per scan
        pass convert (and bounds-validate, on the vectorized kernel)
        the set once instead of per primitive.  The handle is a plain
        sequence either way, so it can also be passed straight back to
        any primitive of either kernel.
        """
        return pfns if isinstance(pfns, list) else list(pfns)

    # ------------------------------------------------------------------
    # Zero-page sweep
    # ------------------------------------------------------------------
    def is_zero_frame(self, pfn: int) -> bool:
        """Whether frame ``pfn`` holds the (canonical) zero page.

        Counts as a content read for the sanitizer, exactly like the
        ``is_zero(read(pfn))`` probe it replaces in engine scan loops.
        """
        return is_zero(self.physmem.read(pfn))

    def zero_frames(self, pfns: Sequence[int]) -> list[int]:
        """The subset of ``pfns`` holding the zero page, order kept."""
        physmem = self.physmem
        return [pfn for pfn in pfns if is_zero(physmem.read(pfn))]

    # ------------------------------------------------------------------
    # Duplicate-content candidate grouping
    # ------------------------------------------------------------------
    def group_by_content(self, pfns: Sequence[int]) -> dict[object, list[int]]:
        """Partition ``pfns`` (as indices) by content identity.

        Returns ``{merge_key: [index, ...]}`` where indices point into
        ``pfns``; groups appear in first-encounter order and indices
        ascend within each group — the exact partition (and order) of
        the classic ``candidates.setdefault(merge_key(pfn), ...)``
        scan loop, so engines can bucket candidates through one call.
        """
        physmem = self.physmem
        groups: dict[object, list[int]] = {}
        for index, pfn in enumerate(pfns):
            key = physmem.merge_key(pfn)
            members = groups.get(key)
            if members is None:
                groups[key] = [index]
            else:
                members.append(index)
        return groups

    # ------------------------------------------------------------------
    # Dirty-set intersection
    # ------------------------------------------------------------------
    def dirty_intersection(
        self, pfns: Sequence[int], dirty: Iterable[int]
    ) -> list[int]:
        """The subset of ``pfns`` present in ``dirty``, order kept."""
        members = dirty if isinstance(dirty, (set, frozenset)) else set(dirty)
        return [pfn for pfn in pfns if pfn in members]

    def any_fused(self, pfns: Iterable[int]) -> bool:
        """Whether any frame in ``pfns`` is fusion-pinned.

        The dirty-audit primitive: engines intersect a drained dirty
        view with the pinned set to detect stable-tree content
        mutations (the one hazard per-memo generation gates miss).
        """
        is_fused = self.physmem.is_fused
        return any(is_fused(pfn) for pfn in pfns)

    # ------------------------------------------------------------------
    # Generation-delta filtering
    # ------------------------------------------------------------------
    def generation_snapshot(self, pfns: Sequence[int]) -> list[int]:
        """Current mutation generations of ``pfns``, in order."""
        generation = self.physmem.generation
        return [generation(pfn) for pfn in pfns]

    def changed_since(
        self, pfns: Sequence[int], snapshot: Sequence[int]
    ) -> list[int]:
        """Frames whose generation differs from a prior snapshot.

        ``snapshot`` must be parallel to ``pfns`` (one recorded
        generation per frame, e.g. from :meth:`generation_snapshot`).
        """
        if len(pfns) != len(snapshot):
            raise ValueError(
                f"snapshot length {len(snapshot)} != pfns length {len(pfns)}"
            )
        generation = self.physmem.generation
        return [
            pfn
            for pfn, recorded in zip(pfns, snapshot)
            if generation(pfn) != recorded
        ]

    # ------------------------------------------------------------------
    # Digest sweep
    # ------------------------------------------------------------------
    def digest_sweep(self, pfns: Sequence[int]) -> list[int]:
        """Digests for many frames in one pass.

        Behaviourally ``[physmem.digest(pfn) for pfn in pfns]``; on
        the columnar store duplicate content ids in the batch collapse
        to a single cache probe each, with hit/miss stats matching the
        per-frame path exactly.
        """
        physmem = self.physmem
        fingerprints = physmem.fingerprints
        arena = physmem.arena
        if arena is None or not fingerprints.enabled:
            return [physmem.digest(pfn) for pfn in pfns]
        cids = physmem._backing._cids
        num_frames = physmem.num_frames
        stats = fingerprints.stats
        by_cid: dict[int, int] = {}
        lookup = by_cid.get
        out: list[int] = []
        append = out.append
        hits = misses = 0
        for pfn in pfns:
            if not 0 <= pfn < num_frames:
                physmem.check_pfn(pfn)
            value = lookup(cid := cids[pfn])
            if value is None:
                cached = arena.peek_digest(cid)
                if cached is not None:
                    hits += 1
                    value = cached
                else:
                    misses += 1
                    value = arena.digest(cid)
                by_cid[cid] = value
            else:
                hits += 1
            append(value)
        stats.digest_hits += hits
        stats.digest_misses += misses
        return out

    # ------------------------------------------------------------------
    # Refcount reduction
    # ------------------------------------------------------------------
    def refcount_sum(self, pfns: Iterable[int]) -> int:
        """Sum of the reference counts of ``pfns``.

        The sharing-pair accounting reduction: engines report
        ``pages_sharing`` as ``refcount_sum(stable_pfns) - len(...)``,
        and fleet monitors call that per sample.
        """
        refcount = self.physmem.refcount
        return sum(refcount(pfn) for pfn in pfns)


class BatchScanKernel(ScalarScanKernel):
    """Vectorized scan kernel over the columnar content column.

    Content-reading primitives delegate to the scalar loops whenever a
    sanitizer is attached (so FrameSan's per-access hooks fire
    identically) or the machine runs the legacy store (no cid column
    to vectorize).  Pure-accounting primitives (generations, digests,
    refcounts) never fire sanitizer hooks and stay vectorized even
    under FrameSan.
    """

    name = "batch"

    def __init__(
        self, physmem: "PhysicalMemory", use_numpy: bool | None = None
    ) -> None:
        super().__init__(physmem)
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        elif use_numpy and not HAVE_NUMPY:
            raise RuntimeError(
                "BatchScanKernel(use_numpy=True) requires NumPy; install "
                "the repro[fast] extra"
            )
        #: The cid column (None on the legacy store — scalar fallback).
        self._cids = getattr(physmem._backing, "_cids", None)
        self._np = _np if (use_numpy and self._cids is not None) else None
        # Lazy zero-copy NumPy views; the underlying array("q") columns
        # are allocated once per machine and never resized, so a
        # frombuffer view stays valid for the machine's lifetime.
        self._cid_view = None
        self._gen_view = None
        self._ref_view = None

    @property
    def backend(self) -> str:
        if self._cids is None:
            return "scalar"
        return "numpy" if self._np is not None else "array"

    # ------------------------------------------------------------------
    # Column views and validation
    # ------------------------------------------------------------------
    def _cid_column(self):
        view = self._cid_view
        if view is None:
            view = self._np.frombuffer(self._cids, dtype=self._np.int64)
            self._cid_view = view
        return view

    def _gen_column(self):
        view = self._gen_view
        if view is None:
            view = self._np.frombuffer(
                self.physmem.fingerprints._generations, dtype=self._np.int64
            )
            self._gen_view = view
        return view

    def _ref_column(self):
        view = self._ref_view
        if view is None:
            view = self._np.frombuffer(
                self.physmem._refcount, dtype=self._np.int64
            )
            self._ref_view = view
        return view

    def pfn_batch(self, pfns: Sequence[int]) -> Sequence[int]:
        if self._np is None:
            return super().pfn_batch(pfns)
        return self._pfn_array(pfns)

    def _pfn_array(self, pfns):
        """``pfns`` as a validated int64 ndarray (bounds-checked)."""
        np = self._np
        if isinstance(pfns, np.ndarray):
            # A pfn_batch handle coming back around: dtype is already
            # int64 (asarray is then a no-op) and bounds were checked
            # at handle creation; re-checking is a cheap C reduction.
            arr = np.asarray(pfns, dtype=np.int64)
        elif isinstance(pfns, range):
            # Whole-memory sweeps and cursor windows arrive as ranges;
            # arange skips the per-element list conversion entirely.
            arr = np.arange(pfns.start, pfns.stop, pfns.step, dtype=np.int64)
        else:
            if not isinstance(pfns, (list, tuple)):
                pfns = list(pfns)
            arr = np.asarray(pfns, dtype=np.int64)
        if arr.size and (
            int(arr.min()) < 0 or int(arr.max()) >= self.physmem.num_frames
        ):
            for pfn in pfns:
                self.physmem.check_pfn(pfn)
        return arr

    def _unique_inverse(self, cids):
        """Sorted unique cids plus per-element indices into them.

        Equivalent to ``np.unique(cids, return_inverse=True)``, but
        content ids are dense (the arena hands them out sequentially),
        so for fleet-sized batches a counting pass beats the sort.
        Sparse id spaces keep the np.unique path.
        """
        np = self._np
        max_cid = int(cids.max())
        if max_cid <= 4 * cids.size + 1024:
            seen = np.zeros(max_cid + 1, dtype=bool)
            seen[cids] = True
            unique = np.flatnonzero(seen)
            table = np.empty(max_cid + 1, dtype=np.int64)
            table[unique] = np.arange(unique.size)
            return unique, table[cids]
        unique, inverse = np.unique(cids, return_inverse=True)
        return unique, inverse

    def _reads_are_scalar(self) -> bool:
        """Content-reading primitives take the scalar path under a
        sanitizer (hook parity) or on the legacy store (no column)."""
        return self._cids is None or self.physmem.sanitizer is not None

    # ------------------------------------------------------------------
    # Zero-page sweep
    # ------------------------------------------------------------------
    def is_zero_frame(self, pfn: int) -> bool:
        if self._reads_are_scalar():
            return super().is_zero_frame(pfn)
        self.physmem.check_pfn(pfn)
        return self._cids[pfn] == ZERO_ID

    def zero_frames(self, pfns: Sequence[int]) -> list[int]:
        if self._reads_are_scalar():
            return super().zero_frames(pfns)
        if self._np is not None:
            arr = self._pfn_array(pfns)
            mask = self._cid_column()[arr] == ZERO_ID
            return arr[mask].tolist()
        cids = self._cids
        num_frames = self.physmem.num_frames
        check = self.physmem.check_pfn
        out: list[int] = []
        for pfn in pfns:
            if not 0 <= pfn < num_frames:
                check(pfn)
            if cids[pfn] == ZERO_ID:
                out.append(pfn)
        return out

    # ------------------------------------------------------------------
    # Duplicate-content candidate grouping
    # ------------------------------------------------------------------
    def group_by_content(self, pfns: Sequence[int]) -> dict[object, list[int]]:
        if self._reads_are_scalar():
            return super().group_by_content(pfns)
        if self._np is None:
            cids = self._cids
            num_frames = self.physmem.num_frames
            check = self.physmem.check_pfn
            groups: dict[object, list[int]] = {}
            for index, pfn in enumerate(pfns):
                if not 0 <= pfn < num_frames:
                    check(pfn)
                key = cids[pfn]
                members = groups.get(key)
                if members is None:
                    groups[key] = [index]
                else:
                    members.append(index)
            return groups
        np = self._np
        arr = self._pfn_array(pfns)
        if arr.size == 0:
            return {}
        cids = self._cid_column()[arr]
        unique, inverse = self._unique_inverse(cids)
        # Stable argsort groups indices by cid while keeping them
        # ascending inside each group, so members[0] is the group's
        # first encounter; sorting the buckets by it restores the
        # scalar loop's insertion order.
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=unique.size)
        buckets: list[tuple[int, int, list[int]]] = []
        start = 0
        for cid, count in zip(unique.tolist(), counts.tolist()):
            members = order[start:start + count].tolist()
            start += count
            buckets.append((members[0], cid, members))
        buckets.sort()
        return {cid: members for _first, cid, members in buckets}

    # ------------------------------------------------------------------
    # Dirty-set intersection
    # ------------------------------------------------------------------
    def dirty_intersection(
        self, pfns: Sequence[int], dirty: Iterable[int]
    ) -> list[int]:
        if self._np is None:
            return super().dirty_intersection(pfns, dirty)
        if not isinstance(pfns, (list, tuple)):
            pfns = list(pfns)
        members = list(dirty) if not isinstance(dirty, (list, tuple)) else dirty
        if not pfns or not members:
            return []
        np = self._np
        arr = np.asarray(pfns, dtype=np.int64)
        mask = np.isin(arr, np.asarray(members, dtype=np.int64))
        return arr[mask].tolist()

    def any_fused(self, pfns: Iterable[int]) -> bool:
        # Set disjointness runs in C on both backends; the pinned set
        # is PhysicalMemory's own index, so this stays exact.
        return not self.physmem._fusion_pinned.isdisjoint(pfns)

    # ------------------------------------------------------------------
    # Generation-delta filtering
    # ------------------------------------------------------------------
    def generation_snapshot(self, pfns: Sequence[int]) -> list[int]:
        if self._np is None or self._cids is None:
            return super().generation_snapshot(pfns)
        return self._gen_column()[self._pfn_array(pfns)].tolist()

    def changed_since(
        self, pfns: Sequence[int], snapshot: Sequence[int]
    ) -> list[int]:
        if self._np is None or self._cids is None:
            return super().changed_since(pfns, snapshot)
        if len(pfns) != len(snapshot):
            raise ValueError(
                f"snapshot length {len(snapshot)} != pfns length {len(pfns)}"
            )
        np = self._np
        arr = self._pfn_array(pfns)
        recorded = np.asarray(
            snapshot if isinstance(snapshot, (list, tuple)) else list(snapshot),
            dtype=np.int64,
        )
        return arr[self._gen_column()[arr] != recorded].tolist()

    # ------------------------------------------------------------------
    # Digest sweep
    # ------------------------------------------------------------------
    def digest_sweep(self, pfns: Sequence[int]) -> list[int]:
        physmem = self.physmem
        fingerprints = physmem.fingerprints
        arena = physmem.arena
        if self._np is None or arena is None or not fingerprints.enabled:
            return super().digest_sweep(pfns)
        np = self._np
        arr = self._pfn_array(pfns)
        if arr.size == 0:
            return []
        cids = self._cid_column()[arr]
        unique, inverse = self._unique_inverse(cids)
        # One arena probe per *unique* content; a cid whose digest was
        # never cached counts as exactly one miss for the whole batch
        # and the remaining occurrences as hits — the same totals the
        # scalar sweep's first-occurrence bookkeeping produces.
        values = np.empty(unique.size, dtype=np.uint64)
        peek = arena.peek_digest
        compute = arena.digest
        misses = 0
        for uidx, cid in enumerate(unique.tolist()):
            cached = peek(cid)
            if cached is None:
                misses += 1
                cached = compute(cid)
            values[uidx] = cached
        stats = fingerprints.stats
        stats.digest_hits += len(arr) - misses
        stats.digest_misses += misses
        # .tolist() materializes Python ints: digests are unsigned
        # 64-bit values and downstream sums must stay arbitrary
        # precision, not wrap at 2**64.
        return values[inverse].tolist()

    # ------------------------------------------------------------------
    # Refcount reduction
    # ------------------------------------------------------------------
    def refcount_sum(self, pfns: Iterable[int]) -> int:
        if self._np is None or self._cids is None:
            return super().refcount_sum(pfns)
        arr = self._pfn_array(pfns)
        return int(self._ref_column()[arr].sum())


#: The common interface name (either implementation satisfies it).
ScanKernel = ScalarScanKernel


def make_scan_kernel(kind: str, physmem: "PhysicalMemory") -> ScalarScanKernel:
    """Instantiate the scan kernel named ``kind`` for ``physmem``."""
    if kind == "batch":
        return BatchScanKernel(physmem)
    if kind == "scalar":
        return ScalarScanKernel(physmem)
    raise ValueError(
        f"unknown scan kernel {kind!r}; expected one of {SCAN_KERNELS}"
    )
