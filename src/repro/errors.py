"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class OutOfMemoryError(ReproError):
    """The buddy allocator (or a frame pool) has no frame to hand out."""


class InvalidFrameError(ReproError):
    """A frame number is out of range or in the wrong state."""


class MappingError(ReproError):
    """A virtual-memory mapping operation is invalid.

    Raised for double maps, unmapping absent pages, misaligned huge
    pages and similar page-table misuse.
    """


class SegmentationFault(ReproError):
    """A process touched a virtual address outside any of its VMAs."""

    def __init__(self, vaddr: int, message: str = "") -> None:
        detail = message or f"access to unmapped address {vaddr:#x}"
        super().__init__(detail)
        self.vaddr = vaddr


class ProtectionFault(ReproError):
    """An access violated page permissions and no handler fixed it up."""

    def __init__(self, vaddr: int, kind: str) -> None:
        super().__init__(f"{kind} access to {vaddr:#x} denied")
        self.vaddr = vaddr
        self.kind = kind


class FusionError(ReproError):
    """A fusion engine detected an internal inconsistency."""


class ConfigError(ReproError):
    """A configuration value is out of its valid range."""
