"""simflow's control-flow graphs: intraprocedural CFGs over ``ast``.

Each function (or method, or nested function) gets its own
:class:`FunctionCFG` of :class:`BasicBlock` nodes.  Blocks hold the AST
nodes "executed" in order — whole simple statements, the test
expressions of ``if``/``while``, and synthetic ``Assign`` nodes for
``for`` targets and ``with ... as`` bindings — so dataflow transfer
functions can treat every block element uniformly.  Compound statement
*bodies* are never stored inside another block's nodes: an ``ast.If``
appearing in a block would smuggle its whole subtree past the solver.

Edges carry a kind:

* ``NORMAL``/``TRUE``/``FALSE``/``LOOP`` — ordinary control flow.  A
  forward analysis propagates the block's *post* state along these.
* ``EXCEPTION`` — an implicit may-raise edge from a block inside a
  ``try`` to a handler entry.  Any statement may raise part-way
  through, so forward analyses propagate the block's *pre* state.
* ``RAISE`` — an explicit ``raise`` (or failing ``assert``) edge into
  the virtual raise exit.

Two virtual exits let rules distinguish outcomes: ``exit`` (normal
return / fall-through) and ``raise_exit`` (explicit raise).  ``finally``
bodies are built once; early ``return``/``raise`` inside the ``try``
are routed through them, which slightly over-approximates paths (a
must-analysis stays sound: it can only get stricter).

The builder is deliberately approximate where Python is hairy
(``finally`` re-entry, ``while/else`` after ``break``) — simflow is a
linter, not a verifier — but every approximation adds paths rather
than dropping them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

#: Edge kinds.
NORMAL = "normal"
TRUE = "true"
FALSE = "false"
LOOP = "loop"
EXCEPTION = "exception"
RAISE = "raise"


@dataclass
class BasicBlock:
    """A straight-line run of AST nodes with labelled edges."""

    id: int
    nodes: list[ast.AST] = field(default_factory=list)
    #: Outgoing edges as ``(block_id, kind)``.
    succs: list[tuple[int, str]] = field(default_factory=list)
    #: Incoming edges as ``(block_id, kind)``.
    preds: list[tuple[int, str]] = field(default_factory=list)

    def successor_ids(self, *kinds: str) -> list[int]:
        """Successor ids, optionally restricted to the given kinds."""
        if not kinds:
            return [block_id for block_id, _kind in self.succs]
        return [block_id for block_id, kind in self.succs if kind in kinds]


class FunctionCFG:
    """The control-flow graph of one function definition."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        blocks: dict[int, BasicBlock],
        entry: int,
        exit_id: int,
        raise_exit: int,
    ) -> None:
        self.func = func
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_id
        self.raise_exit = raise_exit

    @property
    def name(self) -> str:
        return self.func.name

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def decorator_names(self) -> set[str]:
        """Last name component of every decorator (``a.b.c`` -> ``c``)."""
        names: set[str] = set()
        for decorator in self.func.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
        return names

    def reachable_ids(self) -> set[int]:
        """Block ids reachable from the entry along any edge kind."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            stack.extend(self.blocks[block_id].successor_ids())
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FunctionCFG({self.name!r}, blocks={len(self.blocks)}, "
            f"entry={self.entry}, exit={self.exit}, raise={self.raise_exit})"
        )


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Yield every function definition in the tree (methods, nested defs)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionCFG:
    """Build the intraprocedural CFG of one function definition."""
    return _CfgBuilder().build(func)


def _located_assign(target: ast.expr, value: ast.expr, at: ast.AST) -> ast.Assign:
    """Synthetic ``target = value`` node carrying ``at``'s location."""
    assign = ast.Assign(targets=[target], value=value)
    ast.copy_location(assign, at)
    ast.fix_missing_locations(assign)
    return assign


class _CfgBuilder:
    """One-shot builder; tracks loop / handler / finally context stacks."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self._next_id = 0
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.raise_exit = self._new_block()
        #: The block statements are currently appended to; ``None``
        #: right after a terminator (return/raise/break/continue).
        self.current: int | None = None
        #: (continue-target, break-target) per enclosing loop.
        self._loops: list[tuple[int, int]] = []
        #: Handler entry blocks of each enclosing ``try`` with handlers.
        self._handlers: list[list[int]] = []
        #: Finally entry block of each enclosing ``try ... finally``.
        self._finallies: list[int] = []
        #: finally entry -> continuations it must forward ("exit"/"raise").
        self._finally_pending: dict[int, set[str]] = {}

    # ------------------------------------------------------------------
    # Graph primitives
    # ------------------------------------------------------------------
    def _new_block(self) -> int:
        block = BasicBlock(self._next_id)
        self.blocks[block.id] = block
        self._next_id += 1
        return block.id

    def _edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self.blocks[src].succs:
            self.blocks[src].succs.append((dst, kind))
            self.blocks[dst].preds.append((src, kind))

    def _append(self, node: ast.AST) -> None:
        assert self.current is not None
        self.blocks[self.current].nodes.append(node)
        # Anything inside a try may raise part-way: add one may-raise
        # edge from this block to every active handler entry.
        for handler_entries in self._handlers:
            for handler_id in handler_entries:
                self._edge(self.current, handler_id, EXCEPTION)

    def _terminate_into(self, target: int, kind: str, continuation: str | None = None) -> None:
        """Route control out of the current block (return/raise/...).

        With an enclosing ``finally`` the edge goes there instead, and
        the finally is marked to forward the continuation when built.
        """
        assert self.current is not None
        if self._finallies and continuation is not None:
            finally_id = self._finallies[-1]
            self._edge(self.current, finally_id, NORMAL)
            self._finally_pending.setdefault(finally_id, set()).add(continuation)
        else:
            self._edge(self.current, target, kind)
        self.current = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionCFG:
        self.current = self._new_block()
        self._edge(self.entry, self.current)
        self._visit_body(func.body)
        if self.current is not None:
            self._edge(self.current, self.exit)
        return FunctionCFG(func, self.blocks, self.entry, self.exit, self.raise_exit)

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None:
                # Dead code after a terminator still gets analyzed, in
                # an unreachable block (no incoming edges).
                self.current = self._new_block()
            self._visit_stmt(stmt)

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._visit_loop(stmt, header_node=stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_loop(
                stmt, header_node=_located_assign(stmt.target, stmt.iter, stmt)
            )
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._terminate_into(self.exit, NORMAL, continuation="exit")
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            self._terminate_into(self.raise_exit, RAISE, continuation="raise")
        elif isinstance(stmt, ast.Break):
            assert self._loops, "break outside loop"
            self._terminate_into(self._loops[-1][1], NORMAL)
        elif isinstance(stmt, ast.Continue):
            assert self._loops, "continue outside loop"
            self._terminate_into(self._loops[-1][0], LOOP)
        elif isinstance(stmt, ast.Assert):
            self._append(stmt)
            assert self.current is not None
            self._edge(self.current, self.raise_exit, RAISE)
        else:
            # Simple statements — and nested function/class definitions,
            # whose bodies deliberately stay opaque (each function is
            # analyzed by its own CFG).
            self._append(stmt)

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(stmt.test)
        cond_id = self.current
        assert cond_id is not None
        then_id = self._new_block()
        self._edge(cond_id, then_id, TRUE)
        self.current = then_id
        self._visit_body(stmt.body)
        then_end = self.current
        else_id = self._new_block()
        self._edge(cond_id, else_id, FALSE)
        self.current = else_id
        self._visit_body(stmt.orelse)
        else_end = self.current
        join_id = self._new_block()
        if then_end is not None:
            self._edge(then_end, join_id)
        if else_end is not None:
            self._edge(else_end, join_id)
        self.current = join_id if (then_end is not None or else_end is not None) else None

    def _visit_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, header_node: ast.AST
    ) -> None:
        assert self.current is not None
        header_id = self._new_block()
        self._edge(self.current, header_id)
        self.current = header_id
        self._append(header_node)
        body_id = self._new_block()
        after_id = self._new_block()
        self._edge(header_id, body_id, TRUE)
        self._loops.append((header_id, after_id))
        self.current = body_id
        self._visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, header_id, LOOP)
        self._loops.pop()
        if stmt.orelse:
            else_id = self._new_block()
            self._edge(header_id, else_id, FALSE)
            self.current = else_id
            self._visit_body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after_id)
        else:
            self._edge(header_id, after_id, FALSE)
        self.current = after_id

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        for item in stmt.items:
            self._append(item.context_expr)
            if item.optional_vars is not None:
                self._append(
                    _located_assign(item.optional_vars, item.context_expr, stmt)
                )
        self._visit_body(stmt.body)

    def _visit_match(self, stmt: ast.Match) -> None:
        self._append(stmt.subject)
        subject_id = self.current
        assert subject_id is not None
        after_id = self._new_block()
        for case in stmt.cases:
            case_id = self._new_block()
            self._edge(subject_id, case_id, TRUE)
            self.current = case_id
            self._visit_body(case.body)
            if self.current is not None:
                self._edge(self.current, after_id)
        # No case may match.
        self._edge(subject_id, after_id, FALSE)
        self.current = after_id

    def _visit_try(self, stmt: ast.Try) -> None:
        assert self.current is not None
        handler_ids = [self._new_block() for _ in stmt.handlers]
        finally_id = self._new_block() if stmt.finalbody else None
        if finally_id is not None:
            self._finallies.append(finally_id)
        if handler_ids:
            self._handlers.append(handler_ids)
        body_id = self._new_block()
        self._edge(self.current, body_id)
        self.current = body_id
        self._visit_body(stmt.body)
        if handler_ids:
            self._handlers.pop()
        body_end = self.current
        if stmt.orelse and body_end is not None:
            self.current = body_end
            self._visit_body(stmt.orelse)
            body_end = self.current
        handler_ends: list[int | None] = []
        for handler, handler_id in zip(stmt.handlers, handler_ids):
            self.current = handler_id
            if handler.type is not None:
                self._append(handler.type)
            self._visit_body(handler.body)
            handler_ends.append(self.current)
        if finally_id is not None:
            self._finallies.pop()
        after_id = self._new_block()
        tails = [body_end, *handler_ends]
        if finally_id is None:
            for tail in tails:
                if tail is not None:
                    self._edge(tail, after_id)
        else:
            for tail in tails:
                if tail is not None:
                    self._edge(tail, finally_id)
            self.current = finally_id
            self._visit_body(stmt.finalbody)
            finally_end = self.current
            if finally_end is not None:
                self._edge(finally_end, after_id)
                for continuation in self._finally_pending.pop(finally_id, ()):  # noqa: B007
                    if continuation == "exit":
                        self._edge(finally_end, self.exit, NORMAL)
                    else:
                        self._edge(finally_end, self.raise_exit, RAISE)
        self.current = after_id
