"""The ``python -m repro lint`` subcommand."""

from __future__ import annotations

import pathlib

from repro.check.baseline import apply_baseline, load_baseline, write_baseline
from repro.check.engine import (
    check_annotations,
    engine_of,
    iter_python_files,
    lint_paths,
    rule_catalog,
)
from repro.check.fixes import FIXABLE_RULES, fix_paths
from repro.check.reporting import (
    findings_to_json,
    findings_to_sarif,
    render_findings,
)

DEFAULT_PATHS = ["src"]


def add_lint_parser(sub) -> None:
    """Register the ``lint`` subcommand on the main argparse tree."""
    lint = sub.add_parser(
        "lint",
        help="run simlint+simflow+simrace, the simulation-invariant "
             "analyzers",
        description="Statically enforce determinism, write-barrier, "
                    "layering, control-flow (S⊕F, ledger, frame-leak, "
                    "taint) and concurrency-ownership (RACE) invariants. "
                    "Exit 0 iff no findings.",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint (default: src)")
    lint.add_argument("--rule", action="append", dest="rules", default=None,
                      metavar="ID", choices=sorted(rule_catalog()),
                      help="check only this rule (repeatable)")
    lint.add_argument("--format", choices=["human", "json", "sarif"],
                      default="human",
                      help="report format (default human; sarif for "
                           "GitHub code scanning)")
    lint.add_argument("--fix", action="store_true",
                      help="autofix the mechanical rules (DET004 hash() "
                           "-> zlib.crc32, API001 removed names), then "
                           "lint the fixed tree")
    lint.add_argument("--verbose", action="store_true",
                      help="include each finding's rationale")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="accepted-findings file; matches are reported "
                           "separately and do not fail the run")
    lint.add_argument("--strict", action="store_true",
                      help="ignore --baseline (promote baselined rules)")
    lint.add_argument("--write-baseline", metavar="FILE", default=None,
                      help="write the current findings as a new baseline "
                           "and exit 0")
    lint.add_argument("--cache", metavar="FILE", default=None,
                      help="on-disk summary cache; warm runs re-analyze "
                           "only changed files (full rule set only)")
    lint.add_argument("--check-annotations", action="store_true",
                      help="audit @escapes_frame annotations against the "
                           "inferred summaries (proved / trusted / "
                           "contradicted) and exit")


def cmd_lint(args) -> int:
    if args.list_rules:
        for rule_id, rule in rule_catalog().items():
            print(
                f"{rule_id}  [{rule.severity}/{engine_of(rule_id)}]  "
                f"{rule.summary}"
            )
        return 0
    if args.check_annotations:
        rows = check_annotations(args.paths or DEFAULT_PATHS)
        if not rows:
            print("no checked annotations found")
            return 0
        contradicted = 0
        for row in rows:
            print(
                f"{row['path']}:{row['line']}: @{row['annotation']} on "
                f"{row['qualname']} -- {row['status']}"
            )
            contradicted += row["status"] == "contradicted"
        print(
            f"{len(rows)} annotation(s): "
            f"{sum(r['status'] == 'proved' for r in rows)} proved "
            "(inference derives the contract; the annotation can be "
            "dropped), "
            f"{sum(r['status'] == 'trusted' for r in rows)} trusted, "
            f"{contradicted} contradicted"
        )
        return 1 if contradicted else 0
    if args.fix:
        fixable = tuple(
            rule_id for rule_id in (args.rules or FIXABLE_RULES)
            if rule_id in FIXABLE_RULES
        )
        changed = fix_paths(
            iter_python_files(args.paths or DEFAULT_PATHS), fixable
        )
        for path in sorted(changed):
            print(f"fixed {path}: {len(changed[path])} rewrite(s)")
        if changed:
            print(f"--fix rewrote {len(changed)} file(s)")
    result = lint_paths(
        args.paths or DEFAULT_PATHS,
        rule_ids=args.rules,
        cache_path=args.cache,
    )
    if args.baseline and not args.strict:
        baseline_path = pathlib.Path(args.baseline)
        if baseline_path.exists():
            apply_baseline(result, load_baseline(baseline_path))
        else:
            print(f"warning: baseline file {baseline_path} not found; "
                  "running as if empty")
    if args.write_baseline:
        count = write_baseline(result, pathlib.Path(args.write_baseline))
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.write_baseline}")
        return 0
    if args.format == "json":
        print(findings_to_json(result), end="")
    elif args.format == "sarif":
        print(findings_to_sarif(result), end="")
    else:
        print(render_findings(result, verbose=args.verbose))
    return 0 if result.clean else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the ``simlint`` console script)."""
    import argparse

    parser = argparse.ArgumentParser(prog="simlint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    if argv is None:
        import sys

        argv = sys.argv[1:]
    return cmd_lint(parser.parse_args(["lint", *argv]))
