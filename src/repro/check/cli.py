"""The ``python -m repro lint`` subcommand."""

from __future__ import annotations

from repro.check.engine import lint_paths
from repro.check.reporting import findings_to_json, render_findings
from repro.check.rules import RULES

DEFAULT_PATHS = ["src"]


def add_lint_parser(sub) -> None:
    """Register the ``lint`` subcommand on the main argparse tree."""
    lint = sub.add_parser(
        "lint",
        help="run simlint, the simulation-invariant linter",
        description="Statically enforce determinism, write-barrier and "
                    "layering invariants. Exit 0 iff no findings.",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint (default: src)")
    lint.add_argument("--rule", action="append", dest="rules", default=None,
                      metavar="ID", choices=sorted(RULES),
                      help="check only this rule (repeatable)")
    lint.add_argument("--format", choices=["human", "json"], default="human",
                      help="report format (default human)")
    lint.add_argument("--verbose", action="store_true",
                      help="include each finding's rationale")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")


def cmd_lint(args) -> int:
    if args.list_rules:
        for rule_id, rule in RULES.items():
            print(f"{rule_id}  [{rule.severity}]  {rule.summary}")
        return 0
    result = lint_paths(args.paths or DEFAULT_PATHS, rule_ids=args.rules)
    if args.format == "json":
        print(findings_to_json(result), end="")
    else:
        print(render_findings(result, verbose=args.verbose))
    return 0 if result.clean else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the ``simlint`` console script)."""
    import argparse

    parser = argparse.ArgumentParser(prog="simlint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    if argv is None:
        import sys

        argv = sys.argv[1:]
    return cmd_lint(parser.parse_args(["lint", *argv]))
