"""FrameSan: a runtime sanitizer for physical-frame lifecycle bugs.

Modelled on kernel sanitizers (KASAN's poison-on-free, SLUB debug's
sanity checks), scaled to the simulator's invariants:

* **Freed-frame poisoning + UAF detection** — every frame freed to the
  buddy allocator or VUsion's random pool is marked poisoned; any
  content read or write of a poisoned frame raises
  :class:`UseAfterFreeError` with the frame's recorded provenance.
  Poisoning is *shadow-state only* (the frame's bytes are untouched),
  so enabling the sanitizer cannot perturb simulation results — the
  same reason VUsion's share-before-use leaves page contents alone and
  flips only protection state.
* **Double-free / bad-free detection** — freeing a poisoned frame, a
  frame with a live refcount, live rmap entries, or a fusion pin
  raises :class:`DoubleFreeError` / :class:`BadFreeError`.
* **CoW-violation detection** — writing a frame with refcount > 1
  (shared by several mappings) without first unmerging/copying raises
  :class:`CowViolationError`.  ``corrupt_bit`` (Rowhammer) is exempt
  by design: flips bypassing CoW are the attack being studied.
* **End-of-run audit** — :meth:`FrameSan.audit` cross-checks refcounts
  against the rmap, flags leaked frames (allocated, unreachable,
  never freed) and verifies merge-charge accounting (every
  fusion-pinned frame carries exactly one pin reference; an engine's
  ``saved_frames()`` matches its ``sharing_pairs()`` ledger).

Activation: ``REPRO_SANITIZE=1`` in the environment (every ``Kernel``
then self-instruments), or explicitly via ``Kernel(sanitize=True)``.
The disabled cost is one attribute check per frame operation.

This module stays a runtime leaf (imported *by* ``repro.mem`` users
and ``repro.kernel``), so it may import only ``repro.errors``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.check.provenance import FrameProvenance
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fusion.base import FusionEngine
    from repro.mem.physmem import PhysicalMemory


def sanitizer_enabled(env: dict | None = None) -> bool:
    """True if ``REPRO_SANITIZE`` requests sanitizing (unset/0/off = no)."""
    value = (env if env is not None else os.environ).get("REPRO_SANITIZE", "")
    return str(value).strip().lower() not in ("", "0", "false", "off", "no")


class SanitizerError(ReproError):
    """Base class for FrameSan violations (structured, with provenance)."""

    def __init__(self, message: str, pfn: int | None = None,
                 provenance: str = "") -> None:
        self.pfn = pfn
        self.provenance = provenance
        self.diagnostic = f"[FrameSan:{type(self).__name__}] {message}"
        if provenance:
            self.diagnostic += f" | {provenance}"
        super().__init__(self.diagnostic)


class UseAfterFreeError(SanitizerError):
    """A freed (poisoned) frame's content was read or written."""


class DoubleFreeError(SanitizerError):
    """A frame already poisoned as free was freed again."""


class BadFreeError(SanitizerError):
    """A frame was freed while still referenced, mapped or pinned."""


class CowViolationError(SanitizerError):
    """A shared frame (refcount > 1) was written without unmerge/copy."""


class AccountingError(SanitizerError):
    """Refcount/rmap/merge-charge bookkeeping is inconsistent."""


class _ZeroClock:
    now = 0


class FrameSan:
    """The sanitizer: shadow poison state + lifecycle checks + audits.

    One instance per :class:`~repro.mem.physmem.PhysicalMemory`; the
    kernel attaches it to the frame store, the buddy allocator and
    (via ``kernel.sanitizer``) the random frame pool.
    """

    def __init__(self, physmem: "PhysicalMemory", clock=None,
                 zero_frame: int = 0, reserved_frames: int = 0) -> None:
        self.physmem = physmem
        self.clock = clock if clock is not None else _ZeroClock()
        self.zero_frame = zero_frame
        self.reserved_frames = reserved_frames
        self.provenance = FrameProvenance()
        #: pfn -> origin string of the poisoning free.
        self._poisoned: dict[int, str] = {}
        self.stats = {
            "allocs": 0, "frees": 0, "reserves": 0, "releases": 0,
            "reads_checked": 0, "writes_checked": 0, "audits": 0,
        }

    @classmethod
    def from_env(cls, physmem: "PhysicalMemory", clock=None,
                 zero_frame: int = 0, reserved_frames: int = 0,
                 force: bool | None = None) -> "FrameSan | None":
        """Build a sanitizer iff requested (``force`` overrides the env)."""
        enabled = sanitizer_enabled() if force is None else force
        if not enabled:
            return None
        return cls(physmem, clock=clock, zero_frame=zero_frame,
                   reserved_frames=reserved_frames)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_poisoned(self, pfn: int) -> bool:
        return pfn in self._poisoned

    def poisoned_count(self) -> int:
        return len(self._poisoned)

    # ------------------------------------------------------------------
    # Lifecycle hooks (buddy allocator, random pool)
    # ------------------------------------------------------------------
    def on_alloc(self, pfn: int, count: int = 1, origin: str = "buddy") -> None:
        """Frames handed out for use: clear poison, record provenance."""
        now = self.clock.now
        for frame in range(pfn, pfn + count):
            self._poisoned.pop(frame, None)
            self.provenance.record(frame, now, "alloc", origin)
        self.stats["allocs"] += count

    def on_free(self, pfn: int, count: int = 1, origin: str = "buddy") -> None:
        """Frames released: check the free is sane, then poison."""
        physmem = self.physmem
        now = self.clock.now
        for frame in range(pfn, pfn + count):
            if frame in self._poisoned:
                raise DoubleFreeError(
                    f"pfn {frame} freed to {origin} but already poisoned "
                    f"by a {self._poisoned[frame]} free",
                    pfn=frame, provenance=self.provenance.describe(frame),
                )
            refcount = physmem.refcount(frame)
            if refcount > 0:
                raise BadFreeError(
                    f"pfn {frame} freed to {origin} with live "
                    f"refcount {refcount}",
                    pfn=frame, provenance=self.provenance.describe(frame),
                )
            mappings = physmem.rmap(frame)
            if mappings:
                raise BadFreeError(
                    f"pfn {frame} freed to {origin} while still mapped "
                    f"by {sorted(mappings)}",
                    pfn=frame, provenance=self.provenance.describe(frame),
                )
            if physmem.is_fused(frame):
                raise BadFreeError(
                    f"pfn {frame} freed to {origin} while fusion-pinned",
                    pfn=frame, provenance=self.provenance.describe(frame),
                )
            self._poisoned[frame] = origin
            self.provenance.record(frame, now, "free", origin)
        self.stats["frees"] += count

    def on_reserve(self, pfn: int, origin: str = "pool") -> None:
        """A live frame became reserve capacity (random-pool refill):
        poison it without free-checks — it holds no data."""
        self._poisoned[pfn] = origin
        self.provenance.record(pfn, self.clock.now, "reserve", origin)
        self.stats["reserves"] += 1

    def on_release(self, pfn: int, origin: str = "pool") -> None:
        """Reserve capacity returned to the buddy (spill/drain): clear
        poison so the buddy-free hook re-poisons it cleanly."""
        self._poisoned.pop(pfn, None)
        self.provenance.record(pfn, self.clock.now, "release", origin)
        self.stats["releases"] += 1

    # ------------------------------------------------------------------
    # Content hooks (PhysicalMemory)
    # ------------------------------------------------------------------
    def on_read(self, pfn: int) -> None:
        self.stats["reads_checked"] += 1
        if pfn in self._poisoned:
            raise UseAfterFreeError(
                f"read of freed pfn {pfn} (poisoned by "
                f"{self._poisoned[pfn]} free)",
                pfn=pfn, provenance=self.provenance.describe(pfn),
            )

    def on_write(self, pfn: int) -> None:
        self.stats["writes_checked"] += 1
        if pfn in self._poisoned:
            raise UseAfterFreeError(
                f"write to freed pfn {pfn} (poisoned by "
                f"{self._poisoned[pfn]} free)",
                pfn=pfn, provenance=self.provenance.describe(pfn),
            )
        refcount = self.physmem.refcount(pfn)
        if refcount > 1:
            raise CowViolationError(
                f"write to shared pfn {pfn} (refcount {refcount}) without "
                "unmerge/copy-on-write",
                pfn=pfn, provenance=self.provenance.describe(pfn),
            )

    # ------------------------------------------------------------------
    # End-of-run audits
    # ------------------------------------------------------------------
    def audit(self, fusion: "FusionEngine | None" = None) -> list[str]:
        """Cross-check frame accounting; returns problem descriptions."""
        self.stats["audits"] += 1
        physmem = self.physmem
        problems: list[str] = []
        # Frames queued for deferred freeing (VUsion decision (ii)) are
        # unreferenced by design until the next daemon drain — in
        # flight, not leaked.
        in_flight = (
            frozenset(fusion.pending_frees()) if fusion is not None
            else frozenset()
        )
        for pfn in range(physmem.num_frames):
            # Compare FrameType by value so this module needs no
            # repro.mem import (it must stay a runtime leaf — LAY001).
            frame_type = physmem.frame_type(pfn)
            refcount = physmem.refcount(pfn)
            mappings = physmem.rmap(pfn)
            pinned = physmem.is_fused(pfn)
            if frame_type.value == "free":
                if refcount:
                    problems.append(
                        f"free pfn {pfn} has refcount {refcount}; "
                        + self.provenance.describe(pfn)
                    )
                if mappings:
                    problems.append(
                        f"free pfn {pfn} still mapped by {sorted(mappings)}; "
                        + self.provenance.describe(pfn)
                    )
                if pinned:
                    problems.append(
                        f"free pfn {pfn} still fusion-pinned; "
                        + self.provenance.describe(pfn)
                    )
                continue
            if pfn in self._poisoned:
                problems.append(
                    f"poisoned pfn {pfn} typed {frame_type.value} (freed "
                    "frame back in use without allocation); "
                    + self.provenance.describe(pfn)
                )
            if refcount < len(mappings):
                problems.append(
                    f"pfn {pfn} undercounted: refcount {refcount} < "
                    f"{len(mappings)} rmap entries; "
                    + self.provenance.describe(pfn)
                )
            if pinned and pfn != self.zero_frame:
                # Merge-charge invariant: a stable/fused node holds
                # exactly one pin reference on top of its mappings.
                if refcount != len(mappings) + 1:
                    problems.append(
                        f"fused pfn {pfn} breaks pin accounting: refcount "
                        f"{refcount} != {len(mappings)} mappings + 1 pin; "
                        + self.provenance.describe(pfn)
                    )
            if (
                refcount == 0
                and not mappings
                and not pinned
                and frame_type.value != "kernel"
                and pfn not in in_flight
            ):
                problems.append(
                    f"leaked pfn {pfn}: typed {frame_type.value} but "
                    "unreferenced and unmapped; "
                    + self.provenance.describe(pfn)
                )
        if fusion is not None:
            problems.extend(self.check_fusion_accounting(fusion))
        problems.extend(self.check_arena_accounting())
        return problems

    def check_arena_accounting(self) -> list[str]:
        """Cross-check the content arena against the frame column.

        Columnar store only (no-op on legacy): every live content id's
        refcount must equal the number of frames currently holding it
        (plus the arena's own permanent reference on the zero id), and
        no frame may point at a recycled slot — the arena-level
        equivalents of the refcount-vs-rmap checks above.
        """
        physmem = self.physmem
        arena = getattr(physmem, "arena", None)
        if arena is None:
            return []
        problems: list[str] = []
        held: dict[int, int] = {}
        for pfn in range(physmem.num_frames):
            cid = physmem.content_id(pfn)
            held[cid] = held.get(cid, 0) + 1
        for cid in sorted(held):
            expected = held[cid] + (1 if cid == arena.zero_id else 0)
            actual = arena.refcount(cid)
            if actual != expected:
                problems.append(
                    f"arena cid {cid}: refcount {actual} != {held[cid]} "
                    f"holding frame(s)"
                    + (" + 1 permanent zero ref" if cid == arena.zero_id else "")
                )
        live = set(arena.live_ids())
        expected_live = set(held) | {arena.zero_id}
        if live != expected_live:
            stray = sorted(live - expected_live)
            dead = sorted(expected_live - live)
            if stray:
                problems.append(
                    f"arena entries live with no holding frame: {stray}"
                )
            if dead:
                problems.append(
                    f"frames point at recycled arena slots: {dead}"
                )
        return problems

    def check_fusion_accounting(self, fusion: "FusionEngine") -> list[str]:
        """Cross-check an engine's merge-charge ledger against itself."""
        problems: list[str] = []
        saved = fusion.saved_frames()
        if saved < 0:
            problems.append(
                f"{fusion.name}: negative saved_frames() ({saved})"
            )
        pages_shared, pages_sharing = fusion.sharing_pairs()
        if pages_shared < 0 or pages_sharing < 0:
            problems.append(
                f"{fusion.name}: negative sharing pair "
                f"({pages_shared}, {pages_sharing})"
            )
        if (pages_shared, pages_sharing) != (0, 0):
            if pages_sharing < pages_shared:
                problems.append(
                    f"{fusion.name}: pages_sharing {pages_sharing} < "
                    f"pages_shared {pages_shared}"
                )
            if saved != pages_sharing - pages_shared:
                problems.append(
                    f"{fusion.name}: saved_frames() {saved} != "
                    f"pages_sharing - pages_shared "
                    f"({pages_sharing} - {pages_shared})"
                )
        return problems

    def assert_clean(self, fusion: "FusionEngine | None" = None) -> None:
        """Raise :class:`AccountingError` if the audit finds problems."""
        problems = self.audit(fusion)
        if problems:
            shown = "; ".join(problems[:5])
            if len(problems) > 5:
                shown += f"; ... ({len(problems) - 5} more)"
            raise AccountingError(
                f"frame audit found {len(problems)} problem(s): {shown}"
            )
