"""simflow's flow-sensitive rules: the paper's path invariants.

Where :mod:`repro.check.rules` bans single constructs, the rules here
encode *protocols* — properties of call sequences along control-flow
paths, checked on the CFGs of :mod:`repro.check.cfg` with the solvers
of :mod:`repro.check.lattice`:

* **FLOW001** — the Shared ⊕ accessible-mapping discipline (VUsion's
  SB principle, PAPER.md §6): no path may give a shared frame an
  accessible (non-fused-flags) mapping, and no path may mark a frame
  shared while it still holds an accessible mapping.
* **FLOW002** — charge/ledger exception safety: every path that
  performs a merge/unmerge mutation (``map_page``/``unmap_page``) must
  reach a ledger update (stats counter, clock charge, event emit)
  before the normal exit — a dominator-or-finally check; explicit
  ``raise`` aborts are exempt, exception-swallowing handlers are not.
* **FLOW003** — frame-handle escape/leak: a pfn returned by a
  ``BuddyAllocator``/random-pool/``alloc_frame`` call must, on every
  path, be mapped, freed, stored or returned — the static twin of
  FrameSan's end-of-run leak audit.  ``@escapes_frame`` (see
  :mod:`repro.annotations`) marks allocator front-ends whose handles
  escape by contract.
* **FLOW004** — taint into artifacts: values derived from the wall
  clock, the global RNG or builtin ``hash()`` may not flow into
  artifact writes or out of ``execute_task`` / ``@artifact_boundary``
  functions — the flow-sensitive generalization of DET001/002/004 for
  the modules those rules exempt.

Rules are intraprocedural and deliberately tuned to this codebase's
idioms; the mutation meta-test (``tests/test_simflow_mutations.py``)
pins both directions — seeded bugs are caught, the pristine tree is
clean.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.check.cfg import FunctionCFG
from repro.check.lattice import (
    MutableState,
    State,
    apply_block,
    solve_forward,
    solve_must_reach,
)
from repro.check.rules import _dotted, _in_packages

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.engine import LintContext

#: A report callback: (rule_id, node-with-location, message).
Report = Callable[[str, ast.AST, str], None]


@dataclass(frozen=True)
class FlowRule:
    """One flow-sensitive invariant, checked per function CFG."""

    id: str
    severity: str
    summary: str
    rationale: str
    checker: Callable[["LintContext", FunctionCFG], None]
    #: Predicate over the dotted module path, as for AST rules.
    applies_to: Callable[[str], bool] = field(default=lambda module: True)

    def applies(self, module: str) -> bool:
        return self.applies_to(module)


#: Registry of flow rules, id -> rule (insertion order is report order).
FLOW_RULES: dict[str, FlowRule] = {}


def register_flow(rule: FlowRule) -> FlowRule:
    if rule.id in FLOW_RULES:
        raise ValueError(f"duplicate flow rule id {rule.id}")
    FLOW_RULES[rule.id] = rule
    return rule


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
class _Pos:
    """A minimal location carrier for reports not tied to one node."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def _callee(call: ast.Call) -> str | None:
    """Last name component of the called expression."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _call_arguments(call: ast.Call) -> list[ast.expr]:
    return [*call.args, *(keyword.value for keyword in call.keywords)]


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _reporting_pass(
    cfg: FunctionCFG,
    pre_states: dict[int, dict[str, frozenset[str]]],
    transfer: Callable[[ast.AST, MutableState], None],
) -> None:
    """Re-run ``transfer`` (now reporting) over every reachable block."""
    for block_id, state in pre_states.items():
        apply_block(cfg.block(block_id), state, transfer)


# ----------------------------------------------------------------------
# FLOW001 — Shared ⊕ accessible-mapping discipline
# ----------------------------------------------------------------------
_ALLOC_CALLEES = frozenset({"alloc", "alloc_specific", "alloc_frame"})
_FUSED_FLAG_MARKERS = ("FUSED", "RESERVED", "fused")

#: Frame-state facts.
_PRIVATE = "private"
_SHARED = "shared"
_ACCESSIBLE = "accessible"


def _flags_are_fused(expr: ast.expr) -> bool:
    """True if a flags expression goes through the fused/reserved path.

    Matches the engine idioms: ``self._fused_flags`` (attribute or
    call), the ``FUSED_FLAGS*`` constants, and any inline combination
    naming ``PteFlags.FUSED`` / ``PteFlags.RESERVED``.
    """
    text = ast.unparse(expr)
    return any(marker in text for marker in _FUSED_FLAG_MARKERS)


def _map_page_operands(call: ast.Call) -> tuple[ast.expr, ast.expr] | None:
    """Extract ``(pfn, flags)`` from a ``map_page`` call, if recognizable.

    Handles both call shapes in the tree: the kernel facade
    ``map_page(process, vaddr, pfn, flags)`` and the page-table API
    ``map_page(base, pfn, flags)``; ``flags`` may be a keyword.
    """
    if _callee(call) != "map_page":
        return None
    keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    args = call.args
    if "flags" in keywords and len(args) >= 2:
        return args[-1], keywords["flags"]
    if len(args) == 4:
        return args[2], args[3]
    if len(args) == 3:
        return args[1], args[2]
    return None


def _sole_name_assign(node: ast.AST) -> tuple[str, ast.expr] | None:
    """``x = <expr>`` with a single plain-name target, else None."""
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
    ):
        return node.targets[0].id, node.value
    return None


def _make_flow001_transfer(report: Report | None) -> Callable[[ast.AST, MutableState], None]:
    def transfer(node: ast.AST, state: MutableState) -> None:
        assigned = _sole_name_assign(node)
        if (
            assigned is not None
            and isinstance(assigned[1], ast.Call)
            and _callee(assigned[1]) in _ALLOC_CALLEES
        ):
            state.replace(assigned[0], _PRIVATE)
            return
        for call in _calls_in(node):
            callee = _callee(call)
            if callee == "pin_fused" and call.args and isinstance(call.args[0], ast.Name):
                var = call.args[0].id
                if state.has(var, _ACCESSIBLE) and report is not None:
                    report(
                        "FLOW001", call,
                        f"frame '{var}' is marked shared (pin_fused) while a "
                        "path still holds an accessible mapping for it; remap "
                        "through the fused-flags path before sharing",
                    )
                state.add(var, _SHARED)
            elif callee == "unpin_fused" and call.args and isinstance(call.args[0], ast.Name):
                state.discard(call.args[0].id, _SHARED)
            elif callee == "map_page":
                operands = _map_page_operands(call)
                if operands is None:
                    continue
                pfn_expr, flags_expr = operands
                fused = _flags_are_fused(flags_expr)
                if isinstance(pfn_expr, ast.Name):
                    var = pfn_expr.id
                    if not fused and state.has(var, _SHARED) and report is not None:
                        report(
                            "FLOW001", call,
                            f"path maps shared frame '{var}' with accessible "
                            f"(non-fused) flags {ast.unparse(flags_expr)!r} "
                            "without an intervening unshare/copy-on-access",
                        )
                    state.replace(var, _SHARED if fused else _ACCESSIBLE)
                elif (
                    isinstance(pfn_expr, ast.Attribute)
                    and pfn_expr.attr == "pfn"
                    and not fused
                    and report is not None
                ):
                    report(
                        "FLOW001", call,
                        f"stable-node frame {ast.unparse(pfn_expr)!r} mapped "
                        f"with accessible flags {ast.unparse(flags_expr)!r}; "
                        "shared frames may only be mapped through the "
                        "fused/reserved path (copy to a fresh frame first)",
                    )
        return

    return transfer


def _check_flow001(ctx: "LintContext", cfg: FunctionCFG) -> None:
    pre_states = solve_forward(cfg, _make_flow001_transfer(None))
    _reporting_pass(cfg, pre_states, _make_flow001_transfer(ctx.report))


register_flow(FlowRule(
    id="FLOW001",
    severity="error",
    summary="no path maps a shared frame accessible (S ⊕ F discipline)",
    rationale=(
        "VUsion's Same Behaviour guarantee is that a (fake-)merged page "
        "is Shared XOR accessibly-mapped: every share goes through the "
        "reserved-bit + cache-disable PTE path and every access takes "
        "the copy-on-access fault. One branch that maps a shared frame "
        "PRESENT/WRITABLE reopens the exact side channels (write timing, "
        "prefetch probing) the engine exists to close — and is invisible "
        "to line-based lint because each line looks fine in isolation."
    ),
    checker=_check_flow001,
    applies_to=_in_packages("repro.core", "repro.fusion", "repro.mmu"),
))


# ----------------------------------------------------------------------
# FLOW002 — charge/ledger exception safety
# ----------------------------------------------------------------------
_CHARGE_CALLEES = frozenset({"advance", "emit", "charge"})
_MERGE_OP_CALLEES = frozenset({"map_page", "unmap_page"})


def _is_charge_node(node: ast.AST) -> bool:
    """True if the node updates the merge ledger / simulated costs."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            callee = _callee(sub)
            if callee in _CHARGE_CALLEES:
                return True
            if callee == "append" and isinstance(sub.func, ast.Attribute):
                receiver = _dotted(sub.func.value)
                if receiver is not None and ("stats" in receiver or "log" in receiver):
                    return True
        elif isinstance(sub, ast.AugAssign) and isinstance(sub.target, ast.Attribute):
            dotted = _dotted(sub.target)
            if dotted is not None and (dotted.startswith("self.") or "stats" in dotted):
                return True
    return False


def _check_flow002(ctx: "LintContext", cfg: FunctionCFG) -> None:
    reachable = cfg.reachable_ids()
    charged_after: dict[int, bool] | None = None  # computed lazily
    for block_id in sorted(reachable):
        block = cfg.block(block_id)
        for index, node in enumerate(block.nodes):
            merge_calls = [
                call for call in _calls_in(node)
                if _callee(call) in _MERGE_OP_CALLEES
            ]
            if not merge_calls:
                continue
            if _is_charge_node(node) or any(
                _is_charge_node(later) for later in block.nodes[index + 1:]
            ):
                continue
            if charged_after is None:
                charged_after = solve_must_reach(
                    cfg,
                    lambda candidate: any(
                        _is_charge_node(n) for n in candidate.nodes
                    ),
                )
            if charged_after[block_id]:
                continue
            for call in merge_calls:
                ctx.report(
                    "FLOW002", call,
                    f"a path from this {_callee(call)}() reaches the end of "
                    f"{cfg.name}() without charging the merge ledger (stats "
                    "counter, clock.advance or event emit); add the charge "
                    "on every exit path or in a finally block",
                )


register_flow(FlowRule(
    id="FLOW002",
    severity="error",
    summary="every merge/unmerge path charges the ledger before exit",
    rationale=(
        "The paper's accounting (merge charges, deferred-free dummies, "
        "cost model) only means anything if every map/unmap mutation is "
        "matched by its ledger update on *every* path — an early return "
        "or a swallowed exception that skips the charge silently skews "
        "saved-frames and timing results while all tests still pass. "
        "Explicit raise paths are deliberate aborts and are exempt."
    ),
    checker=_check_flow002,
    applies_to=_in_packages("repro.core", "repro.fusion"),
))


# ----------------------------------------------------------------------
# FLOW003 — frame-handle escape/leak
# ----------------------------------------------------------------------
_FRAME_SOURCES = frozenset({"alloc", "alloc_specific", "alloc_frame", "_pop_free"})
#: Calls that take ownership of (or register) a raw pfn argument.
_FRAME_CONSUMERS = frozenset({
    "map_page", "free", "free_frame", "queue_free", "write", "set_frame_type",
    "append", "appendleft", "insert", "add", "push", "pin_fused", "get_ref",
    "put_ref", "on_alloc", "on_free", "_insert_free", "release_after_unmap",
})
_FRESH_PREFIX = "fresh@"


def _fresh_fact(call: ast.Call) -> str:
    return f"{_FRESH_PREFIX}{call.lineno}:{call.col_offset}"


def _consumed_names(node: ast.AST) -> set[str]:
    """Names whose frame ownership this node transfers somewhere."""
    consumed: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _callee(sub) in _FRAME_CONSUMERS:
            for arg in _call_arguments(sub):
                consumed |= _names_in(arg)
        elif isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            if sub.value is not None:
                consumed |= _names_in(sub.value)
    if isinstance(node, ast.Assign):
        if any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in node.targets
        ):
            # Stored into an object or container: tracked elsewhere now.
            consumed |= _names_in(node.value)
        elif all(isinstance(target, ast.Name) for target in node.targets):
            # Plain aliasing (`head = pfn`) moves the handle.
            consumed |= _names_in(node.value)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and node.value is not None:
        consumed |= _names_in(node.value)
    return consumed


def _source_call_of(node: ast.AST) -> ast.Call | None:
    assigned = _sole_name_assign(node)
    if (
        assigned is not None
        and isinstance(assigned[1], ast.Call)
        and _callee(assigned[1]) in _FRAME_SOURCES
    ):
        return assigned[1]
    return None


def _make_flow003_transfer(report: Report | None) -> Callable[[ast.AST, MutableState], None]:
    def transfer(node: ast.AST, state: MutableState) -> None:
        for name in _consumed_names(node):
            state.clear(name)
        source = _source_call_of(node)
        if source is not None:
            assigned = _sole_name_assign(node)
            assert assigned is not None
            var = assigned[0]
            if report is not None and any(
                fact.startswith(_FRESH_PREFIX) for fact in state.facts(var)
            ):
                report(
                    "FLOW003", source,
                    f"frame handle '{var}' is re-allocated while a path "
                    "still holds its previous, unreleased frame",
                )
            state.replace(var, _fresh_fact(source))
            return
        # A bare alloc whose result is discarded leaks unconditionally
        # (alloc_specific exempt: its argument *is* the handle).
        if (
            report is not None
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and _callee(node.value) in (_FRAME_SOURCES - {"alloc_specific"})
        ):
            report(
                "FLOW003", node.value,
                "allocated frame handle is discarded (call result unused); "
                "the pfn can never be freed, mapped or stored",
            )
        # Plain reassignment drops a still-fresh handle.
        assigned = _sole_name_assign(node)
        if assigned is not None and report is not None:
            var, value = assigned
            if var not in _names_in(value) and any(
                fact.startswith(_FRESH_PREFIX) for fact in state.facts(var)
            ):
                report(
                    "FLOW003", node,
                    f"frame handle '{var}' is overwritten before the frame "
                    "is freed, mapped, stored or returned",
                )
        if assigned is not None and assigned[0] not in _names_in(assigned[1]):
            state.clear(assigned[0])

    return transfer


def _check_flow003(ctx: "LintContext", cfg: FunctionCFG) -> None:
    if "escapes_frame" in cfg.decorator_names():
        return
    pre_states = solve_forward(cfg, _make_flow003_transfer(None))
    _reporting_pass(cfg, pre_states, _make_flow003_transfer(ctx.report))
    # Any handle still fresh at an exit leaked on some path.
    for exit_id in (cfg.exit, cfg.raise_exit):
        for var, facts in sorted(pre_states.get(exit_id, {}).items()):
            for fact in sorted(facts):
                if not fact.startswith(_FRESH_PREFIX):
                    continue
                line, _, col = fact[len(_FRESH_PREFIX):].partition(":")
                where = "an explicit raise" if exit_id == cfg.raise_exit else "return"
                ctx.report(
                    "FLOW003", _Pos(int(line), int(col)),
                    f"frame handle '{var}' allocated here may reach "
                    f"{where} in {cfg.name}() without being freed, "
                    "mapped, stored or returned (frame leak)",
                )


register_flow(FlowRule(
    id="FLOW003",
    severity="error",
    summary="allocated frame handles are freed, stored or returned on every path",
    rationale=(
        "A pfn handed out by the buddy allocator, the random pool or "
        "kernel.alloc_frame is a capability: a path that drops it leaks "
        "the frame (shrinking the fusable pool and skewing saved-frames "
        "accounting) in a way FrameSan only catches at end of run, on "
        "runs that happen to execute that path. This is the static twin "
        "of FrameSan's leak audit. Allocator front-ends whose handles "
        "escape by contract carry @escapes_frame (repro.annotations)."
    ),
    checker=_check_flow003,
    applies_to=_in_packages("repro.core", "repro.fusion", "repro.mem"),
))


# ----------------------------------------------------------------------
# FLOW004 — taint into artifacts
# ----------------------------------------------------------------------
_TAINT_SOURCE_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "os.getpid",
})
_SEEDED_RNG_ATTRS = frozenset({"Random", "SystemRandom"})
_ARTIFACT_SINK_CALLEES = frozenset({
    "write_text", "write_bytes", "write_artifact", "write_artifacts", "dump",
})
_TAINTED = "tainted"


def _is_taint_source(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    if dotted in _TAINT_SOURCE_CALLS:
        return True
    if isinstance(call.func, ast.Name) and call.func.id == "hash":
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "random"
        and call.func.attr not in _SEEDED_RNG_ATTRS
    )


def _expr_tainted(expr: ast.AST, state: MutableState) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and state.has(sub.id, _TAINTED):
            return True
        if isinstance(sub, ast.Call) and _is_taint_source(sub):
            return True
    return False


def _make_flow004_transfer(
    report: Report | None, returns_are_sinks: bool
) -> Callable[[ast.AST, MutableState], None]:
    def transfer(node: ast.AST, state: MutableState) -> None:
        if report is not None:
            for call in _calls_in(node):
                if _callee(call) not in _ARTIFACT_SINK_CALLEES:
                    continue
                for arg in _call_arguments(call):
                    if _expr_tainted(arg, state):
                        report(
                            "FLOW004", call,
                            "nondeterministic value (wall clock / global RNG "
                            "/ builtin hash) flows into an artifact write; "
                            "artifacts must be a pure function of "
                            "(spec, seed)",
                        )
                        break
            if (
                returns_are_sinks
                and isinstance(node, ast.Return)
                and node.value is not None
                and _expr_tainted(node.value, state)
            ):
                report(
                    "FLOW004", node,
                    "nondeterministic value (wall clock / global RNG / "
                    "builtin hash) is returned from an artifact-producing "
                    "function (execute_task / @artifact_boundary)",
                )
        if isinstance(node, ast.Assign):
            tainted = _expr_tainted(node.value, state)
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        if tainted:
                            state.add(name.id, _TAINTED)
                        else:
                            state.discard(name.id, _TAINTED)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is not None and _expr_tainted(node.value, state):
                target = node.target
                if isinstance(target, ast.Name):
                    state.add(target.id, _TAINTED)

    return transfer


def _check_flow004(ctx: "LintContext", cfg: FunctionCFG) -> None:
    returns_are_sinks = (
        cfg.name == "execute_task"
        or "artifact_boundary" in cfg.decorator_names()
    )
    pre_states = solve_forward(cfg, _make_flow004_transfer(None, returns_are_sinks))
    _reporting_pass(
        cfg, pre_states, _make_flow004_transfer(ctx.report, returns_are_sinks)
    )


register_flow(FlowRule(
    id="FLOW004",
    severity="error",
    summary="no wall-clock/RNG/hash() taint into artifacts or execute_task returns",
    rationale=(
        "The runner may read the host clock for scheduling — DET001 "
        "exempts it — but the byte-identical artifact contract means "
        "none of that nondeterminism may *flow* into anything persisted "
        "under results/ or returned from execute_task. This rule tracks "
        "the flow the line-based DET rules cannot: a timestamp computed "
        "three statements earlier reaching a write_text ten lines later."
    ),
    checker=_check_flow004,
    applies_to=_in_packages("repro.runner", "repro.harness", "repro.analysis"),
))
