"""simflow's dataflow engine: pluggable lattices + a worklist solver.

Two solvers cover the rule families:

* :func:`solve_forward` — a forward may/must analysis over the
  *variable-fact map* lattice: states map variable names to frozensets
  of string facts, joined key-wise (union for may-analyses — the only
  join the built-in rules need).  Transfer functions mutate a
  :class:`MutableState` one block element at a time, so the same
  transfer code runs the fixpoint *and* (with reporting enabled) the
  final diagnostics pass.
* :func:`solve_must_reach` — a backward all-paths reachability: "does
  every path from here to the normal exit pass an *event*?"  This is
  the dominator-or-finally check FLOW002 builds on.

Forward propagation respects edge semantics: ``EXCEPTION`` edges carry
the block's *pre* state (a statement may raise before completing), all
other edges carry the *post* state.
"""

from __future__ import annotations

import ast
from typing import Callable, Mapping

from repro.check.cfg import EXCEPTION, BasicBlock, FunctionCFG

#: An immutable dataflow state: variable name -> set of facts.
State = Mapping[str, frozenset[str]]

EMPTY_STATE: dict[str, frozenset[str]] = {}


def join(left: State, right: State) -> dict[str, frozenset[str]]:
    """Key-wise union of two fact maps (the may-analysis join)."""
    merged: dict[str, frozenset[str]] = dict(left)
    for name, facts in right.items():
        if name in merged:
            merged[name] = merged[name] | facts
        else:
            merged[name] = facts
    return merged


class MutableState:
    """A mutable view of one block's evolving state, for transfers."""

    def __init__(self, initial: State) -> None:
        self._facts: dict[str, frozenset[str]] = dict(initial)

    def facts(self, name: str) -> frozenset[str]:
        return self._facts.get(name, frozenset())

    def has(self, name: str, fact: str) -> bool:
        return fact in self._facts.get(name, frozenset())

    def add(self, name: str, fact: str) -> None:
        self._facts[name] = self._facts.get(name, frozenset()) | {fact}

    def discard(self, name: str, fact: str) -> None:
        existing = self._facts.get(name)
        if existing is not None and fact in existing:
            self._facts[name] = existing - {fact}

    def replace(self, name: str, *facts: str) -> None:
        self._facts[name] = frozenset(facts)

    def clear(self, name: str) -> None:
        self._facts.pop(name, None)

    def items(self) -> list[tuple[str, frozenset[str]]]:
        return list(self._facts.items())

    def snapshot(self) -> dict[str, frozenset[str]]:
        return dict(self._facts)


#: A transfer function: apply one block element to the state.  When
#: ``report`` is None the solver is computing the fixpoint; when set,
#: this is the diagnostics pass and violations should be reported.
Transfer = Callable[[ast.AST, MutableState], None]


def apply_block(block: BasicBlock, state: State, transfer: Transfer) -> dict[str, frozenset[str]]:
    """Run ``transfer`` over every node of ``block``; return post state."""
    mutable = MutableState(state)
    for node in block.nodes:
        transfer(node, mutable)
    return mutable.snapshot()


def solve_forward(
    cfg: FunctionCFG,
    transfer: Transfer,
    initial: State = EMPTY_STATE,
) -> dict[int, dict[str, frozenset[str]]]:
    """Forward worklist fixpoint; returns the *pre* state per block id.

    Only blocks reachable from the entry get a state — unreachable
    blocks are absent from the result, and callers should skip them in
    diagnostics passes (facts there would be fabricated).
    """
    pre: dict[int, dict[str, frozenset[str]]] = {cfg.entry: dict(initial)}
    worklist: list[int] = [cfg.entry]
    while worklist:
        block_id = worklist.pop()
        block = cfg.block(block_id)
        in_state = pre[block_id]
        post = apply_block(block, in_state, transfer)
        for succ_id, kind in block.succs:
            flowed = in_state if kind == EXCEPTION else post
            if succ_id in pre:
                merged = join(pre[succ_id], flowed)
                if merged == pre[succ_id]:
                    continue
                pre[succ_id] = merged
            else:
                pre[succ_id] = dict(flowed)
            worklist.append(succ_id)
    return pre


def solve_must_reach(
    cfg: FunctionCFG,
    block_has_event: Callable[[BasicBlock], bool],
) -> dict[int, bool]:
    """All-paths event reachability, backward from the normal exit.

    Returns ``reached_after[block]``: True iff every path that starts
    *after* block's own nodes and ends at the normal exit passes
    through a block containing the event.  Paths into the raise exit
    are vacuously satisfied — an explicit ``raise`` is a deliberate
    abort, not a completed operation that owes its ledger update.
    ``EXCEPTION`` edges *do* participate: a handler that swallows the
    exception and returns is a real path to the exit.
    """
    # Optimistic initialization (True), then strip to the greatest
    # fixpoint with AND over successors.
    reached_after: dict[int, bool] = {
        block_id: True for block_id in cfg.blocks
    }
    # A block's "in" value: does every exit-bound path from the *start*
    # of the block pass an event?
    def reached_from_start(block_id: int) -> bool:
        if block_id == cfg.exit:
            return False
        if block_id == cfg.raise_exit:
            return True
        block = cfg.block(block_id)
        if block_has_event(block):
            return True
        return reached_after[block_id]

    changed = True
    while changed:
        changed = False
        for block_id, block in cfg.blocks.items():
            if block_id in (cfg.exit, cfg.raise_exit):
                continue
            successors = [succ for succ, _kind in block.succs]
            if successors:
                value = all(
                    reached_from_start(succ)
                    for succ in successors
                    if succ != cfg.raise_exit
                )
            else:
                # Dead-end block (no successors): treat as vacuous.
                value = True
            if value != reached_after[block_id]:
                reached_after[block_id] = value
                changed = True
    return reached_after
