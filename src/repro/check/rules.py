"""simlint's rule registry and the built-in simulation-invariant rules.

A rule is an id, a severity, a one-line summary and a *checker
factory*: given a :class:`~repro.check.engine.LintContext` it returns
an ``ast.NodeVisitor`` that reports findings through the context.
Rules may scope themselves to parts of the tree via ``applies_to``
(a predicate over the dotted module path), so e.g. the wall-clock ban
exempts the runner, whose scheduling metadata is *supposed* to measure
real time.

Suppression: append ``# simlint: disable=RULE[,RULE...]`` (or
``disable=all``) to the offending line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.engine import LintContext


@dataclass(frozen=True)
class Rule:
    """One enforceable invariant."""

    id: str
    severity: str                 #: "error" | "warning"
    summary: str
    rationale: str
    checker: Callable[["LintContext"], ast.NodeVisitor]
    #: Predicate over the dotted module path ("repro.mem.physmem").
    applies_to: Callable[[str], bool] = field(default=lambda module: True)

    def applies(self, module: str) -> bool:
        return self.applies_to(module)


#: Global registry, id -> Rule (insertion order is report order).
RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule


def _dotted(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as 'a.b.c' (None if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _in_packages(*prefixes: str) -> Callable[[str], bool]:
    def predicate(module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in prefixes
        )
    return predicate


def _not_in_packages(*prefixes: str) -> Callable[[str], bool]:
    inside = _in_packages(*prefixes)
    return lambda module: not inside(module)


# ----------------------------------------------------------------------
# DET001 — no wall clock in simulation code
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
_WALL_CLOCK_IMPORTS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}


class _WallClockVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            self.ctx.report(
                "DET001", node,
                f"wall-clock call {dotted}() in simulation code; "
                "use kernel.clock (simulated time) instead",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_IMPORTS:
                    self.ctx.report(
                        "DET001", node,
                        f"'from time import {alias.name}' smuggles the "
                        "wall clock into simulation code",
                    )
        self.generic_visit(node)


register(Rule(
    id="DET001",
    severity="error",
    summary="no wall-clock reads outside repro.runner / benchmarks",
    rationale=(
        "Simulation results must be a pure function of (spec, seed); a "
        "time.time()/datetime.now() read silently breaks the -j1 == -jN "
        "byte-identical artifact guarantee. Simulated time lives in "
        "kernel.clock; only the runner (scheduling metadata) and "
        "benchmarks may consult the host clock."
    ),
    checker=_WallClockVisitor,
    applies_to=_not_in_packages("repro.runner", "benchmarks", "tests"),
))


# ----------------------------------------------------------------------
# DET002 — no module-level random
# ----------------------------------------------------------------------
_ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}


class _GlobalRandomVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in _ALLOWED_RANDOM_ATTRS
        ):
            self.ctx.report(
                "DET002", node,
                f"module-level random.{func.attr}() draws from the shared "
                "global RNG; construct a seeded random.Random and thread "
                "it explicitly",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_ATTRS:
                    self.ctx.report(
                        "DET002", node,
                        f"'from random import {alias.name}' binds the "
                        "global RNG; import random.Random and seed it",
                    )
        self.generic_visit(node)


register(Rule(
    id="DET002",
    severity="error",
    summary="no global-RNG random.* calls; RNGs are seeded and threaded",
    rationale=(
        "The global random module is process-wide mutable state: any "
        "import-order or call-order change reshuffles every consumer, "
        "and parallel workers diverge from serial runs. Every stochastic "
        "component takes an explicitly seeded random.Random."
    ),
    checker=_GlobalRandomVisitor,
))


# ----------------------------------------------------------------------
# DET003 — no unordered set/keys iteration in artifact/report paths
# ----------------------------------------------------------------------
def _is_unordered_iterable(node: ast.AST) -> str | None:
    """Name the unordered construct ``node`` evaluates to, if any."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys()"
    return None


class _UnorderedIterVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def _check_iter(self, iter_node: ast.AST) -> None:
        what = _is_unordered_iterable(iter_node)
        if what is not None:
            self.ctx.report(
                "DET003", iter_node,
                f"iterating {what} directly in an artifact/report path; "
                "wrap in sorted(...) (set order depends on the hash seed; "
                ".keys() order on insertion history)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


register(Rule(
    id="DET003",
    severity="error",
    summary="no bare set()/dict.keys() iteration in artifact/report code",
    rationale=(
        "Artifacts are compared byte-for-byte across worker counts and "
        "runs. Iterating a set whose elements are strings (or .keys() of "
        "a dict built in data-dependent order) feeds hash-seed- or "
        "history-dependent ordering straight into the output; sort "
        "first."
    ),
    checker=_UnorderedIterVisitor,
    applies_to=_in_packages("repro.analysis", "repro.runner", "repro.cli"),
))


# ----------------------------------------------------------------------
# DET004 — no builtin hash() (PYTHONHASHSEED-dependent)
# ----------------------------------------------------------------------
class _BuiltinHashVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self.ctx.report(
                "DET004", node,
                "builtin hash() is salted per process (PYTHONHASHSEED) "
                "for str/bytes; use zlib.crc32, hashlib or "
                "repro.runner.seeds.derive_seed for stable values",
            )
        self.generic_visit(node)


register(Rule(
    id="DET004",
    severity="error",
    summary="no builtin hash() for seeds, keys or ordering",
    rationale=(
        "hash(str) differs between interpreter invocations unless "
        "PYTHONHASHSEED is pinned, so any seed or ordering derived from "
        "it silently varies run to run — the exact failure mode the "
        "byte-identical artifact contract exists to prevent."
    ),
    checker=_BuiltinHashVisitor,
))


# ----------------------------------------------------------------------
# MEM001 — no write-barrier bypass on PhysicalMemory internals
# ----------------------------------------------------------------------
_PHYSMEM_INTERNALS = {
    # PhysicalMemory columns and counters.
    "_contents", "_refcount", "_types", "_rmap", "_versions",
    "_fusion_pinned", "_backing", "_cids", "_in_use", "_type_counts",
    "_mapped_cache",
    # ContentArena id tables, refcounts and mutators: interning is part
    # of the write barrier, so only repro.mem may retain/release ids.
    "_ids", "_payloads", "_digest_cache", "_free_ids",
    "_intern", "_retain", "_release",
    # FingerprintCache internals.
    "_digests", "_generations",
    # BuddyAllocator free lists and counter.
    "_free_lists", "_free_blocks", "_free_frames",
}


class _PhysmemInternalsVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _PHYSMEM_INTERNALS:
            self.ctx.report(
                "MEM001", node,
                f"direct access to frame-store internal .{node.attr} "
                "bypasses the write barrier (fingerprint invalidation, "
                "sanitizer hooks); go through the PhysicalMemory / "
                "BuddyAllocator API",
            )
        self.generic_visit(node)


register(Rule(
    id="MEM001",
    severity="error",
    summary="frame-store internals are mutated only inside repro.mem",
    rationale=(
        "PhysicalMemory.write/copy funnel every content mutation through "
        "the fingerprint write barrier and FrameSan hooks; a direct "
        "_contents[pfn] = ... keeps a stale digest alive and blinds the "
        "sanitizer — the simulator's equivalent of skipping the PTE "
        "reserved-bit trap VUsion relies on."
    ),
    checker=_PhysmemInternalsVisitor,
    applies_to=_not_in_packages("repro.mem", "tests", "benchmarks"),
))


# ----------------------------------------------------------------------
# MEM002 — no raw content-bytes comparison in fusion hot paths
# ----------------------------------------------------------------------
_CONTENT_READ_METHODS = {"read", "peek_content"}


class _ContentCompareVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for operand in (node.left, *node.comparators):
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Attribute)
                    and operand.func.attr in _CONTENT_READ_METHODS
                ):
                    self.ctx.report(
                        "MEM002", node,
                        f"comparing .{operand.func.attr}(...) content bytes "
                        "directly in an engine hot path; use "
                        "physmem.same_content(pfn, content) or bucket by "
                        "physmem.merge_key(pfn) (O(1) on the columnar store)",
                    )
                    break
        self.generic_visit(node)


register(Rule(
    id="MEM002",
    severity="error",
    summary="engines compare content identity via same_content/merge_key, "
            "not raw read() bytes",
    rationale=(
        "Content identity — not content bytes — is the primitive dedup "
        "operates on. A raw read(pfn) == content comparison in a scan "
        "loop is O(page) per probe and bypasses the columnar store's "
        "hash-consed fast path (interning makes same_content an object-"
        "identity check), silently reintroducing the per-frame costs "
        "the arena removed."
    ),
    checker=_ContentCompareVisitor,
    applies_to=_in_packages("repro.fusion", "repro.core"),
))


# ----------------------------------------------------------------------
# MEM003 — per-frame Python reductions in engine scan paths
# ----------------------------------------------------------------------
#: Per-frame PhysicalMemory accessors with a batch scan-kernel
#: equivalent (repro.mem.scankernel primitive named in the message).
_SCAN_KERNEL_EQUIVALENTS = {
    "refcount": "physmem.scan_kernel.refcount_sum(pfns)",
    "is_fused": "physmem.scan_kernel.any_fused(pfns)",
    "digest": "physmem.digests_many(pfns)",
    "generation": "physmem.scan_kernel.changed_since(pfns, snapshot)",
    "merge_key": "physmem.scan_kernel.group_by_content(pfns)",
}

_REDUCERS = {"sum", "any", "all"}


class _ScanLoopVisitor(ast.NodeVisitor):
    """Flags frame-at-a-time Python where a batch primitive exists.

    Two shapes: reductions (``sum``/``any``/``all``) over a
    comprehension whose element calls a per-frame accessor, and loops
    iterating ``mapped_frames()`` directly.  Both are interpreter-bound
    sweeps an engine performs once per scan pass or sample — the exact
    work :mod:`repro.mem.scankernel` vectorizes.
    """

    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    @staticmethod
    def _per_frame_accessor(tree: ast.AST) -> str | None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCAN_KERNEL_EQUIVALENTS
            ):
                return node.func.attr
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _REDUCERS
            and node.args
            and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp))
        ):
            accessor = self._per_frame_accessor(node.args[0].elt)
            if accessor is not None:
                self.ctx.report(
                    "MEM003", node,
                    f"{node.func.id}(...) over per-frame .{accessor}() calls "
                    "is an interpreter-bound sweep; use the batch primitive "
                    f"{_SCAN_KERNEL_EQUIVALENTS[accessor]}",
                )
        self.generic_visit(node)

    def _check_iter(self, iterator: ast.AST) -> None:
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Attribute)
            and iterator.func.attr == "mapped_frames"
        ):
            self.ctx.report(
                "MEM003", iterator,
                "frame-at-a-time loop over mapped_frames(); batch the "
                "sweep through physmem.scan_kernel (zero_frames / "
                "group_by_content / digest_sweep) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension


register(Rule(
    id="MEM003",
    severity="error",
    summary="engine scan paths batch frame sweeps through the scan "
            "kernel, not per-frame Python loops",
    rationale=(
        "A fusion engine asking a per-frame question N times from "
        "Python pays N method dispatches where the scan kernel answers "
        "once from the cid/generation/refcount columns (NumPy when "
        "available, array-module otherwise). At fleet scale the "
        "interpreter overhead dominates the simulation; "
        "tests/test_scan_kernel_differential.py proves the batch "
        "primitives are observation-equivalent, so there is no reason "
        "to keep scalar sweeps in repro.fusion or repro.core."
    ),
    checker=_ScanLoopVisitor,
    applies_to=_in_packages("repro.fusion", "repro.core"),
))


# ----------------------------------------------------------------------
# LAY001 — import layering
# ----------------------------------------------------------------------
#: package prefix -> import prefixes it must never depend on (checked
#: for every import statement outside ``if TYPE_CHECKING:`` blocks).
LAYERING: dict[str, tuple[str, ...]] = {
    "repro.errors": ("repro",),
    "repro.annotations": ("repro",),
    "repro.params": ("repro.mem", "repro.mmu", "repro.kernel",
                     "repro.fusion", "repro.core", "repro.runner"),
    "repro.mem": ("repro.mmu", "repro.cache", "repro.dram", "repro.kernel",
                  "repro.core", "repro.fusion", "repro.workloads",
                  "repro.attacks", "repro.harness", "repro.analysis",
                  "repro.runner", "repro.check", "repro.cli"),
    "repro.mmu": ("repro.mem", "repro.cache", "repro.dram", "repro.kernel",
                  "repro.core", "repro.fusion", "repro.workloads",
                  "repro.attacks", "repro.harness", "repro.analysis",
                  "repro.runner", "repro.check", "repro.cli"),
    "repro.cache": ("repro.kernel", "repro.core", "repro.fusion",
                    "repro.workloads", "repro.attacks", "repro.harness",
                    "repro.analysis", "repro.runner", "repro.cli"),
    "repro.dram": ("repro.kernel", "repro.core", "repro.fusion",
                   "repro.workloads", "repro.attacks", "repro.harness",
                   "repro.analysis", "repro.runner", "repro.cli"),
    "repro.kernel": ("repro.fusion", "repro.core", "repro.workloads",
                     "repro.attacks", "repro.harness", "repro.analysis",
                     "repro.runner", "repro.cli"),
    "repro.core": ("repro.workloads", "repro.attacks", "repro.harness",
                   "repro.analysis", "repro.runner", "repro.cli"),
    "repro.fusion": ("repro.workloads", "repro.attacks", "repro.harness",
                     "repro.analysis", "repro.runner", "repro.cli"),
    "repro.workloads": ("repro.core", "repro.fusion", "repro.attacks",
                        "repro.harness", "repro.analysis", "repro.runner",
                        "repro.cli"),
    "repro.attacks": ("repro.workloads", "repro.harness", "repro.analysis",
                      "repro.runner", "repro.cli"),
    "repro.analysis": ("repro.workloads", "repro.attacks", "repro.harness",
                       "repro.runner", "repro.cli"),
    "repro.defenses": ("repro.harness", "repro.analysis", "repro.runner",
                       "repro.cli"),
    "repro.harness": ("repro.runner", "repro.cli"),
    "repro.runner": ("repro.cli",),
    # The sanitizer is imported *by* the kernel, so the check package
    # must stay a leaf at runtime (lint-engine imports of repro.* are
    # fine only under TYPE_CHECKING).
    "repro.check": ("repro.mem", "repro.mmu", "repro.kernel", "repro.core",
                    "repro.fusion", "repro.workloads", "repro.attacks",
                    "repro.harness", "repro.analysis", "repro.runner",
                    "repro.cli"),
}

#: Modules importable from anywhere despite the layering map.
#: ``repro.runner.seeds`` is the runner's dependency-free leaf (pure
#: hashlib seed derivation); the harness spec layer shares it so
#: spec-driven and runner-driven seeds are one derivation, not two.
LAYERING_EXEMPT = frozenset({"repro.runner.seeds"})


def _forbidden_for(module: str) -> tuple[str, ...]:
    best = ""
    for prefix in LAYERING:
        if (module == prefix or module.startswith(prefix + ".")) and len(prefix) > len(best):
            best = prefix
    return LAYERING.get(best, ())


class _LayeringVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx
        self.forbidden = _forbidden_for(ctx.module)

    def _check(self, node: ast.AST, imported: str) -> None:
        if imported in LAYERING_EXEMPT:
            return
        for prefix in self.forbidden:
            if imported == prefix or imported.startswith(prefix + "."):
                self.ctx.report(
                    "LAY001", node,
                    f"layering violation: {self.ctx.module} must not "
                    f"import {imported} (lower layers cannot depend on "
                    "orchestration/measurement layers)",
                )
                return

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            self._check(node, node.module)

    def visit_If(self, node: ast.If) -> None:
        # Imports under `if TYPE_CHECKING:` never execute; skip the body.
        test = node.test
        name = test.attr if isinstance(test, ast.Attribute) else getattr(test, "id", None)
        if name == "TYPE_CHECKING":
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)


# ----------------------------------------------------------------------
# API001 — removed deprecation shims stay removed
# ----------------------------------------------------------------------
#: Pre-runner API names that went through a deprecation cycle and are
#: now deleted, mapped to their typed replacement.
_REMOVED_NAMES = {
    "EXPERIMENT_REGISTRY":
        "repro.harness.experiments.EXPERIMENTS (ExperimentSpec registry)",
    "ENGINE_FACTORIES":
        "repro.fusion.registry.create_engine / attack_engine_factories()",
    "ATTACK_ENV_DEFAULTS":
        "the attack classes' own env_defaults",
}


class _RemovedApiVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def _flag(self, node: ast.AST, name: str) -> None:
        self.ctx.report(
            "API001", node,
            f"{name} was removed after its deprecation cycle; use "
            f"{_REMOVED_NAMES[name]}",
        )

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _REMOVED_NAMES:
            self._flag(node, node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _REMOVED_NAMES:
            self._flag(node, node.attr)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name in _REMOVED_NAMES:
                self._flag(node, alias.name)
        self.generic_visit(node)


register(Rule(
    id="API001",
    severity="error",
    summary="removed deprecation shims (EXPERIMENT_REGISTRY, "
            "ENGINE_FACTORIES, ATTACK_ENV_DEFAULTS) are not referenced",
    rationale=(
        "The PR 2 shims had one release of deprecation warnings and are "
        "now deleted; a lingering reference would NameError at runtime "
        "or, worse, resurrect a second registry that drifts from the "
        "typed one. The linter keeps the old spellings from creeping "
        "back in through copy-paste."
    ),
    checker=_RemovedApiVisitor,
))


register(Rule(
    id="LAY001",
    severity="error",
    summary="imports respect the layer order (mem/mmu → kernel → "
            "fusion → attacks → harness → runner → cli)",
    rationale=(
        "Attacks measuring an engine must not reach into orchestration "
        "(a result that depends on how it was launched is not a "
        "result), engines must not know about the runner, and the "
        "frame store must stay a leaf so FrameSan and the fingerprint "
        "barrier see every mutation. TYPE_CHECKING imports are exempt."
    ),
    checker=_LayeringVisitor,
    applies_to=_in_packages("repro"),
))
