"""simflow's interprocedural rules: FLOW003-ip/FLOW004-ip/FLOW005/FLOW006.

The base FLOW rules (:mod:`repro.check.flow_rules`) stop at function
boundaries; the rules here close them over the project call graph
(:mod:`repro.check.callgraph`) and the bottom-up function summaries
(:mod:`repro.check.summaries`):

* **FLOW003-ip** — a pfn returned by any *transitively allocating*
  callee is a fresh handle at the caller: it must still be mapped,
  freed, stored or returned on every path.  Sources are calls that
  resolve (precisely) to a function whose summary escapes a frame;
  consumers are the base consumer set plus callees whose summaries
  consume the forwarded parameter.
* **FLOW004-ip** — wall-clock/RNG/``hash()`` taint tracked *through*
  call chains: a call returning summary-level taint poisons its
  result, and a tainted value handed to a callee whose summary sinks
  that parameter into an artifact write is an error even though
  neither function alone looks wrong.
* **FLOW005** — shard ownership: every function reachable from
  ``runner.execute_task`` (over *all* edge kinds — reachability is
  conservative where summaries are precise) must not mutate
  module-level state.  This is the static precondition for sharding
  single-scenario simulation across workers: a task's effects must be
  owned by its task-local object graph.  The analyzer's own
  ``repro.check`` registries are import-time plumbing, not simulation
  state, and are excluded.
* **FLOW006** — annotations are *checked claims*: an
  ``@escapes_frame`` decoration on a function whose summary proves no
  value ever escapes (no valued return, no yield) is a hard error —
  a stale annotation silently disables FLOW003 for the body.

Every finding's message carries the caller→callee witness chain that
produced it, so a report three layers away from the defect still names
the path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.check.callgraph import TASK_ENTRY_POINTS, CallGraph
from repro.check.cfg import FunctionCFG
from repro.check.flow_rules import (
    _ARTIFACT_SINK_CALLEES,
    _FRAME_SOURCES,
    _Pos,
    _call_arguments,
    _callee,
    _calls_in,
    _consumed_names,
    _is_taint_source,
    _names_in,
    _reporting_pass,
    _sole_name_assign,
)
from repro.check.lattice import MutableState, solve_forward
from repro.check.rules import _in_packages
from repro.check.summaries import (
    LocalSummary,
    TransitiveSummary,
    _param_position,
    summarize_project,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.engine import LintContext

Report = Callable[[str, ast.AST, str], None]

_IP_FRESH_PREFIX = "ipfresh@"
_IP_TAINTED = "iptainted"
_TAINTED = "tainted"  # matches flow_rules._TAINTED; both tracked here

#: Modules whose global writes are analyzer plumbing, not simulation
#: state: the rule/experiment registries in ``repro.check`` are filled
#: at import time and only *read* afterwards.
_FLOW005_EXEMPT_PREFIXES = ("repro.check.",)


@dataclass(frozen=True)
class IpRule:
    """One interprocedural invariant."""

    id: str
    severity: str
    summary: str
    rationale: str
    #: "function" rules run per CFG with summary context; "project"
    #: rules run once over the whole graph.
    scope: str
    applies_to: Callable[[str], bool] = field(default=lambda module: True)
    #: function-scope checker: (ctx, cfg, func, caller_full, analysis).
    checker: Callable[..., None] | None = None
    #: project-scope checker: analysis -> findings.
    project_checker: (
        Callable[["IpAnalysis"], list["ProjectFinding"]] | None
    ) = None

    def applies(self, module: str) -> bool:
        return self.applies_to(module)


#: Registry of interprocedural rules, id -> rule.
IP_RULES: dict[str, IpRule] = {}


def register_ip(rule: IpRule) -> IpRule:
    if rule.id in IP_RULES:
        raise ValueError(f"duplicate ip rule id {rule.id}")
    IP_RULES[rule.id] = rule
    return rule


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


class IpAnalysis:
    """Project-wide context every interprocedural check consumes."""

    def __init__(
        self,
        graph: CallGraph,
        local_summaries: dict[str, LocalSummary],
    ) -> None:
        self.graph = graph
        self.local_summaries = local_summaries
        self.summaries: dict[str, TransitiveSummary] = summarize_project(
            graph, local_summaries
        )
        #: function -> witness chain from a task entry point.
        self.task_reachable: dict[str, tuple[str, ...]] = (
            graph.reachable_from(TASK_ENTRY_POINTS)
        )

    # -- shared call-site resolution helpers ---------------------------
    def escaping_targets(
        self, caller_full: str, call: ast.Call
    ) -> list[TransitiveSummary]:
        """Summaries of precisely-resolved escaping targets of ``call``.

        Excludes the base allocator names — those are FLOW003's
        sources; the ip rule only adds the calls base analysis cannot
        see through.
        """
        if _callee(call) in _FRAME_SOURCES:
            return []
        return [
            self.summaries[target]
            for target in self.graph.resolve_call(
                caller_full, call.lineno, call.col_offset
            )
            if target in self.summaries and self.summaries[target].escapes
        ]

    def taint_targets(
        self, caller_full: str, call: ast.Call
    ) -> list[TransitiveSummary]:
        """Summaries of resolved targets whose return carries taint."""
        return [
            self.summaries[target]
            for target in self.graph.resolve_call(
                caller_full, call.lineno, call.col_offset
            )
            if target in self.summaries
            and self.summaries[target].returns_taint
        ]

    def resolved_summaries(
        self, caller_full: str, call: ast.Call
    ) -> list[tuple[LocalSummary, TransitiveSummary]]:
        return [
            (self.local_summaries[target], self.summaries[target])
            for target in self.graph.resolve_call(
                caller_full, call.lineno, call.col_offset
            )
            if target in self.summaries
        ]


# ----------------------------------------------------------------------
# FLOW003-ip — cross-function frame-handle escape/leak
# ----------------------------------------------------------------------
def _ip_consumed_params(
    analysis: IpAnalysis, caller_full: str, node: ast.AST
) -> set[str]:
    """Names consumed because a callee's summary consumes the param."""
    consumed: set[str] = set()
    for call in _calls_in(node):
        attribute_call = isinstance(call.func, ast.Attribute)
        for local, transitive in analysis.resolved_summaries(
            caller_full, call
        ):
            for index, arg in enumerate(call.args):
                if not isinstance(arg, ast.Name):
                    continue
                param = _param_position(local, index, attribute_call)
                if param is not None and param in transitive.consumed_params:
                    consumed.add(arg.id)
    return consumed


def _make_flow003ip_transfer(
    analysis: IpAnalysis, caller_full: str, report: Report | None
) -> Callable[[ast.AST, MutableState], None]:
    def transfer(node: ast.AST, state: MutableState) -> None:
        for name in _consumed_names(node):
            state.clear(name)
        for name in _ip_consumed_params(analysis, caller_full, node):
            state.clear(name)
        assigned = _sole_name_assign(node)
        if assigned is not None and isinstance(assigned[1], ast.Call):
            call = assigned[1]
            targets = analysis.escaping_targets(caller_full, call)
            if targets:
                state.replace(
                    assigned[0],
                    f"{_IP_FRESH_PREFIX}{call.lineno}:{call.col_offset}",
                )
                return
        # A transitively-allocating call whose result is discarded
        # leaks unconditionally.
        if (
            report is not None
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
        ):
            targets = analysis.escaping_targets(caller_full, node.value)
            if targets:
                report(
                    "FLOW003-ip", node.value,
                    "frame handle from transitively-allocating call is "
                    "discarded (result unused); the pfn can never be "
                    "freed, mapped or stored "
                    f"[{_chain_text(targets[0].escape_chain)}]",
                )
        # Plain reassignment drops a still-fresh handle.
        if assigned is not None and report is not None:
            var, value = assigned
            if var not in _names_in(value) and any(
                fact.startswith(_IP_FRESH_PREFIX)
                for fact in state.facts(var)
            ):
                report(
                    "FLOW003-ip", node,
                    f"frame handle '{var}' (from a transitively-"
                    "allocating callee) is overwritten before the frame "
                    "is freed, mapped, stored or returned",
                )
        if assigned is not None and assigned[0] not in _names_in(assigned[1]):
            state.clear(assigned[0])

    return transfer


def _escape_chain_at(
    analysis: IpAnalysis,
    caller_full: str,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    lineno: int,
    col: int,
) -> tuple[str, ...]:
    """Witness chain for the ip-fresh source call at ``(lineno, col)``."""
    for call in _calls_in(func):
        if call.lineno == lineno and call.col_offset == col:
            targets = analysis.escaping_targets(caller_full, call)
            if targets:
                return (caller_full, *targets[0].escape_chain)
    return (caller_full,)


def _check_flow003ip(
    ctx: "LintContext",
    cfg: FunctionCFG,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    caller_full: str,
    analysis: IpAnalysis,
) -> None:
    if "escapes_frame" in cfg.decorator_names():
        return
    transfer = _make_flow003ip_transfer(analysis, caller_full, None)
    pre_states = solve_forward(cfg, transfer)
    _reporting_pass(
        cfg, pre_states,
        _make_flow003ip_transfer(analysis, caller_full, ctx.report),
    )
    for exit_id in (cfg.exit, cfg.raise_exit):
        for var, facts in sorted(pre_states.get(exit_id, {}).items()):
            for fact in sorted(facts):
                if not fact.startswith(_IP_FRESH_PREFIX):
                    continue
                line, _, col = fact[len(_IP_FRESH_PREFIX):].partition(":")
                chain = _escape_chain_at(
                    analysis, caller_full, func, int(line), int(col)
                )
                where = (
                    "an explicit raise" if exit_id == cfg.raise_exit
                    else "return"
                )
                ctx.report(
                    "FLOW003-ip", _Pos(int(line), int(col)),
                    f"frame handle '{var}' allocated through "
                    f"[{_chain_text(chain)}] may reach {where} in "
                    f"{cfg.name}() without being freed, mapped, stored "
                    "or returned (cross-function frame leak)",
                )


register_ip(IpRule(
    id="FLOW003-ip",
    severity="error",
    summary="frame handles from transitively-allocating callees are consumed on every path",
    rationale=(
        "FLOW003 sees `pfn = buddy.alloc()`; it cannot see "
        "`pfn = self._alloc_unmerge_frame()` — a wrapper two hops above "
        "the allocator. The call-graph summaries prove which callees "
        "hand back a fresh frame, so the caller is held to the same "
        "every-path discipline without any annotation; witness chains "
        "in the message name the allocating path."
    ),
    scope="function",
    applies_to=_in_packages("repro.core", "repro.fusion", "repro.mem"),
    checker=_check_flow003ip,
))


# ----------------------------------------------------------------------
# FLOW004-ip — taint laundered through call chains into artifacts
# ----------------------------------------------------------------------
def _expr_taint_kinds(
    expr: ast.AST,
    state: MutableState,
    analysis: IpAnalysis,
    caller_full: str,
) -> tuple[bool, tuple[str, ...] | None]:
    """(base-tainted, ip-taint witness chain or None) for an expression."""
    base = False
    chain: tuple[str, ...] | None = None
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            if state.has(sub.id, _TAINTED):
                base = True
            if chain is None and state.has(sub.id, _IP_TAINTED):
                chain = (caller_full,)
        elif isinstance(sub, ast.Call):
            if _is_taint_source(sub):
                base = True
            elif chain is None:
                targets = analysis.taint_targets(caller_full, sub)
                if targets:
                    chain = (caller_full, *targets[0].taint_chain)
    return base, chain


def _make_flow004ip_transfer(
    analysis: IpAnalysis,
    caller_full: str,
    returns_are_sinks: bool,
    report: Report | None,
) -> Callable[[ast.AST, MutableState], None]:
    def transfer(node: ast.AST, state: MutableState) -> None:
        if report is not None:
            for call in _calls_in(node):
                if _callee(call) in _ARTIFACT_SINK_CALLEES:
                    for arg in _call_arguments(call):
                        base, chain = _expr_taint_kinds(
                            arg, state, analysis, caller_full
                        )
                        if chain is not None and not base:
                            report(
                                "FLOW004-ip", call,
                                "nondeterministic value laundered through "
                                "a call chain flows into an artifact "
                                f"write [{_chain_text(chain)}]; artifacts "
                                "must be a pure function of (spec, seed)",
                            )
                            break
                    continue
                # Summary-derived sinks: a callee that forwards this
                # parameter into an artifact write.
                attribute_call = isinstance(call.func, ast.Attribute)
                for local, transitive in analysis.resolved_summaries(
                    caller_full, call
                ):
                    for index, arg in enumerate(call.args):
                        param = _param_position(
                            local, index, attribute_call
                        )
                        if (
                            param is None
                            or param not in transitive.sink_params
                        ):
                            continue
                        base, chain = _expr_taint_kinds(
                            arg, state, analysis, caller_full
                        )
                        if base or chain is not None:
                            sink_chain = (
                                caller_full,
                                *transitive.sink_params[param],
                            )
                            report(
                                "FLOW004-ip", call,
                                "nondeterministic value (wall clock / "
                                "global RNG / builtin hash) is passed to "
                                "a callee that writes it into an "
                                f"artifact [{_chain_text(sink_chain)}]",
                            )
                            break
            if (
                returns_are_sinks
                and isinstance(node, ast.Return)
                and node.value is not None
            ):
                base, chain = _expr_taint_kinds(
                    node.value, state, analysis, caller_full
                )
                if chain is not None and not base:
                    report(
                        "FLOW004-ip", node,
                        "nondeterministic value laundered through a call "
                        f"chain [{_chain_text(chain)}] is returned from "
                        "an artifact-producing function (execute_task / "
                        "@artifact_boundary)",
                    )
        if isinstance(node, ast.Assign):
            base, chain = _expr_taint_kinds(
                node.value, state, analysis, caller_full
            )
            for target in node.targets:
                for name in ast.walk(target):
                    if not isinstance(name, ast.Name):
                        continue
                    if base:
                        state.add(name.id, _TAINTED)
                    else:
                        state.discard(name.id, _TAINTED)
                    if chain is not None:
                        state.add(name.id, _IP_TAINTED)
                    else:
                        state.discard(name.id, _IP_TAINTED)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is not None and isinstance(node.target, ast.Name):
                base, chain = _expr_taint_kinds(
                    node.value, state, analysis, caller_full
                )
                if base:
                    state.add(node.target.id, _TAINTED)
                if chain is not None:
                    state.add(node.target.id, _IP_TAINTED)

    return transfer


def _check_flow004ip(
    ctx: "LintContext",
    cfg: FunctionCFG,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    caller_full: str,
    analysis: IpAnalysis,
) -> None:
    returns_are_sinks = (
        cfg.name == "execute_task"
        or "artifact_boundary" in cfg.decorator_names()
    )
    transfer = _make_flow004ip_transfer(
        analysis, caller_full, returns_are_sinks, None
    )
    pre_states = solve_forward(cfg, transfer)
    _reporting_pass(
        cfg, pre_states,
        _make_flow004ip_transfer(
            analysis, caller_full, returns_are_sinks, ctx.report
        ),
    )


register_ip(IpRule(
    id="FLOW004-ip",
    severity="error",
    summary="no clock/RNG/hash() taint through call chains into artifacts",
    rationale=(
        "One helper returning `time.monotonic()` and another doing the "
        "`write_text` are each individually clean under FLOW004; the "
        "composition is exactly the byte-identical-artifact bug the "
        "rule exists to stop. Summaries carry 'returns taint' and "
        "'sinks parameter N' across functions so the laundering hop "
        "is visible, with the full chain in the message."
    ),
    scope="function",
    applies_to=_in_packages("repro.runner", "repro.harness", "repro.analysis"),
    checker=_check_flow004ip,
))


# ----------------------------------------------------------------------
# FLOW005 — shard ownership of task-reachable state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProjectFinding:
    """One whole-project finding, to be routed to its module's context."""

    rule_id: str
    module: str
    lineno: int
    col: int
    message: str


def flow005_findings(analysis: IpAnalysis) -> list[ProjectFinding]:
    """Module-level mutations reachable from the task entry points."""
    findings: list[ProjectFinding] = []
    for full, chain in sorted(analysis.task_reachable.items()):
        if full.startswith(_FLOW005_EXEMPT_PREFIXES):
            continue
        summary = analysis.summaries.get(full)
        entry = analysis.graph.functions.get(full)
        if summary is None or entry is None:
            continue
        module = entry[1].module
        for write in summary.global_writes:
            findings.append(ProjectFinding(
                rule_id="FLOW005",
                module=module,
                lineno=write.lineno,
                col=write.col,
                message=(
                    f"task-reachable function {full.rsplit('.', 1)[-1]}() "
                    f"{write.detail}; state mutated under execute_task "
                    "must be task-local (shard-ownership rule) "
                    f"[{_chain_text(chain)}]"
                ),
            ))
    return findings


register_ip(IpRule(
    id="FLOW005",
    severity="error",
    summary="code reachable from execute_task owns no module-level mutable state",
    rationale=(
        "The ROADMAP's sharded single-scenario simulation forks "
        "execute_task across worker processes; that is only sound if a "
        "task's writes land exclusively in its task-local object graph. "
        "Any module-level dict/list/counter mutated under execute_task "
        "is cross-task shared state — a correctness bug today "
        "(task-order dependence) and a race tomorrow. Reachability uses "
        "every call-graph edge (conservative), and the analyzer's own "
        "import-time registries in repro.check are exempt."
    ),
    scope="project",
    project_checker=flow005_findings,
))


# ----------------------------------------------------------------------
# FLOW006 — annotations are checked claims
# ----------------------------------------------------------------------
def flow006_findings(analysis: IpAnalysis) -> list[ProjectFinding]:
    """@escapes_frame decorations contradicted by the inferred summary."""
    findings: list[ProjectFinding] = []
    for full in sorted(analysis.summaries):
        summary = analysis.summaries[full]
        if not (summary.annotated_escapes and summary.provably_no_escape):
            continue
        func_entry = analysis.graph.functions.get(full)
        if func_entry is None:
            continue
        func_facts, module_facts = func_entry
        findings.append(ProjectFinding(
            rule_id="FLOW006",
            module=module_facts.module,
            lineno=func_facts.lineno,
            col=0,
            message=(
                f"@escapes_frame on {func_facts.qualname}() is "
                "contradicted by the inferred summary: no path returns "
                "or yields a value, so no frame handle can escape; "
                "remove the stale annotation (it silently disables "
                "FLOW003 for this body)"
            ),
        ))
    return findings


register_ip(IpRule(
    id="FLOW006",
    severity="error",
    summary="@escapes_frame annotations agree with the inferred escape summary",
    rationale=(
        "An annotation is a claim, and FLOW003 trusts it by skipping "
        "the decorated body entirely. Once summaries can *prove* "
        "whether a function escapes a handle, a decoration that "
        "contradicts the proof is worse than useless — it is a "
        "hand-written suppression that outlived the code it described. "
        "Agreement (proved or plausibly trusted) is fine; "
        "contradiction is a hard error."
    ),
    scope="project",
    project_checker=flow006_findings,
))


# ----------------------------------------------------------------------
# Annotation audit (`repro lint --check-annotations`)
# ----------------------------------------------------------------------
def annotation_report(analysis: IpAnalysis) -> list[dict[str, object]]:
    """Classify every @escapes_frame annotation against inference.

    ``proved``
        inference independently derives the escape — the annotation is
        redundant and can be dropped;
    ``contradicted``
        the summary proves no value escapes — FLOW006 errors on these;
    ``trusted``
        inference can neither prove nor refute (e.g. the handle
        escapes via a container) — the annotation is load-bearing.
    """
    rows: list[dict[str, object]] = []
    for full in sorted(analysis.summaries):
        summary = analysis.summaries[full]
        if not summary.annotated_escapes:
            continue
        if summary.provably_no_escape:
            status = "contradicted"
        elif summary.inferred_escapes:
            status = "proved"
        else:
            status = "trusted"
        func_entry = analysis.graph.functions.get(full)
        lineno = func_entry[0].lineno if func_entry else 0
        path = func_entry[1].path if func_entry else ""
        rows.append({
            "qualname": full,
            "annotation": "escapes_frame",
            "status": status,
            "path": path,
            "line": lineno,
        })
    return rows
