"""simlint's engine: walk files, run rule checkers, filter suppressions.

Three analyzers run behind this one engine:

* the **ast** engine — line-local :class:`~repro.check.rules.Rule`
  visitors (DET/MEM/LAY families);
* the **flow** engine (simflow) — per-function CFG + dataflow checks
  (:class:`~repro.check.flow_rules.FlowRule`, FLOW family), built on
  :mod:`repro.check.cfg` and :mod:`repro.check.lattice`, plus the
  interprocedural tier (:class:`~repro.check.ip_rules.IpRule`,
  FLOW00x-ip/FLOW005/FLOW006) built on the project call graph
  (:mod:`repro.check.callgraph`) and bottom-up function summaries
  (:mod:`repro.check.summaries`);
* the **race** engine (simrace) — ownership & determinism checks over
  the concurrency model (:class:`~repro.check.race.RaceRule`, RACE
  family): spawn sites and communication edges extracted into the
  module facts, closed over the same call graph and summaries.

Two entry points with different contracts:

* :func:`lint_source` — one file in isolation, intraprocedural rules
  only (the unit the rule tests exercise);
* :func:`lint_project` — a set of files as one program: everything
  ``lint_source`` does *plus* the interprocedural rules, with an
  optional on-disk content-hash cache so warm runs only re-analyze
  changed files (:mod:`repro.check.cache`).

The engine is deliberately free of repro.* runtime imports (it must be
importable in a bare CI job) — rules communicate through
:class:`LintContext`, and file paths are mapped to dotted module names
purely textually.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
import re
from dataclasses import dataclass, field

from repro.check.cache import SummaryCache, content_hash, dependency_digest
from repro.check.callgraph import (
    CallGraph,
    ModuleFacts,
    extract_facts,
    iter_functions_with_qualnames,
)
from repro.check.cfg import build_cfg, iter_functions
from repro.check.flow_rules import FLOW_RULES, FlowRule, _Pos
from repro.check.ip_rules import (
    IP_RULES,
    IpAnalysis,
    IpRule,
    annotation_report,
)
from repro.check.race import RACE_RULES, RaceAnalysis, RaceRule
from repro.check.rules import RULES, Rule
from repro.check.summaries import LocalSummary, summarize_function

#: ``# simlint: disable=DET001,FLOW003-ip`` (or ``disable=all``).
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s-]+|all)")


def rule_catalog() -> dict[str, Rule | FlowRule | IpRule | RaceRule]:
    """The merged rule catalog: ast, flow, interprocedural, race."""
    catalog: dict[str, Rule | FlowRule | IpRule | RaceRule] = {}
    catalog.update(RULES)
    catalog.update(FLOW_RULES)
    catalog.update(IP_RULES)
    catalog.update(RACE_RULES)
    return catalog


def engine_of(rule_id: str) -> str:
    """Which analyzer owns a rule id: ``"ast"``, ``"flow"`` or ``"race"``."""
    if rule_id in RACE_RULES:
        return "race"
    return "flow" if rule_id in FLOW_RULES or rule_id in IP_RULES else "ast"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    engine: str = "ast"  #: analyzer that produced it ("ast" or "flow")
    #: Fully-qualified enclosing function ("repro.fusion.wpf.WPF.scan"),
    #: or the module name for module-level findings — the baseline's
    #: path-insensitive secondary key.
    qualname: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "engine": self.engine,
            "qualname": self.qualname,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule_id=data["rule"], severity=data["severity"],
            path=data["path"], line=data["line"], col=data["col"],
            message=data["message"], engine=data.get("engine", "ast"),
            qualname=data.get("qualname", ""),
        )


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: list[str] = field(default_factory=list)  #: unparseable files
    #: findings matched (and silenced) by a ``--baseline`` file.
    baselined: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


class LintContext:
    """Per-file state shared by every rule's visitor/checker."""

    def __init__(self, path: str, module: str, source_lines: list[str]) -> None:
        self.path = path
        self.module = module
        self.source_lines = source_lines
        self.findings: list[Finding] = []
        self._catalog = rule_catalog()

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._suppressed(rule_id, line):
            return
        self.findings.append(Finding(
            rule_id=rule_id,
            severity=self._catalog[rule_id].severity,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            engine=engine_of(rule_id),
        ))

    def _suppressed(self, rule_id: str, line: int) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _SUPPRESS_RE.search(self.source_lines[line - 1])
        if match is None:
            return False
        spec = match.group(1).strip()
        if spec == "all":
            return True
        return rule_id in {part.strip() for part in spec.split(",")}


def module_name_for(path: pathlib.Path) -> str:
    """Map a file path to a dotted module name, anchored at ``repro``.

    ``.../src/repro/mem/physmem.py`` -> ``repro.mem.physmem``;
    files outside a ``repro`` tree fall back to directory-based names
    relative to their last ``src``/``tests``/``benchmarks``/
    ``examples`` anchor.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return ".".join(parts[-2:]) if len(parts) >= 2 else (parts[0] if parts else "")


def _selected_rules(
    rule_ids: list[str] | None,
) -> tuple[list[Rule], list[FlowRule]]:
    """Split a rule selection into (ast rules, flow rules).

    Interprocedural ids are accepted (they are valid selections for
    :func:`lint_project`) but contribute no intraprocedural rule.
    """
    if not rule_ids:
        return list(RULES.values()), list(FLOW_RULES.values())
    unknown = [
        rule_id for rule_id in rule_ids
        if rule_id not in RULES
        and rule_id not in FLOW_RULES
        and rule_id not in IP_RULES
        and rule_id not in RACE_RULES
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return (
        [RULES[rule_id] for rule_id in rule_ids if rule_id in RULES],
        [FLOW_RULES[rule_id] for rule_id in rule_ids if rule_id in FLOW_RULES],
    )


def _selected_ip_rules(rule_ids: list[str] | None) -> list[IpRule]:
    if not rule_ids:
        return list(IP_RULES.values())
    return [IP_RULES[rule_id] for rule_id in rule_ids if rule_id in IP_RULES]


def _selected_race_rules(rule_ids: list[str] | None) -> list[RaceRule]:
    if not rule_ids:
        return list(RACE_RULES.values())
    return [
        RACE_RULES[rule_id] for rule_id in rule_ids if rule_id in RACE_RULES
    ]


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rule_ids: list[str] | None = None,
) -> list[Finding]:
    """Lint one source string (the unit the rule tests exercise)."""
    if module is None:
        module = module_name_for(pathlib.Path(path))
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path, module, source.splitlines())
    ast_rules, flow_rules = _selected_rules(rule_ids)
    for rule in ast_rules:
        if rule.applies(module):
            rule.checker(ctx).visit(tree)
    active_flow = [rule for rule in flow_rules if rule.applies(module)]
    if active_flow:
        for func in iter_functions(tree):
            cfg = build_cfg(func)
            for flow_rule in active_flow:
                flow_rule.checker(ctx, cfg)
    ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return ctx.findings


def iter_python_files(paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: list[str],
    rule_ids: list[str] | None = None,
    cache_path: str | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` as one program.

    This is project mode: the intraprocedural rules per file plus the
    interprocedural tier over the whole file set.  ``cache_path``
    enables the on-disk summary cache (full-rule-set runs only).
    """
    result = LintResult()
    file_sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        try:
            file_sources[str(file_path)] = file_path.read_text(
                encoding="utf-8"
            )
        except (UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{file_path}: {exc}")
    cache = SummaryCache(cache_path) if cache_path else None
    project = lint_project(file_sources, rule_ids=rule_ids, cache=cache)
    if cache is not None:
        cache.save(set(file_sources))
    project.errors = [*result.errors, *project.errors]
    return project


# ----------------------------------------------------------------------
# Project mode: whole-program lint with the interprocedural tier
# ----------------------------------------------------------------------
@dataclass
class _FileInfo:
    """Everything lint_project derived (or recovered) for one file."""

    source: str
    module: str
    facts: ModuleFacts
    local_summaries: dict[str, LocalSummary]
    findings: list[Finding]
    tree: ast.AST | None  #: None on a cache hit (not parsed this run)


def _attach_qualnames(
    findings: list[Finding], module: str, facts: ModuleFacts
) -> list[Finding]:
    """Stamp each finding with its innermost enclosing function."""
    spans = [
        (func.lineno, func.end_lineno, qual)
        for qual, func in facts.functions.items()
    ]

    def qual_for(line: int) -> str:
        best: str | None = None
        best_size: int | None = None
        for low, high, qual in spans:
            if low <= line <= high and (
                best_size is None or high - low < best_size
            ):
                best, best_size = qual, high - low
        return f"{module}.{best}" if best is not None else module

    return [
        dataclasses.replace(finding, qualname=qual_for(finding.line))
        for finding in findings
    ]


def _intra_findings(
    tree: ast.AST,
    path: str,
    module: str,
    source: str,
    ast_rules: list[Rule],
    flow_rules: list[FlowRule],
) -> list[Finding]:
    ctx = LintContext(path, module, source.splitlines())
    for rule in ast_rules:
        if rule.applies(module):
            rule.checker(ctx).visit(tree)
    active_flow = [rule for rule in flow_rules if rule.applies(module)]
    if active_flow:
        for func in iter_functions(tree):
            cfg = build_cfg(func)
            for flow_rule in active_flow:
                flow_rule.checker(ctx, cfg)
    return ctx.findings


def _ip_dependency_digest(analysis: IpAnalysis, facts: ModuleFacts) -> str:
    """Digest of everything this file's ip findings depend on beyond
    its own content: the transitive summaries of every resolved callee."""
    parts: set[str] = set()
    for site in facts.calls:
        caller = f"{facts.module}.{site.caller}"
        for target in analysis.graph.resolve_call(
            caller, site.lineno, site.col
        ):
            summary = analysis.summaries.get(target)
            if summary is not None:
                parts.add(
                    f"{target}="
                    + json.dumps(summary.to_dict(), sort_keys=True)
                )
    return dependency_digest(sorted(parts))


def _ip_function_findings(
    info: _FileInfo,
    path: str,
    analysis: IpAnalysis,
    race_analysis: "RaceAnalysis | None",
    rules: list[IpRule | RaceRule],
) -> list[Finding]:
    tree = info.tree
    if tree is None:
        tree = ast.parse(info.source, filename=path)
    ctx = LintContext(path, info.module, info.source.splitlines())
    for func, qual in iter_functions_with_qualnames(tree):
        full = f"{info.module}.{qual}"
        cfg = build_cfg(func)
        for rule in rules:
            assert rule.checker is not None
            rule.checker(
                ctx, cfg, func, full,
                race_analysis if isinstance(rule, RaceRule) else analysis,
            )
    return ctx.findings


def lint_project(
    file_sources: dict[str, str],
    rule_ids: list[str] | None = None,
    cache: SummaryCache | None = None,
) -> LintResult:
    """Lint a set of files as one program (the interprocedural unit).

    ``file_sources`` maps paths to source text.  With ``cache``, files
    whose content hash matches skip parsing and intraprocedural
    analysis entirely, and skip the per-function interprocedural rules
    when their dependency digest (resolved callees' summaries) is also
    unchanged; the whole-project rules (FLOW005/FLOW006) are
    recomputed every run from the summaries alone.  Rule-subset runs
    bypass the cache.
    """
    result = LintResult()
    use_cache = cache is not None and not rule_ids
    ast_rules, flow_rules = _selected_rules(rule_ids)
    ip_rules = _selected_ip_rules(rule_ids)
    race_rules = _selected_race_rules(rule_ids)
    infos: dict[str, _FileInfo] = {}

    for path in sorted(file_sources):
        source = file_sources[path]
        module = module_name_for(pathlib.Path(path))
        digest = content_hash(source)
        entry = cache.lookup(path, digest) if use_cache else None
        if entry is not None:
            facts = ModuleFacts.from_dict(entry["facts"])
            local = {
                qual: LocalSummary.from_dict(data)
                for qual, data in entry["summaries"].items()
            }
            findings = [Finding.from_dict(f) for f in entry["findings"]]
            tree: ast.AST | None = None
        else:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                result.errors.append(f"{path}: {exc}")
                continue
            facts = extract_facts(tree, module, path)
            findings = _attach_qualnames(
                _intra_findings(
                    tree, path, module, source, ast_rules, flow_rules
                ),
                module,
                facts,
            )
            local = {
                qual: summarize_function(func, qual, facts)
                for func, qual in iter_functions_with_qualnames(tree)
            }
            if use_cache:
                assert cache is not None
                cache.store(
                    path, digest,
                    module=module,
                    facts=facts.to_dict(),
                    summaries={
                        qual: summary.to_dict()
                        for qual, summary in local.items()
                    },
                    findings=[f.as_dict() for f in findings],
                )
        result.files_scanned += 1
        infos[path] = _FileInfo(source, module, facts, local, findings, tree)

    # -- interprocedural tier ------------------------------------------
    modules = {info.facts.module: info.facts for info in infos.values()}
    locals_by_full = {
        f"{info.facts.module}.{qual}": summary
        for info in infos.values()
        for qual, summary in info.local_summaries.items()
    }
    analysis = IpAnalysis(CallGraph(modules), locals_by_full)
    race_analysis = RaceAnalysis(analysis) if race_rules else None

    function_rules: list[IpRule | RaceRule] = [
        rule for rule in (*ip_rules, *race_rules)
        if rule.scope == "function" and rule.checker is not None
    ]
    for path, info in infos.items():
        applicable = [
            rule for rule in function_rules if rule.applies(info.module)
        ]
        if not applicable:
            continue
        dep_digest = (
            _ip_dependency_digest(analysis, info.facts) if use_cache else ""
        )
        cached_ip = (
            cache.lookup_ip(path, dep_digest)
            if use_cache and info.tree is None
            else None
        )
        if cached_ip is not None:
            ip_findings = [Finding.from_dict(f) for f in cached_ip]
        else:
            ip_findings = _attach_qualnames(
                _ip_function_findings(
                    info, path, analysis, race_analysis, applicable
                ),
                info.module,
                info.facts,
            )
            if use_cache:
                assert cache is not None
                cache.store_ip(
                    path, dep_digest, [f.as_dict() for f in ip_findings]
                )
        info.findings.extend(ip_findings)

    # Whole-project rules: cheap (summaries only), recomputed each run.
    by_module = {info.module: (path, info) for path, info in infos.items()}
    project_ctxs: dict[str, LintContext] = {}
    for rule in (*ip_rules, *race_rules):
        if rule.scope != "project" or rule.project_checker is None:
            continue
        project_arg = (
            race_analysis if isinstance(rule, RaceRule) else analysis
        )
        if project_arg is None:
            continue
        for pf in rule.project_checker(project_arg):
            entry = by_module.get(pf.module)
            if entry is None:
                continue
            path, info = entry
            ctx = project_ctxs.setdefault(
                pf.module,
                LintContext(path, pf.module, info.source.splitlines()),
            )
            ctx.report(pf.rule_id, _Pos(pf.lineno, pf.col), pf.message)
    for module, ctx in project_ctxs.items():
        _, info = by_module[module]
        info.findings.extend(
            _attach_qualnames(ctx.findings, module, info.facts)
        )

    # Deterministic global ordering: byte-identical reports whether a
    # finding came out of the cache or a fresh analysis pass.
    result.findings = sorted(
        (f for info in infos.values() for f in info.findings),
        key=lambda f: (
            f.path, f.line, f.rule_id, f.qualname, f.col, f.message
        ),
    )
    return result


def project_analysis(paths: list[str]) -> IpAnalysis:
    """Build the interprocedural analysis alone (no rule findings) —
    the backing for ``repro lint --check-annotations``."""
    modules: dict[str, ModuleFacts] = {}
    locals_by_full: dict[str, LocalSummary] = {}
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        module = module_name_for(file_path)
        facts = extract_facts(tree, module, str(file_path))
        modules[module] = facts
        for func, qual in iter_functions_with_qualnames(tree):
            locals_by_full[f"{module}.{qual}"] = summarize_function(
                func, qual, facts
            )
    return IpAnalysis(CallGraph(modules), locals_by_full)


def check_annotations(paths: list[str]) -> list[dict[str, object]]:
    """The ``--check-annotations`` audit over ``paths``."""
    return annotation_report(project_analysis(paths))
