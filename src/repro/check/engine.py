"""simlint's engine: walk files, run rule checkers, filter suppressions.

Two analyzers run behind this one engine:

* the **ast** engine — line-local :class:`~repro.check.rules.Rule`
  visitors (DET/MEM/LAY families);
* the **flow** engine (simflow) — per-function CFG + dataflow checks
  (:class:`~repro.check.flow_rules.FlowRule`, FLOW family), built on
  :mod:`repro.check.cfg` and :mod:`repro.check.lattice`.

The engine is deliberately free of repro.* runtime imports (it must be
importable in a bare CI job) — rules communicate through
:class:`LintContext`, and file paths are mapped to dotted module names
purely textually.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field

from repro.check.cfg import build_cfg, iter_functions
from repro.check.flow_rules import FLOW_RULES, FlowRule
from repro.check.rules import RULES, Rule

#: ``# simlint: disable=DET001,MEM001`` (or ``disable=all``).
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+|all)")


def rule_catalog() -> dict[str, Rule | FlowRule]:
    """The merged rule catalog: ast rules first, then flow rules."""
    catalog: dict[str, Rule | FlowRule] = {}
    catalog.update(RULES)
    catalog.update(FLOW_RULES)
    return catalog


def engine_of(rule_id: str) -> str:
    """Which analyzer owns a rule id: ``"flow"`` or ``"ast"``."""
    return "flow" if rule_id in FLOW_RULES else "ast"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    engine: str = "ast"  #: analyzer that produced it ("ast" or "flow")

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "engine": self.engine,
        }


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: list[str] = field(default_factory=list)  #: unparseable files
    #: findings matched (and silenced) by a ``--baseline`` file.
    baselined: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


class LintContext:
    """Per-file state shared by every rule's visitor/checker."""

    def __init__(self, path: str, module: str, source_lines: list[str]) -> None:
        self.path = path
        self.module = module
        self.source_lines = source_lines
        self.findings: list[Finding] = []
        self._catalog = rule_catalog()

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._suppressed(rule_id, line):
            return
        self.findings.append(Finding(
            rule_id=rule_id,
            severity=self._catalog[rule_id].severity,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            engine=engine_of(rule_id),
        ))

    def _suppressed(self, rule_id: str, line: int) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _SUPPRESS_RE.search(self.source_lines[line - 1])
        if match is None:
            return False
        spec = match.group(1).strip()
        if spec == "all":
            return True
        return rule_id in {part.strip() for part in spec.split(",")}


def module_name_for(path: pathlib.Path) -> str:
    """Map a file path to a dotted module name, anchored at ``repro``.

    ``.../src/repro/mem/physmem.py`` -> ``repro.mem.physmem``;
    files outside a ``repro`` tree fall back to directory-based names
    relative to their last ``src``/``tests``/``benchmarks``/
    ``examples`` anchor.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return ".".join(parts[-2:]) if len(parts) >= 2 else (parts[0] if parts else "")


def _selected_rules(
    rule_ids: list[str] | None,
) -> tuple[list[Rule], list[FlowRule]]:
    """Split a rule selection into (ast rules, flow rules)."""
    if not rule_ids:
        return list(RULES.values()), list(FLOW_RULES.values())
    unknown = [
        rule_id for rule_id in rule_ids
        if rule_id not in RULES and rule_id not in FLOW_RULES
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return (
        [RULES[rule_id] for rule_id in rule_ids if rule_id in RULES],
        [FLOW_RULES[rule_id] for rule_id in rule_ids if rule_id in FLOW_RULES],
    )


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rule_ids: list[str] | None = None,
) -> list[Finding]:
    """Lint one source string (the unit the rule tests exercise)."""
    if module is None:
        module = module_name_for(pathlib.Path(path))
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path, module, source.splitlines())
    ast_rules, flow_rules = _selected_rules(rule_ids)
    for rule in ast_rules:
        if rule.applies(module):
            rule.checker(ctx).visit(tree)
    active_flow = [rule for rule in flow_rules if rule.applies(module)]
    if active_flow:
        for func in iter_functions(tree):
            cfg = build_cfg(func)
            for flow_rule in active_flow:
                flow_rule.checker(ctx, cfg)
    ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return ctx.findings


def iter_python_files(paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: list[str], rule_ids: list[str] | None = None) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    result = LintResult()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            findings = lint_source(
                source,
                path=str(file_path),
                module=module_name_for(file_path),
                rule_ids=rule_ids,
            )
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{file_path}: {exc}")
            continue
        result.files_scanned += 1
        result.findings.extend(findings)
    return result
