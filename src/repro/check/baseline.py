"""Baseline files: land new lint rules warn-only, then ratchet.

A baseline is a JSON inventory of *accepted* findings.  With
``python -m repro lint --baseline lint-baseline.json`` every finding
that matches a baseline entry is moved out of the failing set (still
reported, separately, so it stays visible), so a new rule can be
enabled tree-wide before every pre-existing violation is fixed — while
any *new* violation fails immediately.  ``--strict`` ignores the
baseline (the promotion switch); ``--write-baseline`` regenerates the
inventory from the current tree.

Entries match on ``(rule, path, message)`` — deliberately *not* on
line numbers, so unrelated edits above a baselined finding do not
resurrect it; fixing the finding (or changing its message by touching
the code) removes the match and the stale entry is simply inert.
Baselines never apply to the ``repro.core``/``repro.fusion`` engine
modules' FLOW findings policy-wise — see docs/CHECKING.md.
"""

from __future__ import annotations

import json
import pathlib

from repro.check.engine import Finding, LintResult

#: Schema version of the baseline file itself.
BASELINE_VERSION = 1

_Key = tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.rule_id, _normalize(finding.path), finding.message)


def _normalize(path: str) -> str:
    return pathlib.PurePath(path).as_posix()


def write_baseline(result: LintResult, path: pathlib.Path) -> int:
    """Write every current finding (active + baselined) as the new baseline.

    Returns the number of entries written.  The file is sorted and
    stable so it diffs cleanly in review.
    """
    entries = sorted(
        {
            _key(finding)
            for finding in (*result.findings, *result.baselined)
        }
    )
    document = {
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    path.write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: pathlib.Path) -> set[_Key]:
    """Load a baseline file into a set of matching keys."""
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "entries" not in document:
        raise ValueError(f"{path}: not a simlint baseline file")
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    keys: set[_Key] = set()
    for entry in document["entries"]:
        keys.add((
            str(entry["rule"]),
            _normalize(str(entry["path"])),
            str(entry["message"]),
        ))
    return keys


def apply_baseline(result: LintResult, baseline: set[_Key]) -> LintResult:
    """Split ``result.findings`` into active vs baselined, in place."""
    active: list[Finding] = []
    for finding in result.findings:
        if _key(finding) in baseline:
            result.baselined.append(finding)
        else:
            active.append(finding)
    result.findings = active
    return result
