"""Baseline files: land new lint rules warn-only, then ratchet.

A baseline is a JSON inventory of *accepted* findings.  With
``python -m repro lint --baseline lint-baseline.json`` every finding
that matches a baseline entry is moved out of the failing set (still
reported, separately, so it stays visible), so a new rule can be
enabled tree-wide before every pre-existing violation is fixed — while
any *new* violation fails immediately.  ``--strict`` ignores the
baseline (the promotion switch); ``--write-baseline`` regenerates the
inventory from the current tree.

Entries match on two keys, either of which accepts a finding:

* **primary** — ``(rule, path, message)``: deliberately *not* line
  numbers, so unrelated edits above a baselined finding do not
  resurrect it;
* **secondary** — ``(rule, qualname, message)``: the fully-qualified
  enclosing function, so *moving or renaming a file* does not
  resurrect its accepted findings either — the function identity
  survives the rename while the path does not.

Fixing the finding (or changing its message by touching the code)
removes both matches and the stale entry is simply inert.  Version-1
baselines (path key only) still load; rewriting upgrades them.
Baselines never apply to the ``repro.core``/``repro.fusion`` engine
modules' FLOW findings policy-wise — see docs/CHECKING.md.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.check.engine import Finding, LintResult

#: Schema version of the baseline file itself.
#:
#: * 1 — ``(rule, path, message)`` entries.
#: * 2 — adds per-entry ``qualname`` and the path-insensitive
#:   secondary match key ``(rule, qualname, message)``.
BASELINE_VERSION = 2

_Key = tuple[str, str, str]


@dataclass
class Baseline:
    """Loaded accepted-findings inventory with both match indexes."""

    #: ``(rule, normalized path, message)``
    path_keys: set[_Key] = field(default_factory=set)
    #: ``(rule, qualname, message)`` — empty strings excluded.
    qualname_keys: set[_Key] = field(default_factory=set)

    def matches(self, finding: Finding) -> bool:
        if _path_key(finding) in self.path_keys:
            return True
        return (
            bool(finding.qualname)
            and _qualname_key(finding) in self.qualname_keys
        )


def _path_key(finding: Finding) -> _Key:
    return (finding.rule_id, _normalize(finding.path), finding.message)


def _qualname_key(finding: Finding) -> _Key:
    return (finding.rule_id, finding.qualname, finding.message)


def _normalize(path: str) -> str:
    return pathlib.PurePath(path).as_posix()


def write_baseline(result: LintResult, path: pathlib.Path) -> int:
    """Write every current finding (active + baselined) as the new baseline.

    Returns the number of entries written.  The file is sorted and
    stable so it diffs cleanly in review.
    """
    entries = sorted(
        {
            (
                finding.rule_id,
                _normalize(finding.path),
                finding.qualname,
                finding.message,
            )
            for finding in (*result.findings, *result.baselined)
        }
    )
    document = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": rule,
                "path": file_path,
                "qualname": qualname,
                "message": message,
            }
            for rule, file_path, qualname, message in entries
        ],
    }
    path.write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: pathlib.Path) -> Baseline:
    """Load a baseline file (version 1 or 2) into a :class:`Baseline`."""
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "entries" not in document:
        raise ValueError(f"{path}: not a simlint baseline file")
    version = document.get("version")
    if version not in (1, BASELINE_VERSION):
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected 1 or {BASELINE_VERSION})"
        )
    baseline = Baseline()
    for entry in document["entries"]:
        rule = str(entry["rule"])
        message = str(entry["message"])
        baseline.path_keys.add((rule, _normalize(str(entry["path"])), message))
        qualname = str(entry.get("qualname", "") or "")
        if qualname:
            baseline.qualname_keys.add((rule, qualname, message))
    return baseline


def apply_baseline(
    result: LintResult, baseline: Baseline | set[_Key]
) -> LintResult:
    """Split ``result.findings`` into active vs baselined, in place.

    Accepts a bare key-set too (the version-1 in-memory form some
    callers build by hand).
    """
    if isinstance(baseline, set):
        baseline = Baseline(path_keys=baseline)
    active: list[Finding] = []
    for finding in result.findings:
        if baseline.matches(finding):
            result.baselined.append(finding)
        else:
            active.append(finding)
    result.findings = active
    return result
