"""Bottom-up function summaries for the interprocedural FLOW rules.

Each function gets a :class:`LocalSummary` — facts provable from its
own body, computed with the same CFG (:mod:`repro.check.cfg`) and
worklist solver (:mod:`repro.check.lattice`) the intraprocedural rules
use:

* **escape**: does any path return a *fresh* frame handle (one
  obtained from the allocator sources, or acquired via
  ``alloc_specific(pfn)``) without first transferring ownership?
* **taint transfer**: may the return value derive from the wall clock,
  the global RNG or builtin ``hash()``?
* **charge-effect**: does the body update the merge ledger?
* **consumed / sink parameters**: which parameters does the body hand
  to a frame consumer, or flow into an artifact write?
* **mutated-global footprint**: writes to module-level state — a
  ``global`` rebind, an attribute/subscript store or a mutating method
  call whose receiver is a module-level binding or an imported
  ``repro.*`` object (FLOW005's raw material).

:func:`summarize_project` then closes the local summaries over the
call graph: Tarjan SCC condensation, reverse-topological order, and a
fixpoint *inside* each SCC (recursion), yielding one
:class:`TransitiveSummary` per function with caller→callee witness
chains for every derived fact.  Only **precise** call edges propagate
summaries — union-by-name edges are reachability-grade, not
evidence-grade.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.check.callgraph import (
    _CONTAINER_READ_METHODS,
    CallGraph,
    CallSite,
    ModuleFacts,
)
from repro.check.cfg import build_cfg
from repro.check.flow_rules import (
    _FRAME_CONSUMERS,
    _FRAME_SOURCES,
    _ARTIFACT_SINK_CALLEES,
    _call_arguments,
    _callee,
    _calls_in,
    _is_charge_node,
    _is_taint_source,
    _names_in,
    _sole_name_assign,
)
from repro.check.lattice import MutableState, apply_block, solve_forward

_FRESH = "fresh"
_TAINT = "taint"
_PARAM_PREFIX = "param:"
_CALL_PREFIX = "call@"

#: Calls that take *ownership* of a frame handle.  Narrower than
#: ``_FRAME_CONSUMERS``: bookkeeping calls (``set_frame_type``,
#: ``write``, refcount reads) touch a frame without owning it, so they
#: must not kill freshness when deciding whether a function *returns*
#: a fresh handle — otherwise ``alloc_specific(pfn); set_frame_type(
#: pfn, ...); return pfn`` would wrongly look escape-free.
_OWNERSHIP_SINKS = frozenset({
    "map_page", "free", "free_frame", "queue_free", "_insert_free",
    "release_after_unmap", "put_ref", "pin_fused",
    "append", "appendleft", "insert", "add", "push",
})

#: Receiver methods that mutate their object in place.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popleft", "popitem",
    "setdefault", "extend", "insert", "remove", "discard", "clear",
    "sort", "reverse", "push",
})


@dataclass(frozen=True)
class GlobalRead:
    """One container-style read of module-level / imported shared state.

    Only *registry-shaped* uses are recorded (subscript, ``.get``/
    ``.items``/``.keys``/``.values``, ``in`` tests, iteration) of names
    that are either the module's own mutable module-level bindings or
    ``repro.*`` imports — RACE003's raw material.  ``attr`` carries the
    first attribute component for ``module.NAME``-style reads.
    """

    name: str           #: the base name being read
    attr: str | None    #: first attribute component, for module reads
    lineno: int
    col: int

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name, "attr": self.attr,
            "line": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GlobalRead":
        return cls(
            name=data["name"], attr=data["attr"],
            lineno=data["line"], col=data["col"],
        )


@dataclass(frozen=True)
class GlobalWrite:
    """One mutation of module-level / imported shared state."""

    name: str    #: the module-level binding being mutated
    kind: str    #: "rebind" | "attribute" | "subscript" | "call" | "delete"
    detail: str  #: human-readable description of the write
    lineno: int
    col: int

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name, "kind": self.kind, "detail": self.detail,
            "line": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GlobalWrite":
        return cls(
            name=data["name"], kind=data["kind"], detail=data["detail"],
            lineno=data["line"], col=data["col"],
        )


@dataclass
class LocalSummary:
    """Per-function facts provable from the body alone."""

    qualname: str  #: in-module qualname
    name: str
    params: tuple[str, ...]
    decorators: tuple[str, ...]
    returns_fresh_direct: bool = False
    returns_taint_direct: bool = False
    #: Locations of calls whose result may be returned — resolved
    #: against the call graph in the transitive phase.
    returned_call_locs: tuple[tuple[int, int], ...] = ()
    returned_params: tuple[str, ...] = ()
    #: Any ``return <expr>`` or ``yield``; False means the function
    #: provably hands nothing out (the no-escape proof FLOW006 uses).
    returns_value: bool = False
    consumed_params_direct: tuple[str, ...] = ()
    sink_params_direct: tuple[str, ...] = ()
    charges_direct: bool = False
    global_writes: tuple[GlobalWrite, ...] = ()
    global_reads: tuple[GlobalRead, ...] = ()
    #: Some return hands back a set-derived value whose iteration order
    #: is nondeterministic (``set(...)``, ``tuple(set(...))``, ...).
    returns_unordered_direct: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname, "name": self.name,
            "params": list(self.params), "decorators": list(self.decorators),
            "fresh": self.returns_fresh_direct,
            "taint": self.returns_taint_direct,
            "ret_calls": [list(loc) for loc in self.returned_call_locs],
            "ret_params": list(self.returned_params),
            "returns_value": self.returns_value,
            "consumed": list(self.consumed_params_direct),
            "sinks": list(self.sink_params_direct),
            "charges": self.charges_direct,
            "writes": [w.to_dict() for w in self.global_writes],
            "reads": [r.to_dict() for r in self.global_reads],
            "unordered": self.returns_unordered_direct,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LocalSummary":
        return cls(
            qualname=data["qualname"], name=data["name"],
            params=tuple(data["params"]),
            decorators=tuple(data["decorators"]),
            returns_fresh_direct=data["fresh"],
            returns_taint_direct=data["taint"],
            returned_call_locs=tuple(
                (loc[0], loc[1]) for loc in data["ret_calls"]
            ),
            returned_params=tuple(data["ret_params"]),
            returns_value=data["returns_value"],
            consumed_params_direct=tuple(data["consumed"]),
            sink_params_direct=tuple(data["sinks"]),
            charges_direct=data["charges"],
            global_writes=tuple(
                GlobalWrite.from_dict(w) for w in data["writes"]
            ),
            global_reads=tuple(
                GlobalRead.from_dict(r) for r in data["reads"]
            ),
            returns_unordered_direct=data["unordered"],
        )


# ---------------------------------------------------------------------------
# Local summary extraction (one CFG + forward dataflow per function)
# ---------------------------------------------------------------------------
class _ReturnRecord:
    """Mutable collector threaded through the diagnostics pass."""

    def __init__(self) -> None:
        self.fresh = False
        self.taint = False
        self.call_locs: set[tuple[int, int]] = set()
        self.params: set[str] = set()
        self.returns_value = False


def _value_facts(value: ast.expr, state: MutableState) -> set[str]:
    """Facts the RHS expression carries into its target."""
    facts: set[str] = set()
    for name in _names_in(value):
        facts |= set(state.facts(name))
    for call in _calls_in(value):
        if _is_taint_source(call):
            facts.add(_TAINT)
        if _callee(call) is not None:
            facts.add(f"{_CALL_PREFIX}{call.lineno}:{call.col_offset}")
    if isinstance(value, ast.Call) and _callee(value) in _FRAME_SOURCES:
        facts.add(_FRESH)
    return facts


def _record_return(
    value: ast.expr, state: MutableState, record: _ReturnRecord
) -> None:
    record.returns_value = True
    facts = _value_facts(value, state)
    if _FRESH in facts:
        record.fresh = True
    if _TAINT in facts:
        record.taint = True
    for fact in facts:
        if fact.startswith(_CALL_PREFIX):
            line, _, col = fact[len(_CALL_PREFIX):].partition(":")
            record.call_locs.add((int(line), int(col)))
        elif fact.startswith(_PARAM_PREFIX):
            record.params.add(fact[len(_PARAM_PREFIX):])


def _make_summary_transfer(record: _ReturnRecord | None):
    def transfer(node: ast.AST, state: MutableState) -> None:
        if record is not None:
            if isinstance(node, ast.Return) and node.value is not None:
                _record_return(node.value, state, record)
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    record.returns_value = True
        # Ownership transfers kill freshness (a mapped/stored handle is
        # no longer the function's to leak via return).
        for sub in _calls_in(node):
            if _callee(sub) in _OWNERSHIP_SINKS:
                for arg in _call_arguments(sub):
                    for name in _names_in(arg):
                        state.discard(name, _FRESH)
            elif _callee(sub) == "alloc_specific":
                # alloc_specific(pfn) *acquires* its argument: the pfn
                # becomes a live handle this function now owns.
                if sub.args and isinstance(sub.args[0], ast.Name):
                    state.add(sub.args[0].id, _FRESH)
        if isinstance(node, ast.Assign):
            stored = any(
                isinstance(target, (ast.Attribute, ast.Subscript))
                for target in node.targets
            )
            if stored:
                for name in _names_in(node.value):
                    state.discard(name, _FRESH)
        assigned = _sole_name_assign(node)
        if assigned is not None:
            state.replace(assigned[0], *_value_facts(assigned[1], state))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is not None and isinstance(node.target, ast.Name):
                for fact in _value_facts(node.value, state):
                    state.add(node.target.id, fact)

    return transfer


def _local_bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    bound: set[str] = set()
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                bound.add(node.name)
    return bound - declared_global


def _base_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _global_writes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    facts: ModuleFacts,
) -> tuple[GlobalWrite, ...]:
    """Writes to module-level / imported-``repro`` shared state."""
    candidates = set(facts.module_names)
    for local, target in facts.imports.items():
        if target == "repro" or target.startswith("repro."):
            candidates.add(local)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    shadowed = _local_bound_names(func) | set(
        a.arg for a in (
            *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
        )
    )
    writes: list[GlobalWrite] = []

    def record(name: str, kind: str, detail: str, node: ast.AST) -> None:
        writes.append(GlobalWrite(
            name=name, kind=kind, detail=detail,
            lineno=getattr(node, "lineno", func.lineno),
            col=getattr(node, "col_offset", 0),
        ))

    def is_candidate(name: str | None) -> bool:
        if name is None:
            return False
        if name in declared_global:
            return True
        return name in candidates and name not in shadowed

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        record(
                            target.id, "rebind",
                            f"rebinds module global '{target.id}'", node,
                        )
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _base_name(target)
                    if is_candidate(base):
                        kind = (
                            "attribute" if isinstance(target, ast.Attribute)
                            else "subscript"
                        )
                        record(
                            base, kind,  # type: ignore[arg-type]
                            f"{kind} store into module-level "
                            f"'{base}'", node,
                        )
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in _MUTATOR_METHODS
            ):
                base = _base_name(func_expr.value)
                if is_candidate(base):
                    record(
                        base, "call",
                        f".{func_expr.attr}() mutates module-level "
                        f"'{base}'", node,
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _base_name(target)
                    if is_candidate(base):
                        record(
                            base, "delete",
                            f"deletes from module-level '{base}'", node,
                        )
    return tuple(writes)


def _global_reads(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    facts: ModuleFacts,
) -> tuple[GlobalRead, ...]:
    """Container-style reads of module-level / imported shared state.

    The mirror of :func:`_global_writes`: where that records mutations
    (FLOW005's raw material), this records *reads* of the same shared
    names — subscripts, ``.get``/``.items``-style lookups, ``in`` tests
    and iteration.  RACE003 resolves them against the owning module's
    mutable bindings to find fork-inherited state a worker consumes
    without a declared ownership contract.
    """
    candidates = set(facts.mutable_module_names)
    import_targets: dict[str, str] = {}
    for local, target in facts.imports.items():
        if target == "repro" or target.startswith("repro."):
            candidates.add(local)
            import_targets[local] = target
    shadowed = _local_bound_names(func) | set(
        a.arg for a in (
            *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
        )
    )
    reads: list[GlobalRead] = []
    seen: set[tuple[str, str | None, int, int]] = set()

    def record(base: ast.AST, node: ast.AST) -> None:
        attr: str | None = None
        if isinstance(base, ast.Attribute) and isinstance(
            base.value, ast.Name
        ):
            attr = base.attr
            base = base.value
        if not isinstance(base, ast.Name):
            return
        name = base.id
        if name in ("self", "cls"):
            return
        if name not in candidates or name in shadowed:
            return
        key = (
            name, attr,
            getattr(node, "lineno", func.lineno),
            getattr(node, "col_offset", 0),
        )
        if key in seen:
            return
        seen.add(key)
        reads.append(GlobalRead(
            name=name, attr=attr, lineno=key[2], col=key[3],
        ))

    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            record(node.value, node)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in _CONTAINER_READ_METHODS
            ):
                record(func_expr.value, node)
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                for comparator in node.comparators:
                    record(comparator, node)
        elif isinstance(node, ast.For):
            record(node.iter, node)
        elif isinstance(node, ast.comprehension):
            record(node.iter, node.iter)
    return tuple(reads)


def _unordered_expr(expr: ast.expr) -> bool:
    """Does the expression evaluate to a set-ordered iterable?

    Conservative: only shapes whose iteration order is *provably* tied
    to hash order — set displays/comprehensions, ``set(...)``/
    ``frozenset(...)`` calls, and ``list``/``tuple`` wrappers around
    them.  ``sorted(...)`` launders the order by construction.
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            return True
        if expr.func.id == "sorted":
            return False
        if expr.func.id in ("list", "tuple") and expr.args:
            return _unordered_expr(expr.args[0])
    return False


def _returns_unordered(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """Does some return/yield hand back a set-ordered value?

    A one-level name chase covers the common ``frozen = tuple(set(x));
    return frozen`` shape without a full dataflow pass.
    """
    unordered_names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _unordered_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    unordered_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _unordered_expr(node.value) and isinstance(
                node.target, ast.Name
            ):
                unordered_names.add(node.target.id)

    def carries(value: ast.expr) -> bool:
        if _unordered_expr(value):
            return True
        if isinstance(value, ast.Name):
            return value.id in unordered_names
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Name
        ):
            if value.func.id in ("list", "tuple") and value.args:
                return carries(value.args[0])
        return False

    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if carries(node.value):
                return True
        elif isinstance(node, ast.Yield) and node.value is not None:
            if carries(node.value):
                return True
    return False


def summarize_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    facts: ModuleFacts,
) -> LocalSummary:
    """Compute one function's :class:`LocalSummary`."""
    cfg = build_cfg(func)
    params = tuple(
        a.arg for a in (
            *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
        )
    )
    initial = {p: frozenset({f"{_PARAM_PREFIX}{p}"}) for p in params}
    pre_states = solve_forward(cfg, _make_summary_transfer(None), initial)
    record = _ReturnRecord()
    reporting = _make_summary_transfer(record)
    for block_id, state in pre_states.items():
        apply_block(cfg.block(block_id), state, reporting)
    consumed: set[str] = set()
    sinks: set[str] = set()
    charges = False
    for node in ast.walk(func):
        if _is_charge_node(node) and not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            charges = True
        if isinstance(node, ast.Call):
            callee = _callee(node)
            if callee in _FRAME_CONSUMERS:
                for arg in _call_arguments(node):
                    consumed |= _names_in(arg) & set(params)
            if callee in _ARTIFACT_SINK_CALLEES:
                for arg in _call_arguments(node):
                    sinks |= _names_in(arg) & set(params)
    func_facts = facts.functions.get(qualname)
    decorators = func_facts.decorators if func_facts is not None else ()
    return LocalSummary(
        qualname=qualname,
        name=func.name,
        params=params,
        decorators=tuple(decorators),
        returns_fresh_direct=record.fresh,
        returns_taint_direct=record.taint,
        returned_call_locs=tuple(sorted(record.call_locs)),
        returned_params=tuple(sorted(record.params)),
        returns_value=record.returns_value,
        consumed_params_direct=tuple(sorted(consumed)),
        sink_params_direct=tuple(sorted(sinks)),
        charges_direct=charges,
        global_writes=_global_writes(func, facts),
        global_reads=_global_reads(func, facts),
        returns_unordered_direct=_returns_unordered(func),
    )


# ---------------------------------------------------------------------------
# Transitive closure over the call graph (SCC fixpoint)
# ---------------------------------------------------------------------------
@dataclass
class TransitiveSummary:
    """A function's summary closed over its (precise) callees."""

    qualname: str  #: fully qualified
    escapes: bool = False
    escape_chain: tuple[str, ...] = ()
    #: Escape derived purely from the bodies (no annotation trust) —
    #: what ``--check-annotations`` compares the decoration against.
    inferred_escapes: bool = False
    annotated_escapes: bool = False
    #: True iff the body provably hands nothing out (no valued return,
    #: no yield) — the proof that contradicts a stray @escapes_frame.
    provably_no_escape: bool = False
    returns_taint: bool = False
    taint_chain: tuple[str, ...] = ()
    charges: bool = False
    consumed_params: dict[str, tuple[str, ...]] = field(default_factory=dict)
    sink_params: dict[str, tuple[str, ...]] = field(default_factory=dict)
    global_writes: tuple[GlobalWrite, ...] = ()
    #: May the return value iterate in set/hash order?  Propagated
    #: through returned calls exactly like taint (RACE004's material).
    returns_unordered: bool = False
    unordered_chain: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """Canonical serialization (the cache's dependency digests)."""
        return {
            "qualname": self.qualname,
            "escapes": self.escapes,
            "escape_chain": list(self.escape_chain),
            "inferred_escapes": self.inferred_escapes,
            "annotated_escapes": self.annotated_escapes,
            "provably_no_escape": self.provably_no_escape,
            "returns_taint": self.returns_taint,
            "taint_chain": list(self.taint_chain),
            "charges": self.charges,
            "consumed_params": {
                p: list(c) for p, c in sorted(self.consumed_params.items())
            },
            "sink_params": {
                p: list(c) for p, c in sorted(self.sink_params.items())
            },
            "global_writes": [w.to_dict() for w in self.global_writes],
            "returns_unordered": self.returns_unordered,
            "unordered_chain": list(self.unordered_chain),
        }


def _tarjan_sccs(
    nodes: list[str], successors: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan's SCCs, iterative, in reverse-topological emit order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(successors.get(node, ()))
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _param_position(
    callee_summary: LocalSummary, arg_index: int, attribute_call: bool
) -> str | None:
    """Map a positional argument index to the callee's parameter name."""
    params = callee_summary.params
    offset = 1 if attribute_call and params and params[0] in ("self", "cls") else 0
    position = arg_index + offset
    return params[position] if position < len(params) else None


def summarize_project(
    graph: CallGraph,
    locals_by_full: dict[str, LocalSummary],
) -> dict[str, TransitiveSummary]:
    """Close local summaries over the call graph (SCC fixpoint)."""
    successors: dict[str, set[str]] = {}
    for caller, edges in graph.edges.items():
        successors[caller] = {
            edge.callee for edge in edges
            if edge.precise and edge.callee in locals_by_full
        }
    result: dict[str, TransitiveSummary] = {}
    for full, local in locals_by_full.items():
        result[full] = TransitiveSummary(
            qualname=full,
            escapes=local.returns_fresh_direct,
            escape_chain=(full,) if local.returns_fresh_direct else (),
            inferred_escapes=local.returns_fresh_direct,
            annotated_escapes="escapes_frame" in local.decorators,
            provably_no_escape=not local.returns_value,
            returns_taint=local.returns_taint_direct,
            taint_chain=(full,) if local.returns_taint_direct else (),
            charges=local.charges_direct,
            consumed_params={
                p: (full,) for p in local.consumed_params_direct
            },
            sink_params={p: (full,) for p in local.sink_params_direct},
            global_writes=local.global_writes,
            returns_unordered=local.returns_unordered_direct,
            unordered_chain=(
                (full,) if local.returns_unordered_direct else ()
            ),
        )
        # A trusted annotation counts as an escape contract for callers
        # (FLOW006 separately checks it is not *contradicted*).
        if result[full].annotated_escapes and not result[full].escapes:
            result[full].escapes = True
            result[full].escape_chain = (full,)

    call_sites = _call_sites_by_function(graph)

    def update(full: str) -> bool:
        local = locals_by_full[full]
        summary = result[full]
        changed = False
        # Escape and taint through returned calls.
        for line, col in local.returned_call_locs:
            for target in graph.resolve_call(full, line, col):
                target_summary = result.get(target)
                if target_summary is None:
                    continue
                if target_summary.escapes and not summary.escapes:
                    summary.escapes = True
                    summary.escape_chain = (
                        full, *target_summary.escape_chain
                    )
                    changed = True
                if (
                    target_summary.inferred_escapes
                    and not summary.inferred_escapes
                ):
                    summary.inferred_escapes = True
                    changed = True
                if target_summary.returns_taint and not summary.returns_taint:
                    summary.returns_taint = True
                    summary.taint_chain = (full, *target_summary.taint_chain)
                    changed = True
                if (
                    target_summary.returns_unordered
                    and not summary.returns_unordered
                ):
                    summary.returns_unordered = True
                    summary.unordered_chain = (
                        full, *target_summary.unordered_chain
                    )
                    changed = True
        # Charge-effect through any precise callee.
        if not summary.charges:
            for callee in successors.get(full, ()):  # noqa: B007
                if result[callee].charges:
                    summary.charges = True
                    changed = True
                    break
        # Parameter consumption / sinks through forwarded arguments.
        for site, attribute_call in call_sites.get(full, ()):  # noqa: B007
            targets = graph.resolve_call(full, site.lineno, site.col)
            for target in targets:
                target_summary = result.get(target)
                target_local = locals_by_full.get(target)
                if target_summary is None or target_local is None:
                    continue
                for arg_index, arg_name in enumerate(site.arg_names):
                    if arg_name is None or arg_name not in local.params:
                        continue
                    callee_param = _param_position(
                        target_local, arg_index, attribute_call
                    )
                    if callee_param is None:
                        continue
                    if (
                        callee_param in target_summary.consumed_params
                        and arg_name not in summary.consumed_params
                    ):
                        summary.consumed_params[arg_name] = (
                            full,
                            *target_summary.consumed_params[callee_param],
                        )
                        changed = True
                    if (
                        callee_param in target_summary.sink_params
                        and arg_name not in summary.sink_params
                    ):
                        summary.sink_params[arg_name] = (
                            full, *target_summary.sink_params[callee_param],
                        )
                        changed = True
        return changed

    for scc in _tarjan_sccs(sorted(locals_by_full), successors):
        # Reverse-topological emission: callees of this SCC are final.
        # Iterate inside the SCC until its members stop changing
        # (mutual recursion converges: all facts are monotone).
        changed = True
        while changed:
            changed = False
            for full in scc:
                if update(full):
                    changed = True
    return result


def _call_sites_by_function(
    graph: CallGraph,
) -> dict[str, list[tuple[CallSite, bool]]]:
    """Index call sites (with arg names) by fully-qualified caller."""
    sites: dict[str, list[tuple[CallSite, bool]]] = {}
    for facts in graph.modules.values():
        for site in facts.calls:
            if site.caller == "<module>" or not site.arg_names:
                continue
            full = f"{facts.module}.{site.caller}"
            sites.setdefault(full, []).append(
                (site, site.dotted is not None)
            )
    return sites
