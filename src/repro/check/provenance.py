"""Per-frame provenance for sanitizer diagnostics.

FrameSan records the last few lifecycle events (alloc, free, pool
moves) of every frame it sees, stamped with *simulated* time, so a
use-after-free report can say not just "pfn 217 is free" but "pfn 217:
allocated from pool @3.2ms, freed by buddy @4.1ms" — the moral
equivalent of KASAN's alloc/free stack traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class FrameEvent:
    """One recorded lifecycle event of a frame."""

    clock: int      #: simulated time (ns) the event happened at
    op: str         #: "alloc" | "free" | "reserve" | "release" | ...
    origin: str     #: "buddy" | "pool" | ...
    detail: str = ""

    def render(self) -> str:
        text = f"{self.op}[{self.origin}] @{self.clock}ns"
        return f"{text} ({self.detail})" if self.detail else text


class FrameProvenance:
    """Bounded per-frame event history."""

    def __init__(self, events_per_frame: int = 8) -> None:
        self.events_per_frame = events_per_frame
        self._events: dict[int, deque[FrameEvent]] = {}

    def record(self, pfn: int, clock: int, op: str, origin: str,
               detail: str = "") -> None:
        history = self._events.get(pfn)
        if history is None:
            history = self._events[pfn] = deque(maxlen=self.events_per_frame)
        history.append(FrameEvent(clock, op, origin, detail))

    def events(self, pfn: int) -> tuple[FrameEvent, ...]:
        return tuple(self._events.get(pfn, ()))

    def describe(self, pfn: int) -> str:
        history = self._events.get(pfn)
        if not history:
            return f"pfn {pfn}: no recorded lifecycle events"
        rendered = " -> ".join(event.render() for event in history)
        return f"pfn {pfn}: {rendered}"
