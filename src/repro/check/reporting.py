"""Reporters for lint findings: human-readable, JSON and SARIF."""

from __future__ import annotations

import json

from repro.check.engine import Finding, LintResult, engine_of, rule_catalog

#: Schema version of the JSON report (bump on breaking changes).
#:
#: * 1 — ast engine only.
#: * 2 — dual-engine: per-finding ``engine`` field, ``engines`` rule
#:   index, per-rule ``engine`` in the catalog, ``baseline`` block.
#: * 3 — interprocedural tier: per-finding ``qualname``
#:   (fully-qualified enclosing function, the baseline's
#:   path-insensitive secondary key); FLOW003-ip/FLOW004-ip/FLOW005/
#:   FLOW006 in the catalog with witness chains in messages; the
#:   ``engine`` and ``qualname`` fields are preserved on
#:   baseline-filtered findings too.
#: * 4 — race tier (simrace): a third ``"race"`` bucket in the
#:   ``engines`` index; RACE001-RACE004 in the catalog with ownership
#:   witness chains in messages; findings are globally ordered by
#:   ``(path, line, rule, qualname)`` so cold and warm-cache runs are
#:   byte-identical.
JSON_SCHEMA_VERSION = 4


def render_findings(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style one-line-per-finding report plus a summary."""
    catalog = rule_catalog()
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.severity} {finding.rule_id}: {finding.message}"
        )
        if verbose:
            lines.append(f"    rationale: {catalog[finding.rule_id].rationale}")
    for error in result.errors:
        lines.append(f"error: cannot lint {error}")
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    suffix = (
        f", {len(result.baselined)} baselined" if result.baselined else ""
    )
    if result.findings:
        breakdown = ", ".join(
            f"{rule_id}: {counts[rule_id]}" for rule_id in sorted(counts)
        )
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s) ({breakdown}){suffix}"
        )
    else:
        lines.append(
            f"clean: {result.files_scanned} file(s), 0 findings{suffix}"
        )
    return "\n".join(lines)


def findings_to_json(result: LintResult) -> str:
    """Stable JSON document (sorted keys) for CI consumption."""
    catalog = rule_catalog()
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    engines: dict[str, list[str]] = {"ast": [], "flow": [], "race": []}
    for rule_id in catalog:
        engines[engine_of(rule_id)].append(rule_id)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "clean": result.clean,
        "counts": counts,
        "findings": [finding.as_dict() for finding in result.findings],
        "errors": list(result.errors),
        "engines": engines,
        "baseline": {
            "applied": bool(result.baselined),
            "suppressed": len(result.baselined),
            "findings": [finding.as_dict() for finding in result.baselined],
        },
        "rules": {
            rule_id: {
                "severity": rule.severity,
                "summary": rule.summary,
                "engine": engine_of(rule_id),
            }
            for rule_id, rule in catalog.items()
        },
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# SARIF 2.1.0 — GitHub code-scanning ingestion
# ---------------------------------------------------------------------------
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: simlint severities -> SARIF levels.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _sarif_result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }


def findings_to_sarif(result: LintResult) -> str:
    """One SARIF 2.1.0 run per lint invocation (sorted keys, stable).

    Minimal but complete for GitHub code scanning: the driver carries
    the full rule catalog (id, short/full descriptions, default level,
    the owning engine as a property), each finding becomes one result
    with a physical location.  Baselined findings are *omitted* — the
    baseline already accepted them, so they must not re-annotate PRs.
    """
    catalog = rule_catalog()
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri": "https://www.vusec.net/projects/VUsion",
                    "rules": [
                        {
                            "id": rule_id,
                            "shortDescription": {"text": rule.summary},
                            "fullDescription": {"text": rule.rationale},
                            "defaultConfiguration": {
                                "level": _SARIF_LEVELS.get(
                                    rule.severity, "warning"
                                ),
                            },
                            "properties": {"engine": engine_of(rule_id)},
                        }
                        for rule_id, rule in sorted(catalog.items())
                    ],
                },
            },
            "results": [
                _sarif_result(finding) for finding in result.findings
            ],
        }],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
