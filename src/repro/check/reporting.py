"""Reporters for simlint/simflow findings: human-readable and JSON."""

from __future__ import annotations

import json

from repro.check.engine import LintResult, engine_of, rule_catalog

#: Schema version of the JSON report (bump on breaking changes).
#:
#: * 1 — ast engine only.
#: * 2 — dual-engine: per-finding ``engine`` field, ``engines`` rule
#:   index, per-rule ``engine`` in the catalog, ``baseline`` block.
#: * 3 — interprocedural tier: per-finding ``qualname``
#:   (fully-qualified enclosing function, the baseline's
#:   path-insensitive secondary key); FLOW003-ip/FLOW004-ip/FLOW005/
#:   FLOW006 in the catalog with witness chains in messages; the
#:   ``engine`` and ``qualname`` fields are preserved on
#:   baseline-filtered findings too.
JSON_SCHEMA_VERSION = 3


def render_findings(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style one-line-per-finding report plus a summary."""
    catalog = rule_catalog()
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.severity} {finding.rule_id}: {finding.message}"
        )
        if verbose:
            lines.append(f"    rationale: {catalog[finding.rule_id].rationale}")
    for error in result.errors:
        lines.append(f"error: cannot lint {error}")
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    suffix = (
        f", {len(result.baselined)} baselined" if result.baselined else ""
    )
    if result.findings:
        breakdown = ", ".join(
            f"{rule_id}: {counts[rule_id]}" for rule_id in sorted(counts)
        )
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s) ({breakdown}){suffix}"
        )
    else:
        lines.append(
            f"clean: {result.files_scanned} file(s), 0 findings{suffix}"
        )
    return "\n".join(lines)


def findings_to_json(result: LintResult) -> str:
    """Stable JSON document (sorted keys) for CI consumption."""
    catalog = rule_catalog()
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    engines: dict[str, list[str]] = {"ast": [], "flow": []}
    for rule_id in catalog:
        engines[engine_of(rule_id)].append(rule_id)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "clean": result.clean,
        "counts": counts,
        "findings": [finding.as_dict() for finding in result.findings],
        "errors": list(result.errors),
        "engines": engines,
        "baseline": {
            "applied": bool(result.baselined),
            "suppressed": len(result.baselined),
            "findings": [finding.as_dict() for finding in result.baselined],
        },
        "rules": {
            rule_id: {
                "severity": rule.severity,
                "summary": rule.summary,
                "engine": engine_of(rule_id),
            }
            for rule_id, rule in catalog.items()
        },
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
