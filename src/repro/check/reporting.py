"""Reporters for simlint findings: human-readable and JSON."""

from __future__ import annotations

import json

from repro.check.engine import LintResult
from repro.check.rules import RULES

#: Schema version of the JSON report (bump on breaking changes).
JSON_SCHEMA_VERSION = 1


def render_findings(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style one-line-per-finding report plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.severity} {finding.rule_id}: {finding.message}"
        )
        if verbose:
            lines.append(f"    rationale: {RULES[finding.rule_id].rationale}")
    for error in result.errors:
        lines.append(f"error: cannot lint {error}")
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    if result.findings:
        breakdown = ", ".join(
            f"{rule_id}: {counts[rule_id]}" for rule_id in sorted(counts)
        )
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s) ({breakdown})"
        )
    else:
        lines.append(f"clean: {result.files_scanned} file(s), 0 findings")
    return "\n".join(lines)


def findings_to_json(result: LintResult) -> str:
    """Stable JSON document (sorted keys) for CI consumption."""
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "clean": result.clean,
        "counts": counts,
        "findings": [finding.as_dict() for finding in result.findings],
        "errors": list(result.errors),
        "rules": {
            rule_id: {"severity": rule.severity, "summary": rule.summary}
            for rule_id, rule in RULES.items()
        },
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
