"""On-disk summary cache: warm lint runs re-analyze only changed files.

One JSON document maps each linted file to everything the engine
derived from its *content*: the intraprocedural findings, the
:class:`~repro.check.callgraph.ModuleFacts` record and the per-function
:class:`~repro.check.summaries.LocalSummary` set, keyed by a blake2b
content hash.  A warm run with an unchanged file skips parsing, the
AST rules and the CFG solvers entirely and rebuilds the call graph
from the cached facts (cheap: pure dict work).

Interprocedural findings additionally depend on *other* files — the
transitive summaries of every callee a file's calls resolve to.  Those
are captured in a per-file **dependency digest**; a file's cached
FLOW003-ip/FLOW004-ip findings are reused only when both its content
hash and its dependency digest are unchanged, so editing a leaf
function invalidates exactly the callers whose view of it changed.
FLOW005/FLOW006 are whole-project properties recomputed every run
(they need no ASTs, only summaries, so they cost microseconds warm).

The cache is an optimization, never an oracle: any miss falls back to
full analysis, a corrupt or version-skewed file is ignored wholesale,
and rule-subset runs (``--rule``) bypass it.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

#: Bump when the cached shapes (facts/summaries/findings) change.
#: v2: concurrency facts (spawns/comms/mutable bindings), global reads
#: and unordered-return bits joined the cached facts/summaries.
CACHE_VERSION = 2


def content_hash(text: str) -> str:
    """Stable digest of one file's source text."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def dependency_digest(parts: list[str]) -> str:
    """Digest of a file's interprocedural inputs (callee summaries)."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class SummaryCache:
    """Load/store per-file analysis results keyed by content hash."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._files: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.ip_hits = 0
        self.ip_misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
        ):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    # -- per-file content-keyed results --------------------------------
    def lookup(self, path: str, digest: str) -> dict | None:
        """The cached entry for ``path`` iff its content is unchanged."""
        entry = self._files.get(path)
        if isinstance(entry, dict) and entry.get("hash") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        path: str,
        digest: str,
        *,
        module: str,
        facts: dict,
        summaries: dict,
        findings: list[dict],
    ) -> None:
        self._files[path] = {
            "hash": digest,
            "module": module,
            "facts": facts,
            "summaries": summaries,
            "findings": findings,
            "ip": None,
        }

    # -- interprocedural findings, gated by the dep digest -------------
    def lookup_ip(self, path: str, dep_digest: str) -> list[dict] | None:
        entry = self._files.get(path)
        if isinstance(entry, dict):
            ip = entry.get("ip")
            if isinstance(ip, dict) and ip.get("deps") == dep_digest:
                self.ip_hits += 1
                return list(ip.get("findings", []))
        self.ip_misses += 1
        return None

    def store_ip(
        self, path: str, dep_digest: str, findings: list[dict]
    ) -> None:
        entry = self._files.get(path)
        if isinstance(entry, dict):
            entry["ip"] = {"deps": dep_digest, "findings": findings}

    def save(self, seen_paths: set[str] | None = None) -> None:
        """Persist the cache; entries for vanished files are pruned."""
        if seen_paths is not None:
            self._files = {
                path: entry
                for path, entry in self._files.items()
                if path in seen_paths
            }
        document = {"version": CACHE_VERSION, "files": self._files}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(document, sort_keys=True) + "\n", encoding="utf-8"
        )
