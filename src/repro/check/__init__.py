"""Correctness tooling for the simulation's own invariants.

Static tiers plus a runtime sanitizer, mirroring how the kernel pairs
``checkpatch``-style static checks with runtime sanitizers (KASAN):

* **simlint** (:mod:`repro.check.engine`, :mod:`repro.check.rules`) —
  an AST linter enforcing the determinism and layering contracts the
  reproduction's claims rest on (``python -m repro lint``).
* **simflow** (:mod:`repro.check.cfg`, :mod:`repro.check.lattice`,
  :mod:`repro.check.flow_rules`) — an intraprocedural CFG + worklist
  dataflow analyzer whose FLOW rules prove *path* properties the AST
  rules cannot see: the S ⊕ F mapping discipline, charge/ledger
  exception safety, frame-handle leaks and taint into artifacts —
  plus an interprocedural tier (:mod:`repro.check.callgraph`,
  :mod:`repro.check.summaries`, :mod:`repro.check.ip_rules`) that
  closes those rules over the project call graph with bottom-up
  function summaries: cross-function leak/taint tracking
  (FLOW003-ip/FLOW004-ip), the shard-ownership rule (FLOW005) and
  annotation-vs-inference checking (FLOW006).
* **simrace** (:mod:`repro.check.race`) — an ownership & determinism
  race detector over the extracted concurrency model (spawn sites,
  communication edges): fork-boundary aliasing (RACE001), unordered
  result merges (RACE002), undeclared worker reads of fork-inherited
  state (RACE003) and nondeterministic/unpicklable values on the
  pickle boundary (RACE004).
* **FrameSan** (:mod:`repro.check.sanitizer`) — a runtime frame
  sanitizer (``REPRO_SANITIZE=1``) that poisons freed frames, detects
  use-after-free / double-free / CoW violations and audits refcount
  and merge-charge accounting at end of run.
"""

from __future__ import annotations

from repro.check.baseline import (
    Baseline,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.check.cache import SummaryCache
from repro.check.callgraph import CallGraph, ModuleFacts, extract_facts
from repro.check.cfg import FunctionCFG, build_cfg, iter_functions
from repro.check.engine import (
    Finding,
    LintResult,
    check_annotations,
    engine_of,
    lint_paths,
    lint_project,
    lint_source,
    rule_catalog,
)
from repro.check.fixes import FIXABLE_RULES, fix_paths, fix_source
from repro.check.flow_rules import FLOW_RULES, FlowRule
from repro.check.ip_rules import IP_RULES, IpAnalysis, IpRule
from repro.check.race import (
    OWNERSHIP_FACTS,
    RACE_RULES,
    RaceAnalysis,
    RaceRule,
)
from repro.check.summaries import (
    LocalSummary,
    TransitiveSummary,
    summarize_function,
    summarize_project,
)
from repro.check.lattice import solve_forward, solve_must_reach
from repro.check.reporting import (
    render_findings,
    findings_to_json,
    findings_to_sarif,
)
from repro.check.rules import RULES, Rule
from repro.check.sanitizer import (
    FrameSan,
    SanitizerError,
    UseAfterFreeError,
    DoubleFreeError,
    BadFreeError,
    CowViolationError,
    AccountingError,
    sanitizer_enabled,
)

__all__ = [
    "Finding",
    "LintResult",
    "lint_paths",
    "lint_project",
    "lint_source",
    "check_annotations",
    "engine_of",
    "rule_catalog",
    "SummaryCache",
    "CallGraph",
    "ModuleFacts",
    "extract_facts",
    "IP_RULES",
    "IpRule",
    "IpAnalysis",
    "RACE_RULES",
    "RaceRule",
    "RaceAnalysis",
    "OWNERSHIP_FACTS",
    "FIXABLE_RULES",
    "fix_paths",
    "fix_source",
    "LocalSummary",
    "TransitiveSummary",
    "summarize_function",
    "summarize_project",
    "Baseline",
    "render_findings",
    "findings_to_json",
    "findings_to_sarif",
    "RULES",
    "Rule",
    "FLOW_RULES",
    "FlowRule",
    "FunctionCFG",
    "build_cfg",
    "iter_functions",
    "solve_forward",
    "solve_must_reach",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "FrameSan",
    "SanitizerError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "BadFreeError",
    "CowViolationError",
    "AccountingError",
    "sanitizer_enabled",
]
