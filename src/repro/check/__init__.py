"""Correctness tooling for the simulation's own invariants.

Two layers, mirroring how the kernel pairs ``checkpatch``-style static
checks with runtime sanitizers (KASAN):

* **simlint** (:mod:`repro.check.engine`, :mod:`repro.check.rules`) —
  an AST linter enforcing the determinism and layering contracts the
  reproduction's claims rest on (``python -m repro lint``).
* **FrameSan** (:mod:`repro.check.sanitizer`) — a runtime frame
  sanitizer (``REPRO_SANITIZE=1``) that poisons freed frames, detects
  use-after-free / double-free / CoW violations and audits refcount
  and merge-charge accounting at end of run.
"""

from __future__ import annotations

from repro.check.engine import Finding, LintResult, lint_paths, lint_source
from repro.check.reporting import render_findings, findings_to_json
from repro.check.rules import RULES, Rule
from repro.check.sanitizer import (
    FrameSan,
    SanitizerError,
    UseAfterFreeError,
    DoubleFreeError,
    BadFreeError,
    CowViolationError,
    AccountingError,
    sanitizer_enabled,
)

__all__ = [
    "Finding",
    "LintResult",
    "lint_paths",
    "lint_source",
    "render_findings",
    "findings_to_json",
    "RULES",
    "Rule",
    "FrameSan",
    "SanitizerError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "BadFreeError",
    "CowViolationError",
    "AccountingError",
    "sanitizer_enabled",
]
