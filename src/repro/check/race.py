"""simrace: static ownership & determinism races across process forks.

The fifth checking tier.  simflow's interprocedural rules prove that
task-reachable code *writes* no module-level state (FLOW005); simrace
models the concurrency structure itself — where control forks
(:class:`~repro.check.callgraph.SpawnSite`), where values cross the
pickle boundary (:class:`~repro.check.callgraph.CommEdge`) — and
proves an **ownership discipline** over it.  Every value in a parallel
run sits somewhere in a three-point lattice:

* **parent-owned** — lives in the submitting process; workers must
  never see it;
* **transferred-to-worker** — pickled into a task payload; the parent
  must stop touching it the moment it is handed off;
* **shared-read-only** — fork-inherited module state both sides may
  read, *declared* as such in :data:`OWNERSHIP_FACTS` (the analogue of
  the call-graph ``FACTS`` table: checked configuration, not code).

Four rules enforce the discipline:

* **RACE001** — a mutable value captured into a task payload
  (``Process(args=...)``, ``executor.submit(f, x)``, TaskSpec
  construction) is mutated by the parent *after* the hand-off.  Under
  fork-on-submit the worker sees an arbitrary snapshot; under spawn
  the parent's write is silently lost — either way ``-j1 != -jN``.
* **RACE002** — an order-sensitive reduction runs over an unordered
  completion stream (a set, ``as_completed``-style iteration,
  directory scans) without a deterministic sort key.  The merged
  artifact depends on hash order, i.e. on ``PYTHONHASHSEED``.
* **RACE003** — a worker-reachable function reads fork-inherited
  module state that is not declared shared-read-only in
  :data:`OWNERSHIP_FACTS`.  This upgrades FLOW005 from a write-ban to
  read-version consistency: an undeclared read is a dependency on
  whatever the parent happened to have imported/mutated at fork time,
  with a witness chain naming the worker path that reaches it.
* **RACE004** — a nondeterministic or unpicklable value crosses a
  communication edge: lambdas and generators (pickle errors at
  runtime), open handles (silently rebound), ``id()`` addresses and
  set-ordered iterables (differ across processes), including values
  laundered through calls whose *summary* returns set-ordered data.

Like the rest of ``repro.check`` this module is a runtime leaf: pure
``ast`` + stdlib.  The decorators it recognizes (``@worker_entry``,
``@owned_by_worker``) live in :mod:`repro.annotations` and are matched
by name only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.check.callgraph import TASK_ENTRY_POINTS, ModuleFacts
from repro.check.cfg import FunctionCFG
from repro.check.flow_rules import _callee
from repro.check.ip_rules import IpAnalysis, ProjectFinding, _chain_text
from repro.check.summaries import (
    _MUTATOR_METHODS,
    _base_name,
    _unordered_expr,
    GlobalRead,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.engine import LintContext

# ---------------------------------------------------------------------------
# The ownership lattice
# ---------------------------------------------------------------------------
PARENT_OWNED = "parent-owned"
TRANSFERRED = "transferred-to-worker"
SHARED_READ_ONLY = "shared-read-only"

#: Declared shared-read-only state: module -> module-level names whose
#: fork-inherited snapshot workers may read.  Everything listed here is
#: a registry filled at import time and only read afterwards — FLOW005
#: independently bans task-reachable *writes* to all of them, which is
#: what makes the read-only declaration sound.  An undeclared read from
#: worker-reachable code is RACE003; growing this table is a reviewed
#: ownership decision, not a suppression.
OWNERSHIP_FACTS: dict[str, tuple[str, ...]] = {
    # Attack registry: the class list populated at import of
    # repro.attacks and read by spec resolution in workers.
    "repro.attacks": ("ALL_ATTACKS",),
    # Engine registry: the EngineSpec table driving create_engine(),
    # plus the VUsion ablation variants it expands.
    "repro.fusion.registry": ("ENGINE_SPECS", "_VUSION_ABLATIONS"),
    # Experiment/scale registries read when a task re-resolves its
    # spec, and the Table 1 attack roster the matrix driver iterates.
    "repro.harness.experiments": ("EXPERIMENTS", "SCALES", "TABLE1_ATTACKS"),
    # Scenario presets: named SystemConfig templates and the standard
    # four-config comparison sweep.
    "repro.harness.scenario": ("PRESETS", "STANDARD_CONFIGS"),
    # Fleet presets: named fleet-shape templates.
    "repro.harness.fleet": ("FLEET_PRESETS",),
    # Distro page-content templates the workload generators sample.
    "repro.workloads.vm_image": ("DISTRO_IMAGES",),
}


# ---------------------------------------------------------------------------
# Rule registry (the "race" engine)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RaceRule:
    """One ownership/determinism invariant over the concurrency model."""

    id: str
    severity: str
    summary: str
    rationale: str
    #: "function" rules run per function body with the race analysis;
    #: "project" rules run once over the whole worker-reachable set.
    scope: str
    applies_to: Callable[[str], bool] = field(default=lambda module: True)
    #: function-scope checker: (ctx, cfg, func, caller_full, analysis).
    checker: Callable[..., None] | None = None
    #: project-scope checker: analysis -> findings.
    project_checker: (
        Callable[["RaceAnalysis"], list[ProjectFinding]] | None
    ) = None

    def applies(self, module: str) -> bool:
        return self.applies_to(module)


#: Registry of race rules, id -> rule.
RACE_RULES: dict[str, RaceRule] = {}


def register_race(rule: RaceRule) -> RaceRule:
    if rule.id in RACE_RULES:
        raise ValueError(f"duplicate race rule id {rule.id}")
    RACE_RULES[rule.id] = rule
    return rule


def _race_applies(module: str) -> bool:
    """Simulation code only: the analyzer's own registries are exempt
    (same carve-out FLOW005 makes)."""
    return module.startswith("repro.") and not module.startswith(
        "repro.check"
    )


# ---------------------------------------------------------------------------
# Project-wide concurrency analysis
# ---------------------------------------------------------------------------
class RaceAnalysis:
    """The concurrency model: spawn sites, comm edges, worker set.

    Built on top of :class:`~repro.check.ip_rules.IpAnalysis` — the
    call graph and summaries are shared, so a lint run pays for them
    once.  ``worker_reachable`` is the transferred-to-worker region of
    the ownership lattice: everything reachable (over *all* edge kinds,
    conservative like FLOW005) from a task entry point, a resolved
    spawn target, or an ``@worker_entry`` function.
    """

    def __init__(self, ip: IpAnalysis) -> None:
        self.ip = ip
        self.graph = ip.graph
        self.spawns: list[tuple[ModuleFacts, object]] = []
        self.comms: list[tuple[ModuleFacts, object]] = []
        for module in sorted(self.graph.modules):
            facts = self.graph.modules[module]
            for spawn in facts.spawns:
                self.spawns.append((facts, spawn))
            for comm in facts.comms:
                self.comms.append((facts, comm))
        roots: set[str] = set()
        for entry in TASK_ENTRY_POINTS:
            if entry in self.graph.functions:
                roots.add(entry)
        for facts, spawn in self.spawns:
            target = getattr(spawn, "target", None)
            if target in (None, "<lambda>"):
                continue
            resolved = self._resolve_spawn_target(facts, target)
            if resolved is not None:
                roots.add(resolved)
        for full, (func, _facts) in self.graph.functions.items():
            if "worker_entry" in func.decorators:
                roots.add(full)
        self.worker_roots: tuple[str, ...] = tuple(sorted(roots))
        #: worker function -> witness chain from its root.
        self.worker_reachable: dict[str, tuple[str, ...]] = (
            self.graph.reachable_from(self.worker_roots)
        )

    def _resolve_spawn_target(
        self, facts: ModuleFacts, target: str
    ) -> str | None:
        """Resolve a spawn target's dotted text to a project function."""
        parts = target.split(".")
        if len(parts) == 1:
            if parts[0] in facts.functions:
                return f"{facts.module}.{parts[0]}"
            imported = facts.imports.get(parts[0])
            if imported is not None and imported in self.graph.functions:
                return imported
        elif parts[0] in ("self", "cls") and len(parts) == 2:
            for qual in facts.functions:
                if qual.endswith(f".{parts[1]}"):
                    return f"{facts.module}.{qual}"
        elif target in self.graph.functions:
            return target
        return None

    def ownership_of(self, module: str, name: str) -> str:
        """Where a module-level binding sits in the ownership lattice."""
        if name in OWNERSHIP_FACTS.get(module, ()):
            return SHARED_READ_ONLY
        return PARENT_OWNED


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------
def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """Every node of the function's own body, skipping nested
    function/class/lambda bodies (each is its own analysis unit)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            stack.extend(ast.iter_child_nodes(node))


def _mutations_of(node: ast.AST) -> list[tuple[str, str]]:
    """(base name, description) for every in-place mutation in ``node``.

    Rebinding a plain local name is *not* a mutation (the captured
    object is unaffected); only subscript/attribute stores, augmented
    stores into containers and mutator-method calls alias through.
    """
    out: list[tuple[str, str]] = []
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            base = _base_name(func.value)
            if base is not None:
                out.append((base, f".{func.attr}() call"))
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                base = _base_name(target)
                if base is not None:
                    kind = (
                        "subscript" if isinstance(target, ast.Subscript)
                        else "attribute"
                    )
                    out.append((base, f"{kind} store"))
    elif isinstance(node, ast.AugAssign):
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            base = _base_name(node.target)
            if base is not None:
                out.append((base, "augmented store"))
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                base = _base_name(target)
                if base is not None:
                    out.append((base, "delete"))
    return out


def _function_sites(
    analysis: RaceAnalysis, caller_full: str
) -> tuple[ModuleFacts, str, list, list] | None:
    """(module facts, in-module qual, spawns, comms) for one function."""
    entry = analysis.graph.functions.get(caller_full)
    if entry is None:
        return None
    _func, facts = entry
    qual = caller_full[len(facts.module) + 1:]
    spawns = [s for s in facts.spawns if s.caller == qual]
    comms = [c for c in facts.comms if c.caller == qual]
    return facts, qual, spawns, comms


# ---------------------------------------------------------------------------
# RACE001 — fork-boundary aliasing: parent writes a captured payload
# ---------------------------------------------------------------------------
def _check_race001(
    ctx: "LintContext",
    cfg: FunctionCFG,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    caller_full: str,
    analysis: RaceAnalysis,
) -> None:
    sites = _function_sites(analysis, caller_full)
    if sites is None:
        return
    _facts, _qual, spawns, comms = sites
    #: captured name -> (earliest hand-off line, hand-off description)
    captures: dict[str, tuple[int, str]] = {}

    def capture(name: str, lineno: int, what: str) -> None:
        if name not in captures or lineno < captures[name][0]:
            captures[name] = (lineno, what)

    for spawn in spawns:
        if spawn.kind == "serial":
            continue  # in-process call: completes before the parent resumes
        what = (
            "Process() spawn payload" if spawn.kind == "process"
            else "executor submit payload"
        )
        for name in spawn.payload:
            capture(name, spawn.lineno, what)
    for comm in comms:
        if comm.kind != "spec":
            continue
        for name in comm.payload:
            capture(name, comm.lineno, "task spec payload")
    if not captures:
        return
    for node in _own_nodes(func):
        line = getattr(node, "lineno", 0)
        for name, detail in _mutations_of(node):
            if name not in captures:
                continue
            cap_line, what = captures[name]
            if line <= cap_line:
                continue
            ctx.report(
                "RACE001", node,
                f"'{name}' was captured into a {what} at line {cap_line} "
                f"and the parent mutates it afterwards ({detail}); a "
                "captured value is transferred-to-worker — under fork the "
                "worker snapshots an arbitrary version, under spawn the "
                "parent's write is lost (fork-boundary aliasing)",
            )


register_race(RaceRule(
    id="RACE001",
    severity="error",
    summary="task payloads are never mutated by the parent after hand-off",
    rationale=(
        "Capturing a dict into Process(args=...) or executor.submit() "
        "moves it to the transferred-to-worker point of the ownership "
        "lattice; a later parent-side .append()/subscript store races "
        "the pickle. Whether the worker observes the write depends on "
        "the start method and scheduling — exactly the -j1 != -jN "
        "nondeterminism the sharding contract forbids. The fix is to "
        "finish building the payload before the hand-off (or copy)."
    ),
    scope="function",
    applies_to=_race_applies,
    checker=_check_race001,
))


# ---------------------------------------------------------------------------
# RACE002 — order-sensitive reduction over unordered completion
# ---------------------------------------------------------------------------
#: Calls whose result iterates in completion/filesystem order — no
#: deterministic relation to submission order.
_UNORDERED_PRODUCERS = frozenset({
    "as_completed", "wait", "iterdir", "glob", "rglob", "scandir",
    "listdir",
})


def _is_unordered_source(
    expr: ast.expr, unordered_names: set[str]
) -> bool:
    if _unordered_expr(expr):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in unordered_names
    if isinstance(expr, ast.Call):
        callee = _callee(expr)
        if callee in _UNORDERED_PRODUCERS:
            return True
        if callee == "sorted":
            return False
        if callee in ("list", "tuple", "iter", "reversed") and expr.args:
            return _is_unordered_source(expr.args[0], unordered_names)
    return False


def _merges(body: list[ast.stmt]) -> bool:
    """Does a loop body fold its element into an accumulator?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Subscript, ast.Attribute))
                    for t in node.targets
                ):
                    return True
            elif isinstance(node, (ast.AugAssign, ast.Yield, ast.YieldFrom)):
                return True
    return False


def _check_race002(
    ctx: "LintContext",
    cfg: FunctionCFG,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    caller_full: str,
    analysis: RaceAnalysis,
) -> None:
    unordered_names: set[str] = set()
    assigns: list[tuple[int, ast.Assign | ast.AnnAssign]] = []
    for node in _own_nodes(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            assigns.append((getattr(node, "lineno", 0), node))
    for _line, node in sorted(assigns, key=lambda pair: pair[0]):
        value = node.value
        if value is None or not _is_unordered_source(value, unordered_names):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                unordered_names.add(target.id)
        # Materializing the unordered stream into an ordered sequence
        # freezes an arbitrary order — flag it at the conversion point.
        if isinstance(value, ast.Call) and _callee(value) in (
            "list", "tuple"
        ):
            ctx.report(
                "RACE002", node,
                "an unordered completion/set stream is materialized into "
                "an ordered sequence without a deterministic sort key; "
                "the frozen order depends on hash seed / completion "
                "timing — sort by a stable key (e.g. (shard, pfn)) first",
            )

    for node in _own_nodes(func):
        if isinstance(node, ast.For):
            if _is_unordered_source(node.iter, unordered_names) and _merges(
                node.body
            ):
                ctx.report(
                    "RACE002", node,
                    "order-sensitive reduction iterates an unordered "
                    "completion/set stream; the accumulated result "
                    "depends on hash order — iterate "
                    "sorted(...) with a deterministic key instead",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_unordered_source(gen.iter, unordered_names):
                    ctx.report(
                        "RACE002", node,
                        "comprehension over an unordered set/completion "
                        "stream builds an order-sensitive result; wrap "
                        "the iterable in sorted(...) with a stable key",
                    )
                    break


register_race(RaceRule(
    id="RACE002",
    severity="error",
    summary="result merges iterate completion streams in deterministic order",
    rationale=(
        "A merge loop over as_completed()-style iteration, a set of "
        "finished shards, or a directory scan produces artifacts whose "
        "byte order tracks completion timing and PYTHONHASHSEED. "
        "Submission-indexed collection (what runner.pool does) or an "
        "explicit sorted(...) key makes -jN output byte-identical to "
        "-j1; set-typed *results* (SetComp) stay exempt because their "
        "equality is order-free."
    ),
    scope="function",
    applies_to=_race_applies,
    checker=_check_race002,
))


# ---------------------------------------------------------------------------
# RACE003 — undeclared worker reads of fork-inherited module state
# ---------------------------------------------------------------------------
def _resolve_read(
    analysis: RaceAnalysis, facts: ModuleFacts, read: GlobalRead
) -> tuple[str, str] | None:
    """Resolve a recorded read to ``(owning module, binding name)``.

    Only reads that land on a *mutable* module-level binding somewhere
    in the project are ownership-relevant; reads of imported functions,
    classes or frozen constants resolve to ``None``.
    """
    if read.attr is None:
        if read.name in facts.mutable_module_names:
            return facts.module, read.name
        imported = facts.imports.get(read.name)
        if imported is not None and "." in imported:
            owner, _, name = imported.rpartition(".")
            owner_facts = analysis.graph.modules.get(owner)
            if (
                owner_facts is not None
                and name in owner_facts.mutable_module_names
            ):
                return owner, name
        return None
    imported = facts.imports.get(read.name)
    if imported is not None:
        owner_facts = analysis.graph.modules.get(imported)
        if (
            owner_facts is not None
            and read.attr in owner_facts.mutable_module_names
        ):
            return imported, read.attr
    return None


def race003_findings(analysis: RaceAnalysis) -> list[ProjectFinding]:
    """Worker reads of module state with no shared-read-only contract."""
    findings: list[ProjectFinding] = []
    seen: set[tuple[str, int, int, str]] = set()
    for full, chain in sorted(analysis.worker_reachable.items()):
        if full.startswith("repro.check."):
            continue
        entry = analysis.graph.functions.get(full)
        local = analysis.ip.local_summaries.get(full)
        if entry is None or local is None:
            continue
        func_facts, mod_facts = entry
        if "owned_by_worker" in func_facts.decorators:
            continue
        for read in local.global_reads:
            resolved = _resolve_read(analysis, mod_facts, read)
            if resolved is None:
                continue
            owner, name = resolved
            if analysis.ownership_of(owner, name) == SHARED_READ_ONLY:
                continue
            key = (mod_facts.module, read.lineno, read.col, f"{owner}.{name}")
            if key in seen:
                continue
            seen.add(key)
            findings.append(ProjectFinding(
                rule_id="RACE003",
                module=mod_facts.module,
                lineno=read.lineno,
                col=read.col,
                message=(
                    f"worker-reachable function "
                    f"{full.rsplit('.', 1)[-1]}() reads fork-inherited "
                    f"module state '{owner}.{name}' that is not declared "
                    "shared-read-only in OWNERSHIP_FACTS; the worker "
                    "sees whatever snapshot existed at fork time — "
                    "declare the registry or pass the value through the "
                    f"task payload [{_chain_text(chain)}]"
                ),
            ))
    return findings


register_race(RaceRule(
    id="RACE003",
    severity="error",
    summary="worker reads of fork-inherited state are declared shared-read-only",
    rationale=(
        "FLOW005 bans task-reachable *writes* to module state; reads "
        "are still version-sensitive — a worker reading an undeclared "
        "registry depends on whatever the parent had imported or "
        "monkey-patched at fork time, which differs between -j1 "
        "(current state) and -jN (fork snapshot). OWNERSHIP_FACTS is "
        "the read-side contract: declared registries are import-time "
        "constants both sides may consume; everything else must travel "
        "in the task payload. Witness chains name the worker path."
    ),
    scope="project",
    project_checker=race003_findings,
))


# ---------------------------------------------------------------------------
# RACE004 — nondeterministic/unpicklable values on communication edges
# ---------------------------------------------------------------------------
def _hazard_bindings(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Local names bound to values that must not cross the boundary."""
    hazards: dict[str, str] = {}
    for node in _own_nodes(func):
        value: ast.expr | None = None
        targets: list[ast.Name] = []
        if isinstance(node, ast.Assign):
            value = node.value
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                value = node.value
                targets = [node.target]
        elif isinstance(node, ast.With):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and _callee(item.context_expr) == "open"
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    hazards[item.optional_vars.id] = (
                        "an open file handle (unpicklable / rebound)"
                    )
            continue
        if value is None or not targets:
            continue
        kind: str | None = None
        if isinstance(value, ast.Lambda):
            kind = "a lambda (unpicklable)"
        elif isinstance(value, ast.Call) and _callee(value) == "open":
            kind = "an open file handle (unpicklable / rebound)"
        elif _unordered_expr(value):
            kind = "a set-ordered value (hash-order iteration)"
        for target in targets:
            if kind is not None:
                hazards[target.id] = kind
            else:
                hazards.pop(target.id, None)
    return hazards


def _payload_subnodes(expr: ast.expr):
    """Walk a payload expression, not descending through ``sorted(...)``
    (which launders order) or into lambda bodies (reported whole)."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Call) and _callee(node) == "sorted":
            continue
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _payload_hazard(
    expr: ast.expr,
    hazards: dict[str, str],
    analysis: RaceAnalysis,
    caller_full: str,
) -> tuple[str, tuple[str, ...] | None] | None:
    """(description, witness chain or None) if the payload is hazardous."""
    for sub in _payload_subnodes(expr):
        if isinstance(sub, ast.Lambda):
            return "a lambda (unpicklable)", None
        if isinstance(sub, ast.GeneratorExp):
            return "a generator (unpicklable)", None
        if isinstance(sub, (ast.Set, ast.SetComp)):
            return "a set-ordered value (hash-order iteration)", None
        if isinstance(sub, ast.Name) and sub.id in hazards:
            return hazards[sub.id], None
        if isinstance(sub, ast.Call):
            callee = _callee(sub)
            if callee in ("set", "frozenset"):
                return "a set-ordered value (hash-order iteration)", None
            if callee == "id":
                return (
                    "an id() address (differs across processes)", None
                )
            for target in analysis.graph.resolve_call(
                caller_full, sub.lineno, sub.col_offset
            ):
                summary = analysis.ip.summaries.get(target)
                if summary is not None and summary.returns_unordered:
                    return (
                        "a set-ordered value (hash-order iteration)",
                        (caller_full, *summary.unordered_chain),
                    )
    return None


def _comm_payload_exprs(
    node: ast.Call, kind: str, comm_kind: str | None
) -> list[ast.expr]:
    """The expressions that actually cross at one site."""
    if kind == "spawn-process":
        exprs: list[ast.expr] = []
        for keyword in node.keywords:
            if keyword.arg in ("args", "kwargs"):
                value = keyword.value
                if isinstance(value, (ast.Tuple, ast.List)):
                    exprs.extend(value.elts)
                else:
                    exprs.append(value)
            elif keyword.arg == "target" and isinstance(
                keyword.value, ast.Lambda
            ):
                exprs.append(keyword.value)
        return exprs
    if kind == "spawn-submit":
        return [
            *node.args[1:], *(kw.value for kw in node.keywords),
        ]
    if comm_kind == "spec":
        return [*node.args, *(kw.value for kw in node.keywords)]
    return list(node.args)  # "send" and "callback": positional payload


def _check_race004(
    ctx: "LintContext",
    cfg: FunctionCFG,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    caller_full: str,
    analysis: RaceAnalysis,
) -> None:
    sites = _function_sites(analysis, caller_full)
    if sites is None:
        return
    _facts, _qual, spawns, comms = sites
    #: (line, col) -> (site kind, comm kind, human label)
    locations: dict[tuple[int, int], tuple[str, str | None, str]] = {}
    for spawn in spawns:
        if spawn.kind == "serial":
            continue  # in-process: nothing is pickled
        kind = (
            "spawn-process" if spawn.kind == "process" else "spawn-submit"
        )
        locations[(spawn.lineno, spawn.col)] = (
            kind, None, f"{spawn.kind} spawn",
        )
    for comm in comms:
        labels = {
            "send": "pipe/queue send",
            "spec": "task spec construction",
            "callback": "result callback",
        }
        locations.setdefault(
            (comm.lineno, comm.col),
            ("comm", comm.kind, labels.get(comm.kind, comm.kind)),
        )
    if not locations:
        return
    hazards = _hazard_bindings(func)
    for node in _own_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        site = locations.get((node.lineno, node.col_offset))
        if site is None:
            continue
        kind, comm_kind, label = site
        for expr in _comm_payload_exprs(node, kind, comm_kind):
            hazard = _payload_hazard(expr, hazards, analysis, caller_full)
            if hazard is None:
                continue
            description, chain = hazard
            suffix = f" [{_chain_text(chain)}]" if chain else ""
            ctx.report(
                "RACE004", node,
                f"{description} crosses a {label} communication edge; "
                "values crossing the pickle boundary must be "
                "deterministic, picklable and address-free so worker "
                f"and parent agree byte-for-byte{suffix}",
            )
            break  # one finding per site is enough signal


register_race(RaceRule(
    id="RACE004",
    severity="error",
    summary="only deterministic, picklable values cross communication edges",
    rationale=(
        "The pickle boundary is where DET taint meets concurrency: a "
        "set crossing in a TaskSpec field iterates differently in the "
        "worker (fresh interpreter, new hash seed), an open handle or "
        "lambda fails to pickle only under -jN, and an id() travels as "
        "a meaningless foreign address. Summaries propagate "
        "'returns set-ordered' through call chains, so a frozen-via-"
        "set() helper is caught at the construction site with a "
        "witness chain."
    ),
    scope="function",
    applies_to=_race_applies,
    checker=_check_race004,
))
