"""simflow's project-wide call graph: module facts + call resolution.

The interprocedural tier (FLOW003-ip / FLOW004-ip / FLOW005 / FLOW006)
needs to know *who calls whom* across the whole tree.  This module
extracts one serializable :class:`ModuleFacts` record per file — the
unit the summary cache stores — and resolves call sites into edges of
a :class:`CallGraph`:

* **direct calls** — a plain name resolves through the module's own
  top-level functions/classes, then its imports (``from repro.x import
  f`` / ``import repro.x as m`` + ``m.f(...)``); calling a class calls
  its ``__init__``;
* **methods via class-hierarchy lookup** — ``self.m()`` / ``cls.m()``
  resolves to ``m`` on the enclosing class, its ancestors *and* its
  descendants (dynamic dispatch: ``FusionEngine.attach`` calling
  ``self._register`` reaches every engine's override);
* **union-by-name** — ``obj.m()`` on an unknown receiver conservatively
  reaches every project function named ``m`` (marked imprecise: the
  summary-driven rules only trust precise edges, reachability uses
  all of them);
* **address-taken callbacks** — a bound method or module function
  passed as an argument (``kernel.register_daemon(name, t,
  self.scan_tick)``) adds a ``ref`` edge from the caller: whoever can
  run the caller can eventually run the callback;
* **declared indirection** — registry/factory hops the AST cannot see
  (``EXPERIMENTS[name].run(...)`` dispatching to the ``run_*``
  drivers) are declared once in the :data:`FACTS` table and expanded
  into edges, with ``*`` suffix patterns matched against qualnames.

Calls inside ``lambda`` bodies are attributed to the enclosing
function (the lambda runs on the caller's behalf); nested ``def``
bodies are not — each function is its own caller.

Like the rest of ``repro.check`` this module is a runtime leaf: pure
``ast`` + stdlib, no ``repro.*`` runtime imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Declared indirection: caller qualname -> callee qualname patterns.
#: A trailing ``*`` is a prefix wildcard.  This is the "small facts
#: table" for registry/factory dispatch the resolver cannot see
#: syntactically; entries are part of the checked configuration and
#: the mutation meta-test exercises the chains that cross them.
FACTS: dict[str, tuple[str, ...]] = {
    # EXPERIMENTS[name].run(scale, seed) dispatches through a lambda
    # stored in the registry to the module's run_* drivers.
    "repro.harness.experiments.ExperimentSpec.run": (
        "repro.harness.experiments.run_*",
    ),
}

#: Entry points of the task-ownership analysis (FLOW005): everything
#: reachable from here runs inside one worker task and must not touch
#: module-level mutable state.
TASK_ENTRY_POINTS: tuple[str, ...] = ("repro.runner.task.execute_task",)


@dataclass
class CallSite:
    """One syntactic call, attributed to its enclosing function."""

    caller: str           #: in-module qualname ("Class.m", "f", "<module>")
    callee_name: str      #: last name component of the called expression
    dotted: str | None    #: full dotted text ("self.pool.alloc") if a chain
    receiver: str | None  #: first component of the chain ("self", "kernel")
    lineno: int
    col: int
    #: True for attribute calls (``obj.m(...)``) — even when the
    #: receiver chain is unparseable (``items[i].run(...)``), in which
    #: case resolution must stay union-grade.
    attr: bool = False
    #: Positional argument names (plain ``Name`` args, else None) — used
    #: to thread consumed/sink parameter summaries through call chains.
    arg_names: tuple[str | None, ...] = ()
    #: Function/bound-method references passed as arguments, as dotted
    #: strings ("self.scan_tick", "charge") — address-taken callbacks.
    arg_refs: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "caller": self.caller, "callee": self.callee_name,
            "dotted": self.dotted, "receiver": self.receiver,
            "line": self.lineno, "col": self.col, "attr": self.attr,
            "args": list(self.arg_names), "refs": list(self.arg_refs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(
            caller=data["caller"], callee_name=data["callee"],
            dotted=data["dotted"], receiver=data["receiver"],
            lineno=data["line"], col=data["col"], attr=data["attr"],
            arg_names=tuple(data["args"]), arg_refs=tuple(data["refs"]),
        )


@dataclass
class SpawnSite:
    """One point where control crosses a process (or pool) boundary.

    simrace's concurrency model: ``kind`` distinguishes a raw
    ``Process(target=...)`` launch, an executor ``submit``/``map``/
    ``apply_async`` hand-off, and the ``_run_serial``-style *serial*
    degradation (an in-process call of the worker entry — same
    ownership contract, no actual fork).  ``payload`` holds the plain
    names captured into the spawned side's arguments; RACE001 checks
    that the parent does not mutate them after the hand-off.
    """

    caller: str           #: in-module qualname of the spawning function
    kind: str             #: "process" | "submit" | "serial"
    target: str | None    #: dotted text of the spawned callable, or "<lambda>"
    payload: tuple[str, ...]  #: names captured into the payload
    lineno: int
    col: int

    def to_dict(self) -> dict[str, object]:
        return {
            "caller": self.caller, "kind": self.kind, "target": self.target,
            "payload": list(self.payload), "line": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpawnSite":
        return cls(
            caller=data["caller"], kind=data["kind"], target=data["target"],
            payload=tuple(data["payload"]), lineno=data["line"],
            col=data["col"],
        )


@dataclass
class CommEdge:
    """One point where a value crosses between parent and worker.

    ``kind``: ``"send"`` (pipe/queue marshaling, ``conn.send(...)``),
    ``"spec"`` (TaskSpec construction — the payload the worker will be
    handed), ``"callback"`` (an ``on_*`` hook invocation — results
    flowing back into parent-owned state).
    """

    caller: str
    kind: str             #: "send" | "spec" | "callback"
    payload: tuple[str, ...]  #: names appearing in the crossing value
    lineno: int
    col: int

    def to_dict(self) -> dict[str, object]:
        return {
            "caller": self.caller, "kind": self.kind,
            "payload": list(self.payload), "line": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CommEdge":
        return cls(
            caller=data["caller"], kind=data["kind"],
            payload=tuple(data["payload"]), lineno=data["line"],
            col=data["col"],
        )


@dataclass
class FunctionFacts:
    """Identity and span of one function definition."""

    qualname: str         #: in-module ("WindowsPageFusion.full_pass")
    name: str
    lineno: int
    end_lineno: int
    decorators: tuple[str, ...]
    params: tuple[str, ...]
    class_name: str | None  #: immediately enclosing class, if a method

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname, "name": self.name,
            "line": self.lineno, "end": self.end_lineno,
            "decorators": list(self.decorators), "params": list(self.params),
            "class": self.class_name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionFacts":
        return cls(
            qualname=data["qualname"], name=data["name"],
            lineno=data["line"], end_lineno=data["end"],
            decorators=tuple(data["decorators"]),
            params=tuple(data["params"]), class_name=data["class"],
        )


@dataclass
class ModuleFacts:
    """Everything the call graph needs to know about one file."""

    module: str
    path: str
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    #: class name -> base-class expressions as written ("FusionEngine",
    #: "base.FusionEngine").
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: local name -> dotted import target ("Ksm" -> "repro.fusion.ksm.Ksm").
    imports: dict[str, str] = field(default_factory=dict)
    #: names bound by module-level statements (constants, registries).
    module_names: tuple[str, ...] = ()
    #: module-level names bound to a *mutable* value (dict/list/set
    #: display, comprehension, or dict()/list()/set()-style call) —
    #: the candidate fork-inherited state RACE003 audits reads of.
    mutable_module_names: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    #: simrace's concurrency model: spawn points and comm edges.
    spawns: list[SpawnSite] = field(default_factory=list)
    comms: list[CommEdge] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module, "path": self.path,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": {c: list(b) for c, b in self.classes.items()},
            "imports": dict(self.imports),
            "module_names": list(self.module_names),
            "mutable_module_names": list(self.mutable_module_names),
            "calls": [c.to_dict() for c in self.calls],
            "spawns": [s.to_dict() for s in self.spawns],
            "comms": [c.to_dict() for c in self.comms],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleFacts":
        return cls(
            module=data["module"], path=data["path"],
            functions={
                q: FunctionFacts.from_dict(f)
                for q, f in data["functions"].items()
            },
            classes={c: tuple(b) for c, b in data["classes"].items()},
            imports=dict(data["imports"]),
            module_names=tuple(data["module_names"]),
            mutable_module_names=tuple(data["mutable_module_names"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            spawns=[SpawnSite.from_dict(s) for s in data["spawns"]],
            comms=[CommEdge.from_dict(c) for c in data["comms"]],
        )


def _dotted_text(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


#: Constructor calls that yield a mutable container at module level.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "ChainMap",
})

#: Methods whose receiver is read container-style (registry lookups).
_CONTAINER_READ_METHODS = frozenset({"get", "items", "keys", "values"})

#: Spec types whose construction is a parent→worker communication edge
#: (the constructed value is pickled across the fork).
_SPEC_COMM_TYPES = frozenset({"TaskSpec"})


def _is_mutable_binding(value: ast.AST) -> bool:
    """Is a module-level RHS a mutable container (registry-shaped)?"""
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        return name in _MUTABLE_FACTORIES
    return False


def _payload_names(*exprs: ast.AST) -> tuple[str, ...]:
    """Plain names referenced by payload expressions (``self``/``cls``
    excluded — parent bookkeeping on self after a spawn is normal)."""
    names: set[str] = set()
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id not in ("self", "cls"):
                names.add(node.id)
    return tuple(sorted(names))


class _FactsExtractor(ast.NodeVisitor):
    """Single pass over one module tree, scope-stack attribution."""

    def __init__(self, module: str, path: str) -> None:
        self.facts = ModuleFacts(module=module, path=path)
        self._scope: list[str] = []        # qualname components
        self._class_stack: list[str] = []  # enclosing class names
        self._module_names: set[str] = set()
        self._mutable_names: set[str] = set()

    # -- scopes --------------------------------------------------------
    def _caller(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:
            self._module_names.add(node.name)
        if not self._class_stack and not self._scope:
            bases = tuple(
                text for base in node.bases
                if (text := _dotted_text(base)) is not None
            )
            self.facts.classes[node.name] = bases
        self._scope.append(node.name)
        self._class_stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()
        self._scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if not self._scope:
            self._module_names.add(node.name)
        self._scope.append(node.name)
        qualname = self._caller()
        decorators: list[str] = []
        for decorator in node.decorator_list:
            target = (
                decorator.func if isinstance(decorator, ast.Call) else decorator
            )
            if isinstance(target, ast.Attribute):
                decorators.append(target.attr)
            elif isinstance(target, ast.Name):
                decorators.append(target.id)
        args = node.args
        params = tuple(
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        self.facts.functions[qualname] = FunctionFacts(
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
            decorators=tuple(decorators),
            params=params,
            class_name=self._class_stack[-1] if self._class_stack else None,
        )
        for stmt in node.body:
            self.visit(stmt)
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- imports (any scope: a function-level import still binds a
    # module-backed object) ---------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.facts.imports.setdefault(local, target)
            if not self._scope:
                self._module_names.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level != 0 or node.module is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.facts.imports.setdefault(
                local, f"{node.module}.{alias.name}"
            )
            if not self._scope:
                self._module_names.add(local)

    # -- module-level bindings ------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._scope:
            mutable = _is_mutable_binding(node.value)
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        self._module_names.add(sub.id)
                        if mutable:
                            self._mutable_names.add(sub.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._scope and isinstance(node.target, ast.Name):
            self._module_names.add(node.target.id)
            if node.value is not None and _is_mutable_binding(node.value):
                self._mutable_names.add(node.target.id)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------
    def visit_Lambda(self, node: ast.Lambda) -> None:
        # The body's calls belong to the enclosing scope.
        self.visit(node.body)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name: str | None = None
        dotted: str | None = None
        receiver: str | None = None
        attr = isinstance(func, ast.Attribute)
        if isinstance(func, ast.Attribute):
            name = func.attr
            dotted = _dotted_text(func)
            if dotted is not None:
                receiver = dotted.split(".")[0]
        elif isinstance(func, ast.Name):
            name = func.id
        if name is not None:
            arg_names = tuple(
                arg.id if isinstance(arg, ast.Name) else None
                for arg in node.args
            )
            refs: list[str] = []
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                # A bare name or dotted chain passed as an argument is a
                # potential function reference (address-taken callback);
                # lambdas need nothing extra — visit_Lambda attributes
                # their internal calls to this scope already.
                if isinstance(arg, (ast.Attribute, ast.Name)):
                    text = _dotted_text(arg)
                    if text is not None:
                        refs.append(text)
            self.facts.calls.append(CallSite(
                caller=self._caller(),
                callee_name=name,
                dotted=dotted,
                receiver=receiver,
                lineno=node.lineno,
                col=node.col_offset,
                attr=attr,
                arg_names=arg_names,
                arg_refs=tuple(refs),
            ))
            self._extract_concurrency(node, name, attr)
        self.generic_visit(node)

    # -- concurrency model (simrace) -------------------------------------
    def _extract_concurrency(
        self, node: ast.Call, name: str, attr: bool
    ) -> None:
        caller = self._caller()

        def spawn_target(expr: ast.AST) -> str | None:
            if isinstance(expr, ast.Lambda):
                return "<lambda>"
            return _dotted_text(expr)

        if name == "Process":
            target: str | None = None
            payload_exprs: list[ast.AST] = []
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = spawn_target(keyword.value)
                elif keyword.arg in ("args", "kwargs"):
                    payload_exprs.append(keyword.value)
            if target is not None:
                self.facts.spawns.append(SpawnSite(
                    caller=caller, kind="process", target=target,
                    payload=_payload_names(*payload_exprs),
                    lineno=node.lineno, col=node.col_offset,
                ))
        elif attr and name in ("submit", "apply_async", "map") and node.args:
            self.facts.spawns.append(SpawnSite(
                caller=caller, kind="submit",
                target=spawn_target(node.args[0]),
                payload=_payload_names(
                    *node.args[1:], *(kw.value for kw in node.keywords)
                ),
                lineno=node.lineno, col=node.col_offset,
            ))
        elif name == "execute_task":
            # The serial degradation: the worker entry runs in-process,
            # under the same ownership contract, with no actual fork.
            self.facts.spawns.append(SpawnSite(
                caller=caller, kind="serial", target=name,
                payload=_payload_names(
                    *node.args, *(kw.value for kw in node.keywords)
                ),
                lineno=node.lineno, col=node.col_offset,
            ))
        if attr and name == "send":
            self.facts.comms.append(CommEdge(
                caller=caller, kind="send",
                payload=_payload_names(*node.args),
                lineno=node.lineno, col=node.col_offset,
            ))
        elif name in _SPEC_COMM_TYPES or (
            name == "cls"
            and self._class_stack
            and self._class_stack[-1] in _SPEC_COMM_TYPES
        ):
            self.facts.comms.append(CommEdge(
                caller=caller, kind="spec",
                payload=_payload_names(
                    *node.args, *(kw.value for kw in node.keywords)
                ),
                lineno=node.lineno, col=node.col_offset,
            ))
        elif attr and name.startswith("on_"):
            self.facts.comms.append(CommEdge(
                caller=caller, kind="callback",
                payload=_payload_names(*node.args),
                lineno=node.lineno, col=node.col_offset,
            ))

    def finish(self) -> ModuleFacts:
        self.facts.module_names = tuple(sorted(self._module_names))
        self.facts.mutable_module_names = tuple(sorted(self._mutable_names))
        return self.facts


def extract_facts(tree: ast.AST, module: str, path: str) -> ModuleFacts:
    """Extract the :class:`ModuleFacts` of one parsed module."""
    extractor = _FactsExtractor(module, path)
    for stmt in getattr(tree, "body", []):
        extractor.visit(stmt)
    return extractor.finish()


@dataclass(frozen=True)
class Edge:
    """One resolved call edge."""

    caller: str   #: fully-qualified ("repro.fusion.wpf.WPF.full_pass")
    callee: str
    lineno: int
    col: int
    #: "direct" (name/import/self resolution), "union" (by-name over
    #: unknown receivers), "ref" (address-taken callback), "facts"
    #: (declared indirection).
    kind: str

    @property
    def precise(self) -> bool:
        return self.kind in ("direct", "facts")


class CallGraph:
    """The resolved project call graph over a set of module facts."""

    def __init__(self, modules: dict[str, ModuleFacts]) -> None:
        #: module name -> facts
        self.modules = modules
        #: fully-qualified function name -> (facts, module facts)
        self.functions: dict[str, tuple[FunctionFacts, ModuleFacts]] = {}
        #: bare function/method name -> fully-qualified names
        self.by_name: dict[str, set[str]] = {}
        #: "module.Class" -> method name -> qualified function name
        self._class_methods: dict[str, dict[str, str]] = {}
        #: "module.Class" -> resolved base classes ("module.Class")
        self._bases: dict[str, set[str]] = {}
        self._derived: dict[str, set[str]] = {}
        for facts in modules.values():
            for qual, func in facts.functions.items():
                full = f"{facts.module}.{qual}"
                self.functions[full] = (func, facts)
                self.by_name.setdefault(func.name, set()).add(full)
                if func.class_name is not None and qual.count(".") == 1:
                    class_key = f"{facts.module}.{func.class_name}"
                    self._class_methods.setdefault(class_key, {})[
                        func.name
                    ] = full
        self._link_hierarchy()
        self.edges: dict[str, list[Edge]] = {}
        for facts in modules.values():
            for site in facts.calls:
                caller = (
                    f"{facts.module}.{site.caller}"
                    if site.caller != "<module>"
                    else f"{facts.module}.<module>"
                )
                for edge in self._resolve(caller, site, facts):
                    self.edges.setdefault(edge.caller, []).append(edge)
        self._apply_facts_table()

    # -- hierarchy -------------------------------------------------------
    def _link_hierarchy(self) -> None:
        for facts in self.modules.values():
            for class_name, bases in facts.classes.items():
                class_key = f"{facts.module}.{class_name}"
                resolved: set[str] = set()
                for base in bases:
                    last = base.split(".")[-1]
                    target = facts.imports.get(base) or facts.imports.get(last)
                    if target is not None and target in self._class_keys(last):
                        resolved.add(target)
                    elif f"{facts.module}.{last}" in self._class_keys(last):
                        resolved.add(f"{facts.module}.{last}")
                    else:
                        # Same-name class anywhere in the project.
                        resolved |= self._class_keys(last)
                self._bases[class_key] = resolved
                for base_key in resolved:
                    self._derived.setdefault(base_key, set()).add(class_key)

    def _class_keys(self, class_name: str) -> set[str]:
        keys = set()
        for facts in self.modules.values():
            if class_name in facts.classes:
                keys.add(f"{facts.module}.{class_name}")
        return keys

    def _hierarchy(self, class_key: str) -> set[str]:
        """The class plus all ancestors and descendants."""
        related = {class_key}
        stack = [class_key]
        while stack:
            for base in self._bases.get(stack.pop(), ()):
                if base not in related:
                    related.add(base)
                    stack.append(base)
        stack = [key for key in related]
        while stack:
            for sub in self._derived.get(stack.pop(), ()):
                if sub not in related:
                    related.add(sub)
                    stack.append(sub)
        return related

    def _method_lookup(self, class_key: str, method: str) -> set[str]:
        return {
            full
            for related in self._hierarchy(class_key)
            for name, full in self._class_methods.get(related, {}).items()
            if name == method
        }

    # -- resolution ------------------------------------------------------
    def _resolve_name(
        self, name: str, facts: ModuleFacts
    ) -> tuple[set[str], str] | None:
        """A plain name: local def, local class, or import."""
        if name in facts.functions:
            return {f"{facts.module}.{name}"}, "direct"
        if name in facts.classes:
            init = f"{facts.module}.{name}.__init__"
            return ({init} if init in self.functions else set()), "direct"
        target = facts.imports.get(name)
        if target is not None:
            if target in self.functions:
                return {target}, "direct"
            init = f"{target}.__init__"
            if init in self.functions:
                return {init}, "direct"
            if any(
                target == f"{m.module}.{c}"
                for m in self.modules.values() for c in m.classes
            ):
                return set(), "direct"  # class without own __init__
            if target.rsplit(".", 1)[0] in self.modules or any(
                target == m.module for m in self.modules.values()
            ):
                return set(), "direct"
            return None  # external import: no project edge
        return None

    def _resolve(
        self, caller: str, site: CallSite, facts: ModuleFacts
    ) -> list[Edge]:
        edges: list[Edge] = []

        def emit(targets: set[str], kind: str) -> None:
            for target in sorted(targets):
                if target != caller:
                    edges.append(Edge(
                        caller, target, site.lineno, site.col, kind
                    ))

        caller_func = self.functions.get(caller)
        if site.attr and site.dotted is None:
            # Attribute call on an unparseable receiver chain
            # (items[i].run(...)): union-by-name only.
            if not _is_builtin(site.callee_name):
                emit(self.by_name.get(site.callee_name, set()), "union")
        elif site.dotted is None:
            nested = f"{caller}.{site.callee_name}"
            resolved = self._resolve_name(site.callee_name, facts)
            if nested in self.functions:
                emit({nested}, "direct")
            elif resolved is not None:
                emit(resolved[0], resolved[1])
            elif site.callee_name in self.by_name and not _is_builtin(
                site.callee_name
            ):
                emit(self.by_name[site.callee_name], "union")
        elif (
            site.receiver in ("self", "cls")
            and site.dotted.count(".") == 1
            and caller_func is not None
            and caller_func[0].class_name is not None
        ):
            class_key = (
                f"{facts.module}.{caller_func[0].class_name}"
            )
            targets = self._method_lookup(class_key, site.callee_name)
            if targets:
                emit(targets, "direct")
            else:
                emit(self.by_name.get(site.callee_name, set()), "union")
        elif (
            site.receiver is not None
            and site.dotted is not None
            and site.dotted.count(".") == 1
            and facts.imports.get(site.receiver) in self.modules
        ):
            # mod.f(...) on an imported project module.
            target_module = facts.imports[site.receiver]
            target = f"{target_module}.{site.callee_name}"
            if target in self.functions:
                emit({target}, "direct")
            else:
                init = f"{target}.__init__"
                emit({init} if init in self.functions else set(), "direct")
        else:
            emit(self.by_name.get(site.callee_name, set()), "union")

        # Address-taken callbacks: a bound method / function reference
        # passed as an argument may run on the caller's behalf.
        for ref in site.arg_refs:
            parts = ref.split(".")
            if (
                len(parts) == 2
                and parts[0] in ("self", "cls")
                and caller_func is not None
                and caller_func[0].class_name is not None
            ):
                class_key = f"{facts.module}.{caller_func[0].class_name}"
                emit(self._method_lookup(class_key, parts[1]), "ref")
            elif len(parts) == 1:
                nested = f"{caller}.{parts[0]}"
                resolved = self._resolve_name(parts[0], facts)
                targets = (
                    {nested} if nested in self.functions
                    else resolved[0] if resolved is not None
                    else set()
                )
                for target in sorted(targets):
                    if target != caller:
                        edges.append(Edge(
                            caller, target, site.lineno, site.col, "ref"
                        ))
        return edges

    def _apply_facts_table(self) -> None:
        for caller, patterns in FACTS.items():
            if caller not in self.functions:
                continue
            func, _ = self.functions[caller]
            for pattern in patterns:
                if pattern.endswith("*"):
                    prefix = pattern[:-1]
                    targets = {
                        full for full in self.functions
                        if full.startswith(prefix)
                    }
                else:
                    targets = {pattern} & set(self.functions)
                for target in sorted(targets):
                    self.edges.setdefault(caller, []).append(Edge(
                        caller, target, func.lineno, 0, "facts"
                    ))

    # -- queries ---------------------------------------------------------
    def callees(self, caller: str, precise_only: bool = False) -> list[Edge]:
        edges = self.edges.get(caller, [])
        if precise_only:
            return [edge for edge in edges if edge.precise]
        return list(edges)

    def resolve_call(
        self, caller: str, lineno: int, col: int, precise_only: bool = True
    ) -> list[str]:
        """Resolved targets of the call at ``(lineno, col)`` in ``caller``."""
        return sorted({
            edge.callee
            for edge in self.edges.get(caller, [])
            if edge.lineno == lineno and edge.col == col
            and (edge.precise or not precise_only)
        })

    def reachable_from(
        self,
        roots: tuple[str, ...] = TASK_ENTRY_POINTS,
        module_filter: str = "repro.",
    ) -> dict[str, tuple[str, ...]]:
        """BFS reachability with witness chains (FLOW005's traversal).

        Returns ``{function: (root, ..., function)}`` — the shortest
        caller→callee chain found.  Traversal stays inside modules
        matching ``module_filter`` (task ownership is a property of
        ``src/repro``; test helpers may alias names freely).
        """
        chains: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.functions:
                chains[root] = (root,)
                queue.append(root)
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            for edge in self.edges.get(current, ()):  # noqa: B007
                callee = edge.callee
                if callee in chains or callee not in self.functions:
                    continue
                if not callee.startswith(module_filter):
                    continue
                chains[callee] = (*chains[current], callee)
                queue.append(callee)
        return chains


#: Ubiquitous names whose union-by-name fan-out would be all noise and
#: no signal (builtins and dunder protocol methods).
_BUILTIN_NAMES = frozenset({
    "len", "range", "print", "sorted", "list", "dict", "set", "tuple",
    "frozenset", "int", "str", "float", "bool", "bytes", "bytearray",
    "isinstance", "issubclass", "getattr", "setattr", "hasattr", "repr",
    "min", "max", "sum", "abs", "zip", "map", "filter", "enumerate",
    "iter", "next", "open", "type", "vars", "id", "hash", "super",
    "format", "divmod", "round", "any", "all", "reversed", "callable",
    "memoryview", "object", "classmethod", "staticmethod", "property",
    "ValueError", "TypeError", "KeyError", "RuntimeError", "Exception",
})


def _is_builtin(name: str) -> bool:
    return name in _BUILTIN_NAMES or (
        name.startswith("__") and name.endswith("__")
    )


def iter_functions_with_qualnames(
    tree: ast.AST,
) -> list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """Every function definition paired with its in-module qualname.

    The qualnames match :class:`ModuleFacts` attribution exactly
    (``Class.method``, ``outer.inner``), which is what lets per-function
    analyses look themselves up in the call graph.
    """
    result: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]] = []

    def walk(node: ast.AST, scope: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join((*scope, child.name))
                result.append((child, qualname))
                walk(child, (*scope, child.name))
            elif isinstance(child, ast.ClassDef):
                walk(child, (*scope, child.name))
            else:
                walk(child, scope)

    walk(tree, ())
    return result
