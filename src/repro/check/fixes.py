"""``repro lint --fix``: mechanical autofixes for DET004 and API001.

Only rules with a *provably equivalent-or-better* rewrite are fixable:

* **DET004** — ``hash(expr)`` becomes
  ``zlib.crc32(repr(expr).encode())``: stable across processes (no
  ``PYTHONHASHSEED`` salting), same "cheap int from a value" shape the
  offending call sites want.  A missing ``import zlib`` is added after
  the module's import block.
* **API001** — removed pre-runner names are replaced by their typed
  successors where the substitution is a pure token rewrite:
  ``EXPERIMENT_REGISTRY`` → ``EXPERIMENTS`` and ``ENGINE_FACTORIES`` →
  ``attack_engine_factories()`` (the import form without the call).
  ``ATTACK_ENV_DEFAULTS`` has no mechanical equivalent (its
  replacement is per-attack ``env_defaults``) and is left for a human.

The fixer is **suppression-respecting** — a line carrying
``# simlint: disable=<rule>`` (or ``=all``) is never rewritten; the
suppression documents a deliberate exception — and **idempotent**:
fixes are applied to a fixpoint (re-parse, re-scan) so a second
``--fix`` run is always a no-op.  Edits are span-based on the AST's
``(lineno, col_offset)``–``(end_lineno, end_col_offset)`` ranges,
applied back-to-front so earlier spans stay valid.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass

from repro.check.engine import _SUPPRESS_RE

#: The rules --fix knows how to rewrite.
FIXABLE_RULES = ("DET004", "API001")

#: API001 token rewrites: removed name -> (use form, import form).
#: ``ATTACK_ENV_DEFAULTS`` is deliberately absent — see module doc.
_API_REPLACEMENTS: dict[str, tuple[str, str]] = {
    "EXPERIMENT_REGISTRY": ("EXPERIMENTS", "EXPERIMENTS"),
    "ENGINE_FACTORIES": (
        "attack_engine_factories()", "attack_engine_factories"
    ),
}


@dataclass(frozen=True)
class Fix:
    """One span replacement derived from one finding."""

    rule_id: str
    lineno: int       #: 1-based start line
    col: int          #: 0-based start column
    end_lineno: int
    end_col: int
    replacement: str


def _suppressed(source_lines: list[str], rule_id: str, line: int) -> bool:
    if not 1 <= line <= len(source_lines):
        return False
    match = _SUPPRESS_RE.search(source_lines[line - 1])
    if match is None:
        return False
    spec = match.group(1).strip()
    if spec == "all":
        return True
    return rule_id in {part.strip() for part in spec.split(",")}


def _collect_fixes(
    source: str, tree: ast.AST, rule_ids: tuple[str, ...]
) -> tuple[list[Fix], bool]:
    """(fixes for one pass, does any DET004 fix need ``import zlib``)."""
    source_lines = source.splitlines()
    fixes: list[Fix] = []
    need_zlib = False
    for node in ast.walk(tree):
        if (
            "DET004" in rule_ids
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and len(node.args) == 1
            and not node.keywords
            and node.end_lineno is not None
            and node.end_col_offset is not None
        ):
            if _suppressed(source_lines, "DET004", node.lineno):
                continue
            arg_src = ast.get_source_segment(source, node.args[0])
            if arg_src is None:
                continue
            fixes.append(Fix(
                rule_id="DET004",
                lineno=node.lineno, col=node.col_offset,
                end_lineno=node.end_lineno, end_col=node.end_col_offset,
                replacement=f"zlib.crc32(repr({arg_src}).encode())",
            ))
            need_zlib = True
        elif (
            "API001" in rule_ids
            and isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in _API_REPLACEMENTS
            and node.end_lineno is not None
            and node.end_col_offset is not None
        ):
            if _suppressed(source_lines, "API001", node.lineno):
                continue
            fixes.append(Fix(
                rule_id="API001",
                lineno=node.lineno, col=node.col_offset,
                end_lineno=node.end_lineno, end_col=node.end_col_offset,
                replacement=_API_REPLACEMENTS[node.id][0],
            ))
        elif "API001" in rule_ids and isinstance(node, ast.ImportFrom):
            if _suppressed(source_lines, "API001", node.lineno):
                continue
            for alias in node.names:
                if (
                    alias.name in _API_REPLACEMENTS
                    and alias.asname is None
                    and alias.lineno is not None
                    and alias.end_lineno is not None
                ):
                    fixes.append(Fix(
                        rule_id="API001",
                        lineno=alias.lineno, col=alias.col_offset,
                        end_lineno=alias.end_lineno,
                        end_col=alias.end_col_offset,
                        replacement=_API_REPLACEMENTS[alias.name][1],
                    ))
    return fixes, need_zlib


def _apply_fixes(source: str, fixes: list[Fix]) -> tuple[str, list[Fix]]:
    """Apply span replacements back-to-front; overlapping spans keep
    only the outermost (the fixpoint loop catches what remains).
    Returns the new text and the fixes actually applied."""
    offsets: list[int] = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))

    def start_of(fix: Fix) -> int:
        return offsets[fix.lineno - 1] + fix.col

    def end_of(fix: Fix) -> int:
        return offsets[fix.end_lineno - 1] + fix.end_col

    applied_until = len(source) + 1
    text = source
    applied: list[Fix] = []
    for fix in sorted(fixes, key=start_of, reverse=True):
        start, end = start_of(fix), end_of(fix)
        if end > applied_until:
            continue  # nested inside an already-applied span
        text = text[:start] + fix.replacement + text[end:]
        applied_until = start
        applied.append(fix)
    return text, applied


def _ensure_zlib_import(source: str, tree: ast.AST) -> str:
    """Insert ``import zlib`` after the module's import block."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and any(
            alias.name == "zlib" for alias in node.names
        ):
            return source
    last_import_end = 0
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            last_import_end = stmt.end_lineno or stmt.lineno
        elif last_import_end:
            break  # first statement after the leading import block
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            last_import_end = stmt.end_lineno or stmt.lineno  # docstring
    lines = source.splitlines(keepends=True)
    insertion = "import zlib\n"
    return "".join([
        *lines[:last_import_end], insertion, *lines[last_import_end:],
    ])


def fix_source(
    source: str, rule_ids: tuple[str, ...] = FIXABLE_RULES
) -> tuple[str, list[Fix]]:
    """Rewrite one source string to a fixpoint.

    Returns ``(new source, every fix applied across all passes)``.
    Unparseable input is returned unchanged (the lint run will report
    the syntax error; the fixer must not guess).
    """
    applied: list[Fix] = []
    text = source
    for _pass in range(10):  # fixpoint bound; nesting depth in practice <= 2
        try:
            tree = ast.parse(text)
        except SyntaxError:
            return source, []
        fixes, need_zlib = _collect_fixes(text, tree, rule_ids)
        if not fixes:
            break
        text, this_pass = _apply_fixes(text, fixes)
        if need_zlib:
            text = _ensure_zlib_import(text, ast.parse(text))
        applied.extend(this_pass)
    return text, applied


def fix_paths(
    paths: list[pathlib.Path], rule_ids: tuple[str, ...] = FIXABLE_RULES
) -> dict[str, list[Fix]]:
    """Fix files in place; returns ``{path: fixes}`` for changed files."""
    changed: dict[str, list[Fix]] = {}
    for path in paths:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        new_source, fixes = fix_source(source, rule_ids)
        if fixes and new_source != source:
            path.write_text(new_source, encoding="utf-8")
            changed[str(path)] = fixes
    return changed
