"""Zero-dependency source annotations read by simflow (`repro.check.flow`).

The decorators below are identity functions at runtime — they change
nothing about the decorated callable.  Their value is *syntactic*: the
static flow analyzer recognizes them by name (the last component of the
decorator expression), so simulation code can state facts the analyzer
cannot infer on its own without importing the analyzer (this module is
a leaf: it imports nothing from ``repro`` and may be imported from any
layer, including ``repro.mem`` and ``repro.mmu``).

Annotations are facts, not suppressions: ``@escapes_frame`` says "this
function hands out a raw frame handle *by design* and its caller takes
ownership"; a per-line ``# simlint: disable=FLOW003`` says "the
analyzer is wrong here".  Prefer the annotation whenever the escape is
part of the function's contract.

Since the interprocedural tier landed, annotations are **checked
claims**: the bottom-up summaries (:mod:`repro.check.summaries`) infer
escape contracts independently, FLOW006 errors when a decoration
contradicts the inferred summary (e.g. ``@escapes_frame`` on a
function that provably returns nothing), and ``repro lint
--check-annotations`` audits every annotation as *proved* (inference
derives it — the decoration is redundant and can be dropped),
*trusted* (inference can neither prove nor refute it) or
*contradicted*.  Only keep annotations the audit reports as trusted.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def escapes_frame(func: _F) -> _F:
    """Mark a function whose allocated frame handles escape by design.

    FLOW003/FLOW003-ip (frame-handle leak) skip the body entirely: the
    function's contract is to return or hand off a raw pfn whose
    ownership moves to the caller (e.g. an allocator front-end), so
    intraprocedural leak tracking would be meaningless noise.  Callers
    are still checked — the transitive summary records the escape, so
    FLOW003-ip holds every caller to the consumption discipline.

    This is a checked claim: FLOW006 errors if the decorated function
    provably escapes nothing, and functions whose escape the summary
    infers on its own (a returned fresh handle) do not need the
    decoration at all — see ``repro lint --check-annotations``.
    """
    return func


def artifact_boundary(func: _F) -> _F:
    """Mark a function whose return value is written into artifacts.

    FLOW004 (taint into artifacts) treats every ``return`` in the body
    as a sink: values derived from the wall clock, the global RNG or
    builtin ``hash()`` must not reach it.  ``execute_task`` is a sink
    by name; everything else that feeds ``results/`` should carry this
    marker.
    """
    return func


def worker_entry(func: _F) -> _F:
    """Mark a function that runs on the worker side of a process fork.

    simrace (``repro.check.race``) roots its worker-reachability
    traversal at every ``@worker_entry`` function, in addition to the
    spawn targets it discovers on its own (``Process(target=...)``,
    ``executor.submit(fn, ...)``) and the built-in task entry points.
    Everything reachable from a worker entry is *transferred-to-worker*
    in the ownership lattice: it may read fork-inherited module state
    only when that state is declared shared-read-only in simrace's
    ``OWNERSHIP_FACTS`` table (RACE003), and nondeterministic or
    unpicklable values must not cross its communication edges back to
    the parent (RACE004).
    """
    return func


def owned_by_worker(func: _F) -> _F:
    """Declare a function's state accesses as worker-owned by design.

    The decorated function is asserted to run only after the fork, on
    state the worker owns outright (its task-local object graph plus
    anything the parent explicitly transferred).  RACE003 therefore
    skips its fork-inherited-read check for this body: reads that would
    otherwise need an ``OWNERSHIP_FACTS`` declaration are part of the
    function's contract.  Like ``@escapes_frame`` this is a *claim*,
    not a suppression — prefer declaring genuinely read-only registries
    in ``OWNERSHIP_FACTS`` and keep this marker for state that is
    mutated by the worker after transfer.
    """
    return func
