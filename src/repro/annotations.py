"""Zero-dependency source annotations read by simflow (`repro.check.flow`).

The decorators below are identity functions at runtime — they change
nothing about the decorated callable.  Their value is *syntactic*: the
static flow analyzer recognizes them by name (the last component of the
decorator expression), so simulation code can state facts the analyzer
cannot infer on its own without importing the analyzer (this module is
a leaf: it imports nothing from ``repro`` and may be imported from any
layer, including ``repro.mem`` and ``repro.mmu``).

Annotations are facts, not suppressions: ``@escapes_frame`` says "this
function hands out a raw frame handle *by design* and its caller takes
ownership"; a per-line ``# simlint: disable=FLOW003`` says "the
analyzer is wrong here".  Prefer the annotation whenever the escape is
part of the function's contract.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def escapes_frame(func: _F) -> _F:
    """Mark a function whose allocated frame handles escape by design.

    FLOW003 (frame-handle leak) skips the body entirely: the function's
    contract is to return or hand off a raw pfn whose ownership moves
    to the caller (e.g. an allocator front-end), so intraprocedural
    leak tracking would be meaningless noise.
    """
    return func


def artifact_boundary(func: _F) -> _F:
    """Mark a function whose return value is written into artifacts.

    FLOW004 (taint into artifacts) treats every ``return`` in the body
    as a sink: values derived from the wall clock, the global RNG or
    builtin ``hash()`` must not reach it.  ``execute_task`` is a sink
    by name; everything else that feeds ``results/`` should carry this
    marker.
    """
    return func
