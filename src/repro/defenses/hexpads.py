"""A HexPADS-style anomaly detector (§10.2's prior defense).

HexPADS (Payer, ESSoS'16) watches performance counters for the
signature of dedup side-channel attacks: bursts of slow copy-on-write
faults from one process.  The paper's criticism is structural: "given
the anomaly detection nature of HexPADS, it is prone to false
positives and false negatives, providing attackers with the
opportunity to tune their attacks".

This module implements the detector over the simulator's fault
counters so both halves of that criticism are testable:

* a *greedy* attacker (many timed writes per window) is flagged;
* a *rate-limited* attacker stays under the threshold and still leaks
  (``tests/test_hexpads.py``), while a busy-but-honest victim workload
  can trip the detector (false positive).

VUsion needs no detector: the channel does not exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


@dataclass(frozen=True)
class HexPadsConfig:
    """Detection window and threshold.

    ``cow_threshold`` is the number of copy-on-write/-access unmerge
    faults one process may take per window before being flagged.
    """

    window_ns: int = 1_000_000_000
    cow_threshold: int = 16


class HexPadsDetector:
    """Per-process CoW-burst anomaly detection over fault counters."""

    def __init__(self, kernel: "Kernel", config: HexPadsConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config or HexPadsConfig()
        self.flagged: set[int] = set()
        self.windows_observed = 0
        #: pid -> CoW-ish fault count in the current window.
        self._window_counts: dict[int, int] = {}
        self._install_probe()
        kernel.register_daemon(
            "hexpads", self.config.window_ns, self._close_window
        )

    # ------------------------------------------------------------------
    # Event collection
    # ------------------------------------------------------------------
    def _install_probe(self) -> None:
        """Wrap the kernel's access path to attribute unmerge faults.

        Performance counters attribute events to the running process;
        the simulator's equivalent is inspecting each access result.
        """
        original_access = self.kernel.access

        def probed_access(process, vaddr, kind, new_content=None):
            result = original_access(process, vaddr, kind, new_content)
            if any(
                kind_name in ("unmerge_cow", "copy_on_access")
                for kind_name in result.fault_kinds
            ):
                self._window_counts[process.pid] = (
                    self._window_counts.get(process.pid, 0) + 1
                )
            return result

        self.kernel.access = probed_access  # type: ignore[method-assign]

    def _close_window(self) -> None:
        self.windows_observed += 1
        for pid, count in self._window_counts.items():
            if count > self.config.cow_threshold:
                self.flagged.add(pid)
        self._window_counts.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_flagged(self, process: "Process") -> bool:
        return process.pid in self.flagged

    def current_window_count(self, process: "Process") -> int:
        return self._window_counts.get(process.pid, 0)
