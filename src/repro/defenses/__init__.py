"""Alternative defenses the paper compares against (§10.2)."""

from repro.defenses.hexpads import HexPadsDetector, HexPadsConfig

__all__ = ["HexPadsConfig", "HexPadsDetector"]
