"""repro — a full-system reproduction of *Secure Page Fusion with VUsion*
(Oliverio, Razavi, Bos, Giuffrida — SOSP 2017).

The package simulates the complete memory-management stack the paper
builds on (MMU, buddy allocator, LLC, DRAM/Rowhammer, a mini-kernel
with THP support), implements the insecure page-fusion systems it
studies (Linux KSM, Windows Page Fusion, zero-page-only fusion), the
six attacks of Table 1, and VUsion itself — the secure engine enforcing
Same Behaviour and Randomized Allocation.

Quickstart::

    from repro import Kernel, MachineSpec, Vusion

    kernel = Kernel(MachineSpec(total_frames=16384))
    kernel.attach_fusion(Vusion())
    vm = kernel.create_process("vm0")
    region = vm.mmap(64, mergeable=True)
    ...
"""

from repro.core.vusion import Vusion
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.wpf import WindowsPageFusion
from repro.fusion.zeropage import ZeroPageFusion
from repro.kernel.access import AccessKind, AccessResult
from repro.kernel.kernel import Kernel
from repro.kernel.khugepaged import Khugepaged
from repro.kernel.process import Process
from repro.params import (
    CostModel,
    FusionConfig,
    MachineSpec,
    VusionConfig,
    WpfConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "AccessResult",
    "CopyOnAccessKsm",
    "CostModel",
    "FusionConfig",
    "Kernel",
    "Khugepaged",
    "Ksm",
    "MachineSpec",
    "Process",
    "Vusion",
    "VusionConfig",
    "WindowsPageFusion",
    "WpfConfig",
    "ZeroPageFusion",
    "__version__",
]
