"""A simulated process (or, in cloud scenarios, a whole guest VM).

Processes own an address space, a TLB and a guest file store, and issue
all memory operations through the kernel so that faults, fusion hooks
and timing are applied uniformly.  Attacker processes get no extra
powers: they see virtual addresses, page contents and the clock —
nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.kernel.access import AccessKind, AccessResult
from repro.kernel.page_cache import GuestFileStore
from repro.mem.content import PageContent
from repro.mmu.address_space import AddressSpace, Vma
from repro.mmu.tlb import Tlb
from repro.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class Process:
    """One address space plus the operations a workload can perform."""

    def __init__(self, pid: int, name: str, kernel: "Kernel") -> None:
        self.pid = pid
        self.name = name
        self.kernel = kernel
        self.address_space = AddressSpace()
        self.tlb = Tlb(kernel.spec.tlb)
        self.file_store = GuestFileStore()
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, name={self.name!r})"

    # ------------------------------------------------------------------
    # Address-space management
    # ------------------------------------------------------------------
    def mmap(
        self,
        num_pages: int,
        name: str = "anon",
        mergeable: bool = False,
        file_key: str | None = None,
        thp_allowed: bool = True,
    ) -> Vma:
        """Map a new VMA (demand paged; nothing is populated yet)."""
        return self.address_space.mmap(
            num_pages,
            name=name,
            mergeable=mergeable,
            file_key=file_key,
            thp_allowed=thp_allowed,
        )

    def munmap(self, vma: Vma) -> None:
        """Release a VMA and every frame it still maps."""
        self.kernel.munmap(self, vma)

    def madvise_mergeable(self, vma: Vma, mergeable: bool = True) -> int:
        """Opt a VMA in or out of page fusion.

        ``MADV_MERGEABLE`` registers the region for scanning;
        ``MADV_UNMERGEABLE`` (``mergeable=False``) additionally breaks
        every existing merge in the region, exactly as Linux's KSM
        does.  Returns the number of pages unmerged (0 on opt-in).
        """
        self.address_space.madvise_mergeable(vma, mergeable)
        if not mergeable and self.kernel.fusion is not None:
            return self.kernel.fusion.unmerge_range(self, vma)
        return 0

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def read(self, vaddr: int) -> AccessResult:
        """Load from ``vaddr`` (page granularity)."""
        return self.kernel.access(self, vaddr, AccessKind.READ)

    def write(self, vaddr: int, content: PageContent) -> AccessResult:
        """Store ``content`` into the page at ``vaddr``."""
        return self.kernel.access(self, vaddr, AccessKind.WRITE, new_content=content)

    def rewrite(self, vaddr: int) -> AccessResult:
        """Store the page's current value back (a write that does not
        change content — what an attacker does when timing writes)."""
        return self.kernel.access(self, vaddr, AccessKind.WRITE)

    def fetch(self, vaddr: int) -> AccessResult:
        """Instruction fetch / prefetch of the page at ``vaddr``."""
        return self.kernel.access(self, vaddr, AccessKind.FETCH)

    def time_read(self, vaddr: int) -> int:
        return self.read(vaddr).latency

    def time_write(self, vaddr: int) -> int:
        return self.rewrite(vaddr).latency

    def time_fetch(self, vaddr: int) -> int:
        return self.fetch(vaddr).latency

    def hammer(self, vaddr_a: int, vaddr_b: int, rounds: int = 1):
        """Rowhammer using the pages at two virtual addresses as aggressors."""
        return self.kernel.hammer(self, vaddr_a, vaddr_b, rounds=rounds)

    def clflush(self, vaddr: int) -> AccessResult:
        """Flush the page at ``vaddr`` from the LLC (needs read access)."""
        return self.kernel.clflush(self, vaddr)

    def prefetch(self, vaddr: int) -> AccessResult:
        """x86 ``prefetch``: non-faulting, permission-ignoring cache load."""
        return self.kernel.prefetch(self, vaddr)

    # ------------------------------------------------------------------
    # Bulk helpers for workloads
    # ------------------------------------------------------------------
    def populate(self, vma: Vma, contents: Iterable[PageContent]) -> int:
        """Write ``contents`` into consecutive pages of ``vma``.

        Returns the number of pages written.  Shorter iterables leave
        the tail of the VMA untouched (still demand-zero).
        """
        count = 0
        for index, content in enumerate(contents):
            vaddr = vma.start + index * PAGE_SIZE
            if vaddr >= vma.end:
                raise ValueError(f"populate overflows VMA {vma.name!r}")
            self.write(vaddr, content)
            count += 1
        return count

    def touch_pages(self, vma: Vma, indices: Iterable[int]) -> None:
        """Read the given page indices of a VMA (working-set traffic)."""
        for index in indices:
            self.read(vma.start + index * PAGE_SIZE)

    def read_page(self, vma: Vma, index: int) -> PageContent:
        return self.read(vma.start + index * PAGE_SIZE).content

    def write_page(self, vma: Vma, index: int, content: PageContent) -> AccessResult:
        return self.write(vma.start + index * PAGE_SIZE, content)
