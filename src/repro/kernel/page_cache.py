"""Deterministic content store for guest "files" (guest page cache).

Each simulated VM keeps its own guest page cache; two VMs booted from
the same image cache *identical* file contents in *distinct* physical
frames — the single largest source of fusion opportunity the paper
measures (Table 3: ~52% of merged pages are page-cache pages).

``GuestFileStore`` maps ``(file_key, page_index)`` to deterministic
page content.  Registering the same file key and generation in two
stores yields byte-identical pages, without any cross-VM object
sharing.  Bumping a file's *generation* models overwriting it (Postmark
churn): content changes, old duplicates disappear.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.content import PageContent, tagged_content


class GuestFileStore:
    """Per-VM registry of file-backed page contents."""

    def __init__(self) -> None:
        #: file_key -> (num_pages, generation)
        self._files: dict[str, tuple[int, int]] = {}

    def register_file(self, file_key: str, num_pages: int, generation: int = 0) -> None:
        if num_pages <= 0:
            raise ConfigError(f"file {file_key!r} must have at least one page")
        self._files[file_key] = (num_pages, generation)

    def has_file(self, file_key: str) -> bool:
        return file_key in self._files

    def file_pages(self, file_key: str) -> int:
        return self._files[file_key][0]

    def generation(self, file_key: str) -> int:
        return self._files[file_key][1]

    def rewrite_file(self, file_key: str) -> int:
        """Bump a file's generation (its pages now hold new content)."""
        num_pages, generation = self._files[file_key]
        self._files[file_key] = (num_pages, generation + 1)
        return generation + 1

    def remove_file(self, file_key: str) -> None:
        del self._files[file_key]

    def page_content(self, file_key: str, page_index: int) -> PageContent:
        """Deterministic content of one page of one file.

        Identical across every store that registered the same key at
        the same generation — this is what makes co-hosted VMs of one
        image hold duplicate page-cache pages.
        """
        num_pages, generation = self._files[file_key]
        if not 0 <= page_index < num_pages:
            raise ConfigError(f"page {page_index} outside file {file_key!r}")
        return tagged_content("file", file_key, generation, page_index)
