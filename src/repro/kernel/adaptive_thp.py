"""Adaptive THP activation threshold (the paper's §8.1 extension).

VUsion's THP mode trades capacity against performance through ``n``:
a huge page is conserved when at least ``n`` of its 512 base pages are
active.  ``n = 1`` maximises performance (à la Ingens), large ``n``
maximises fusion (à la KSM); the paper points to SmartMD [21] for
optimising ``n`` dynamically per workload.

This policy implements that extension: a daemon watches the machine's
TLB miss rate (are we paying for broken huge pages?) and memory
headroom (do we need the capacity fusion would reclaim?) and steers
khugepaged's ``active_threshold`` between the two regimes:

* translation-starved (high TLB miss rate) → lower ``n``: collapse
  more ranges, conserve huge pages;
* memory-starved with cheap translation → raise ``n``: break more huge
  pages so their idle subpages can fuse.

The policy only moves ``n``; security is untouched — both regimes run
the same SB/RA machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.params import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.khugepaged import Khugepaged


@dataclass(frozen=True)
class AdaptiveThpConfig:
    """Watermarks and bounds for the adaptive policy."""

    period: int = 2 * SECOND
    min_threshold: int = 1
    max_threshold: int = 256
    step: int = 4
    #: TLB miss rate above which the machine counts as
    #: translation-starved.
    high_miss_rate: float = 0.10
    #: Miss rate below which translation is cheap enough to trade away.
    low_miss_rate: float = 0.02
    #: Free-memory fraction below which capacity pressure kicks in.
    low_free_fraction: float = 0.25


class AdaptiveThpPolicy:
    """Steers khugepaged's K>=n threshold from machine feedback."""

    def __init__(
        self,
        kernel: "Kernel",
        khugepaged: "Khugepaged",
        config: AdaptiveThpConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.khugepaged = khugepaged
        self.config = config or AdaptiveThpConfig()
        self.adjustments: list[tuple[int, int]] = []
        self._last_hits = 0
        self._last_misses = 0
        kernel.register_daemon(
            "adaptive-thp", self.config.period, self.adjust
        )

    # ------------------------------------------------------------------
    # Feedback signals
    # ------------------------------------------------------------------
    def tlb_miss_rate(self) -> float:
        """Machine-wide TLB miss rate since the last adjustment."""
        hits = sum(p.tlb.hits for p in self.kernel.processes)
        misses = sum(p.tlb.misses for p in self.kernel.processes)
        delta_hits = hits - self._last_hits
        delta_misses = misses - self._last_misses
        self._last_hits, self._last_misses = hits, misses
        total = delta_hits + delta_misses
        return delta_misses / total if total else 0.0

    def free_fraction(self) -> float:
        return self.kernel.buddy.free_frames() / self.kernel.spec.total_frames

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def adjust(self) -> None:
        config = self.config
        miss_rate = self.tlb_miss_rate()
        threshold = self.khugepaged.active_threshold
        if miss_rate > config.high_miss_rate:
            threshold = max(config.min_threshold, threshold - config.step)
        elif (
            miss_rate < config.low_miss_rate
            and self.free_fraction() < config.low_free_fraction
        ):
            threshold = min(config.max_threshold, threshold + config.step)
        if threshold != self.khugepaged.active_threshold:
            self.khugepaged.active_threshold = threshold
            self.adjustments.append((self.kernel.clock.now, threshold))
