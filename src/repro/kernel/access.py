"""Access kinds and results shared by the kernel and processes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.mem.content import PageContent


class AccessKind(enum.Enum):
    """How a page is touched.

    ``FETCH`` covers instruction fetch and the x86 ``prefetch``
    instruction — the implicit access path whose side channel VUsion
    closes with the cache-disable bit.
    """

    READ = "read"
    WRITE = "write"
    FETCH = "fetch"


@dataclass
class AccessResult:
    """Outcome of one architectural memory access.

    ``latency`` is the full simulated cost including any page faults
    taken — this is the quantity all the paper's timing attacks
    measure.  ``fault_kinds`` lists which fault paths ran (empty for a
    plain access); tests use it, attackers must not.
    """

    vaddr: int
    kind: AccessKind
    content: PageContent
    latency: int
    fault_kinds: tuple[str, ...] = ()
    tlb_hit: bool = False
    llc_hit: bool = False


@dataclass
class KernelStats:
    """Machine-wide fault and operation counters."""

    accesses: int = 0
    demand_faults: int = 0
    cow_faults: int = 0
    coa_faults: int = 0
    protection_faults: int = 0
    thp_fault_allocs: int = 0
    thp_collapses: int = 0
    thp_splits: int = 0
    frames_allocated: int = 0
    frames_freed: int = 0
    by_fault_kind: dict = field(default_factory=dict)
    #: Simulated ns each registered daemon has consumed, by daemon name
    #: — the scan-overhead ledger the fleet scale curves report.
    daemon_ns: dict = field(default_factory=dict)

    def count_fault(self, kind: str) -> None:
        self.by_fault_kind[kind] = self.by_fault_kind.get(kind, 0) + 1
