"""Idle page tracking, after Linux's ``page_idle`` facility.

The kernel sets the PTE accessed bit on every access; the tracker
harvests and clears those bits.  A page is *idle* if it has not been
touched since the last time its bit was cleared.  VUsion's working-set
estimation (§7.2 of the paper) is built on exactly this: only pages
idle for a full scan period are considered for (fake) merging, and
khugepaged's secure mode uses the same signal to decide which 2 MiB
ranges are active enough to collapse.
"""

from __future__ import annotations

from repro.mmu.page_table import PageTable
from repro.mmu.pte import PageTableEntry, PteFlags


class IdlePageTracker:
    """Accessed-bit based idle detection over page-table leaves."""

    def __init__(self) -> None:
        self.probes = 0

    def is_accessed(self, pte: PageTableEntry) -> bool:
        """True if the page was touched since its bit was last cleared."""
        self.probes += 1
        return pte.accessed

    def clear_accessed(self, pte: PageTableEntry) -> None:
        """Clear the accessed bit, starting a fresh idle period."""
        pte.clear(PteFlags.ACCESSED)

    def check_and_clear(self, pte: PageTableEntry) -> bool:
        """Harvest one page: report and reset its accessed bit."""
        accessed = self.is_accessed(pte)
        if accessed:
            self.clear_accessed(pte)
        return accessed

    def active_pages_in_range(
        self, page_table: PageTable, start: int, num_pages: int, page_size: int
    ) -> int:
        """Count pages of ``[start, start + n*size)`` with the bit set.

        Used by the secure khugepaged policy to compute the paper's
        ``K`` (number of active base pages inside a potential THP).
        """
        active = 0
        for index in range(num_pages):
            walk = page_table.walk(start + index * page_size)
            if walk is not None and walk.pte.accessed:
                active += 1
        return active
