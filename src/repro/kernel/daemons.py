"""Periodic kernel daemons (ksmd-style scanners, khugepaged, free queues).

Daemons run co-operatively: before every memory access, and while the
machine idles, the kernel fires any daemon whose deadline has passed.
Daemon work advances the shared clock, so scanning steals time from
the workload exactly as a kernel thread steals CPU.
"""

from __future__ import annotations

from typing import Callable


class Daemon:
    """One periodic task with its own deadline."""

    def __init__(self, name: str, period: int, callback: Callable[[], None]) -> None:
        if period <= 0:
            raise ValueError(f"daemon {name!r} period must be positive")
        self.name = name
        self.period = period
        self.callback = callback
        self.next_due: int | None = None
        self.runs = 0
        self.enabled = True

    def schedule_from(self, now: int) -> None:
        self.next_due = now + self.period

    def run(self, now: int) -> None:
        """Execute one tick and push the deadline one period forward.

        The next deadline is based on the *scheduled* time, not the
        completion time, so a slow tick does not drift the scan rate —
        matching how ksmd sleeps ``T`` ms between batches.
        """
        scheduled = self.next_due if self.next_due is not None else now
        self.runs += 1
        self.callback()
        self.next_due = max(scheduled, now) + self.period


class DaemonScheduler:
    """Runs registered daemons whose deadlines have passed."""

    def __init__(self) -> None:
        self._daemons: list[Daemon] = []

    def register(self, daemon: Daemon, now: int) -> Daemon:
        daemon.schedule_from(now)
        self._daemons.append(daemon)
        return daemon

    def unregister(self, daemon: Daemon) -> None:
        self._daemons.remove(daemon)

    @property
    def daemons(self) -> tuple[Daemon, ...]:
        return tuple(self._daemons)

    def next_deadline(self) -> int | None:
        deadlines = [
            d.next_due for d in self._daemons if d.enabled and d.next_due is not None
        ]
        return min(deadlines) if deadlines else None

    def run_due(self, now: int) -> bool:
        """Run every enabled daemon whose deadline is <= ``now``.

        Returns True if anything ran.  Each daemon runs at most once per
        call; catching up over a long idle gap is driven by the kernel's
        idle loop stepping time forward.
        """
        ran = False
        for daemon in self._daemons:
            if daemon.enabled and daemon.next_due is not None and daemon.next_due <= now:
                daemon.run(now)
                ran = True
        return ran
