"""Kernel tracepoints: a structured event stream for fusion activity.

The VUsion patch "reused most of KSM's original implementation and
kernel tracing functionality" (§7); this module is the simulator's
equivalent of those tracepoints.  Engines and the kernel emit named
events (merges, unmerges, collapses, faults); consumers subscribe live
or record into a bounded ring buffer for later inspection.

Tracing is off by default and costs one attribute check per emit, so
the hot paths stay fast.  Note that recording is an *experimenter*
facility: attackers in this repository never read the trace.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class TraceEvent:
    """One emitted event."""

    t_ns: int
    name: str
    fields: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " ".join(f"{key}={value}" for key, value in self.fields.items())
        return f"[{self.t_ns:>12d}] {self.name} {body}".rstrip()


class Tracepoints:
    """Registry of named tracepoints with optional ring-buffer capture."""

    def __init__(self) -> None:
        self.active = False
        self._subscribers: dict[str, list[Callable[[TraceEvent], None]]] = {}
        self._buffer: deque[TraceEvent] | None = None
        self.emitted = Counter()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def record(self, capacity: int = 4096) -> None:
        """Start capturing events into a bounded ring buffer."""
        self._buffer = deque(maxlen=capacity)
        self.active = True

    def stop(self) -> None:
        self.active = bool(self._subscribers)

    def subscribe(self, name: str, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` on every future event named ``name``."""
        self._subscribers.setdefault(name, []).append(callback)
        self.active = True

    # ------------------------------------------------------------------
    # Emission and queries
    # ------------------------------------------------------------------
    def emit(self, now: int, name: str, **fields) -> None:
        if not self.active:
            return
        event = TraceEvent(now, name, fields)
        self.emitted[name] += 1
        if self._buffer is not None:
            self._buffer.append(event)
        for callback in self._subscribers.get(name, ()):
            callback(event)

    def events(self, name: str | None = None) -> list[TraceEvent]:
        if self._buffer is None:
            return []
        if name is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.name == name]

    def latest(self, name: str) -> TraceEvent | None:
        """Most recent recorded event named ``name``, if any."""
        if self._buffer is None:
            return None
        for event in reversed(self._buffer):
            if event.name == name:
                return event
        return None

    def counts(self) -> dict[str, int]:
        return dict(self.emitted)
