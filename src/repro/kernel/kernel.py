"""The kernel façade: machine state, memory operations and fault handling.

Every architectural access from every process funnels through
:meth:`Kernel.access`, which resolves faults (demand paging,
copy-on-write, VUsion's reserved-bit copy-on-access), models the TLB
and LLC, and charges simulated time.  Fusion engines and khugepaged
plug in as periodic daemons plus fault hooks — mirroring how KSM and
VUsion live inside Linux.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.llc import LastLevelCache
from repro.cache.timing import AccessTimer
from repro.check.sanitizer import FrameSan
from repro.dram.geometry import DramMapper
from repro.dram.rowhammer import FlipTemplate, RowhammerEngine
from repro.errors import (
    FusionError,
    MappingError,
    OutOfMemoryError,
    ProtectionFault,
    SegmentationFault,
)
from repro.kernel.access import AccessKind, AccessResult, KernelStats
from repro.kernel.clock import Clock
from repro.kernel.daemons import Daemon, DaemonScheduler
from repro.kernel.idle import IdlePageTracker
from repro.kernel.process import Process
from repro.kernel.tracing import Tracepoints
from repro.mem.buddy import BuddyAllocator
from repro.mem.content import ZERO_PAGE, PageContent
from repro.mem.physmem import FrameType, PhysicalMemory
from repro.mmu.address_space import Vma
from repro.mmu.page_table import TranslationResult
from repro.mmu.pte import PageTableEntry, PteFlags
from repro.params import (
    HUGE_PAGE_SIZE,
    MachineSpec,
    PAGE_SIZE,
    PAGES_PER_HUGE_PAGE,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.fusion.base import FusionEngine

#: Frames reserved at the bottom of memory for the kernel image and the
#: shared zero page.
RESERVED_FRAMES = 16

#: The shared all-zero frame mapped on anonymous read faults.
ZERO_FRAME = 0


class Kernel:
    """One simulated machine: physical memory, MMU services and daemons."""

    def __init__(
        self,
        spec: MachineSpec | None = None,
        thp_fault_enabled: bool = False,
        sanitize: bool | None = None,
    ) -> None:
        self.spec = spec or MachineSpec()
        self.costs = self.spec.costs
        self.clock = Clock()
        self.physmem = PhysicalMemory(
            self.spec.total_frames,
            fingerprint_enabled=self.spec.fingerprint_enabled,
            frame_store=self.spec.frame_store,
            scan_kernel=self.spec.scan_kernel,
        )
        self.buddy = BuddyAllocator(RESERVED_FRAMES, self.spec.total_frames - RESERVED_FRAMES)
        #: FrameSan (None unless ``REPRO_SANITIZE=1`` or ``sanitize=True``):
        #: shadow-poisons freed frames and faults on UAF/double-free/CoW
        #: violations.  Shadow-state only, so simulation results are
        #: byte-identical with it on or off.
        self.sanitizer = FrameSan.from_env(
            self.physmem, clock=self.clock, zero_frame=ZERO_FRAME,
            reserved_frames=RESERVED_FRAMES, force=sanitize,
        )
        self.physmem.sanitizer = self.sanitizer
        self.buddy.sanitizer = self.sanitizer
        self.llc = LastLevelCache(self.spec.cache)
        self.dram = DramMapper(self.spec.dram, self.spec.total_frames)
        self.timer = AccessTimer(self.costs, self.llc, self.dram)
        self.rowhammer = RowhammerEngine(self.physmem, self.dram, self.spec.seed)
        self.idle_tracker = IdlePageTracker()
        self.scheduler = DaemonScheduler()
        self.stats = KernelStats()
        self.thp_fault_enabled = thp_fault_enabled
        self.fusion: "FusionEngine | None" = None
        #: Optional trace of fault-handler operations (SB symmetry tests).
        self.fault_trace: list[tuple] | None = None
        #: Structured tracepoints (merges, faults, collapses); off by
        #: default — call ``tracepoints.record()`` to capture.
        self.tracepoints = Tracepoints()
        self._processes: dict[int, Process] = {}
        self._next_pid = 1
        for pfn in range(RESERVED_FRAMES):
            self.physmem.set_frame_type(pfn, FrameType.KERNEL)
        # Pin the zero frame forever.
        self.physmem.write(ZERO_FRAME, ZERO_PAGE)
        self.physmem.get_ref(ZERO_FRAME)

    # ------------------------------------------------------------------
    # Processes and daemons
    # ------------------------------------------------------------------
    def create_process(self, name: str) -> Process:
        process = Process(self._next_pid, name, self)
        self._processes[process.pid] = process
        self._next_pid += 1
        return process

    def process(self, pid: int) -> Process:
        return self._processes[pid]

    def find_process(self, pid: int) -> Process | None:
        return self._processes.get(pid)

    @property
    def processes(self) -> tuple[Process, ...]:
        return tuple(self._processes.values())

    def destroy_process(self, process: Process) -> None:
        """Tear a process down completely (VM retirement).

        Every VMA is unmapped through the regular :meth:`munmap` path —
        fused frames go through ``on_fused_ref_drop``, huge pages are
        released as a block — so retirement frees exactly the frames the
        process still owned.  Scan cursors and the metrics layer already
        tolerate dead processes (``process.alive``), so a fusion pass in
        flight simply skips the retired VM on its next step.
        """
        for vma in list(process.address_space.vmas):
            self.munmap(process, vma)
        process.alive = False
        self._processes.pop(process.pid, None)

    def register_daemon(self, name: str, period: int, callback) -> Daemon:
        def timed_tick() -> None:
            start = self.clock.now
            callback()
            self.stats.daemon_ns[name] = (
                self.stats.daemon_ns.get(name, 0) + self.clock.now - start
            )

        return self.scheduler.register(
            Daemon(name, period, timed_tick), self.clock.now
        )

    def run_due_daemons(self) -> None:
        self.scheduler.run_due(self.clock.now)

    def charge_service(self, name: str, ns: int) -> None:
        """Book ``ns`` of simulated service to a daemon account without
        advancing the clock.

        For work that happens off the node's critical path — the shard
        exchange ships its content-id tables over the interconnect
        while guests keep running — the cost is real (it shows up in
        ``daemon_ns`` and every ``scan_ns`` rollup) but it does not
        stall the local timeline.
        """
        if ns < 0:
            raise ValueError("service charge must be >= 0")
        if ns:
            self.stats.daemon_ns[name] = (
                self.stats.daemon_ns.get(name, 0) + ns
            )

    def idle(self, duration: int) -> None:
        """Let simulated time pass, running daemons as they come due."""
        deadline = self.clock.now + duration
        while True:
            next_due = self.scheduler.next_deadline()
            if next_due is None or next_due > deadline:
                break
            self.clock.advance_to(next_due)
            self.scheduler.run_due(self.clock.now)
        self.clock.advance_to(deadline)

    def attach_fusion(self, engine: "FusionEngine") -> "FusionEngine":
        if self.fusion is not None:
            raise FusionError("a fusion engine is already attached")
        self.fusion = engine
        engine.attach(self)
        return engine

    # ------------------------------------------------------------------
    # Tracing (used by the SB symmetry tests)
    # ------------------------------------------------------------------
    def trace(self, *event: object) -> None:
        if self.fault_trace is not None:
            self.fault_trace.append(tuple(event))

    def emit(self, name: str, **fields) -> None:
        """Emit a structured tracepoint (no-op unless tracing is on)."""
        if self.tracepoints.active:
            self.tracepoints.emit(self.clock.now, name, **fields)

    def emit_fingerprint_stats(self) -> None:
        """Emit one ``fingerprint:stats`` tracepoint with cache counters.

        Opt-in rather than automatic: the fingerprint cache must not
        change the trace stream by itself, or turning it on/off would
        break trace-level determinism.
        """
        fields: dict[str, int] = {"enabled": int(self.physmem.fingerprints.enabled)}
        fields.update(self.physmem.fingerprints.stats.as_dict())
        if self.fusion is not None:
            for key, value in self.fusion.incremental_stats().items():
                fields[f"scan_{key}"] = value
        self.emit("fingerprint:stats", **fields)

    def scan_topology_token(self) -> tuple[int, int, int]:
        """Cheap token covering everything a scan's page walks depend on.

        Changes whenever a process appears/disappears, any page table's
        structure changes, or any VMA layout/mergeable flag changes.
        Scan caches compare tokens to prove recorded walk outcomes are
        still valid without re-walking.
        """
        pt_version = 0
        as_epoch = 0
        for process in self._processes.values():
            pt_version += process.address_space.page_table.version
            as_epoch += process.address_space.epoch
        return (len(self._processes), pt_version, as_epoch)

    # ------------------------------------------------------------------
    # Frame management
    # ------------------------------------------------------------------
    def alloc_frame(
        self, frame_type: FrameType, order: int = 0, zero: bool = False
    ) -> int:
        """Allocate ``2**order`` frames from the buddy allocator."""
        head = self.buddy.alloc(order)
        self.clock.advance(self.costs.buddy_alloc)
        for pfn in range(head, head + (1 << order)):
            self.physmem.set_frame_type(pfn, frame_type)
            if zero:
                self.physmem.write(pfn, ZERO_PAGE)
        self.stats.frames_allocated += 1 << order
        return head

    def free_frame(self, pfn: int, order: int = 0) -> None:
        """Return frames to their owner (fusion pool or buddy)."""
        if order == 0 and self.fusion is not None and self.fusion.release_frame(pfn):
            self.physmem.set_frame_type(pfn, FrameType.FREE)
            self.stats.frames_freed += 1
            return
        self.buddy.free(pfn, order)
        self.clock.advance(self.costs.buddy_free)
        for frame in range(pfn, pfn + (1 << order)):
            self.physmem.set_frame_type(frame, FrameType.FREE)
        self.stats.frames_freed += 1 << order

    def frames_in_use(self) -> int:
        return self.physmem.frames_in_use()

    # ------------------------------------------------------------------
    # Mapping helpers (rmap and refcounts stay consistent)
    # ------------------------------------------------------------------
    def map_page(self, process: Process, vaddr: int, pfn: int, flags: PteFlags):
        base = vaddr & ~(PAGE_SIZE - 1)
        pte = process.address_space.page_table.map_page(base, pfn, flags)
        self.physmem.rmap_add(pfn, process.pid, base)
        self.physmem.get_ref(pfn)
        self.clock.advance(self.costs.pte_update)
        return pte

    def unmap_page(self, process: Process, vaddr: int):
        """Unmap a 4 KiB page; returns ``(pfn, refcount_after, pte)``."""
        base = vaddr & ~(PAGE_SIZE - 1)
        pte = process.address_space.page_table.unmap(base)
        if pte.huge:
            raise MappingError(f"unmap_page hit a huge page at {vaddr:#x}")
        self.physmem.rmap_remove(pte.pfn, process.pid, base)
        refcount = self.physmem.put_ref(pte.pfn)
        process.tlb.invalidate_page(base >> 12)
        self.clock.advance(self.costs.pte_update)
        return pte.pfn, refcount, pte

    def map_huge(self, process: Process, vaddr: int, head_pfn: int, flags: PteFlags):
        pte = process.address_space.page_table.map_huge(vaddr, head_pfn, flags)
        for index in range(PAGES_PER_HUGE_PAGE):
            self.physmem.rmap_add(head_pfn + index, process.pid, vaddr + index * PAGE_SIZE)
            self.physmem.get_ref(head_pfn + index)
        self.clock.advance(self.costs.pte_update)
        return pte

    def unmap_huge(self, process: Process, vaddr: int) -> int:
        """Unmap a huge leaf; returns the head pfn (refcounts dropped)."""
        base = vaddr & ~(HUGE_PAGE_SIZE - 1)
        pte = process.address_space.page_table.unmap(base)
        if not pte.huge:
            raise MappingError(f"unmap_huge hit a 4 KiB page at {vaddr:#x}")
        for index in range(PAGES_PER_HUGE_PAGE):
            self.physmem.rmap_remove(pte.pfn + index, process.pid, base + index * PAGE_SIZE)
            self.physmem.put_ref(pte.pfn + index)
        process.tlb.invalidate_page(base >> 12)
        self.clock.advance(self.costs.pte_update)
        return pte.pfn

    def invalidate_tlbs_for_frame(self, pfn: int) -> None:
        """TLB shootdown: flush every mapping of ``pfn`` everywhere."""
        for pid, vaddr in self.physmem.rmap(pfn):
            owner = self._processes.get(pid)
            if owner is not None:
                owner.tlb.invalidate_page(vaddr >> 12)
        self.clock.advance(self.costs.tlb_shootdown)

    def release_after_unmap(self, pfn: int, refcount: int, pte) -> None:
        """Free or hand back a frame whose mapping was just removed."""
        if pte.fused and self.fusion is not None:
            self.fusion.on_fused_ref_drop(pfn)
        elif refcount == 0:
            self.free_frame(pfn)

    def munmap(self, process: Process, vma: Vma) -> None:
        """Tear down every mapping of a VMA and release its frames."""
        if vma.mergeable and self.fusion is not None:
            # Engines drop their candidate references into the region
            # (KSM rmap_item-style) before any of its frames are freed.
            self.fusion.on_mergeable_unmapped(process, vma)
        vaddr = vma.start
        page_table = process.address_space.page_table
        while vaddr < vma.end:
            walk = page_table.walk(vaddr)
            if walk is None:
                vaddr += PAGE_SIZE
                continue
            if walk.huge:
                head = self.unmap_huge(process, walk.page_base)
                for index in range(PAGES_PER_HUGE_PAGE):
                    if self.physmem.refcount(head + index) == 0:
                        self.free_frame(head + index)
                vaddr = walk.page_base + HUGE_PAGE_SIZE
                continue
            pfn, refcount, pte = self.unmap_page(process, vaddr)
            self.release_after_unmap(pfn, refcount, pte)
            vaddr += PAGE_SIZE
        process.address_space.remove_vma(vma)

    def invalidate_file_pages(self, process: Process, vma: Vma) -> int:
        """Drop present pages of a file-backed VMA (file was rewritten)."""
        dropped = 0
        page_table = process.address_space.page_table
        for vaddr in vma.pages():
            walk = page_table.walk(vaddr)
            if walk is None or walk.huge:
                continue
            pfn, refcount, pte = self.unmap_page(process, vaddr)
            self.release_after_unmap(pfn, refcount, pte)
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # The architectural access path
    # ------------------------------------------------------------------
    def access(
        self,
        process: Process,
        vaddr: int,
        kind: AccessKind,
        new_content: PageContent | None = None,
    ) -> AccessResult:
        """Perform one access, resolving faults and charging time."""
        self.run_due_daemons()
        start = self.clock.now
        self.stats.accesses += 1
        vma = process.address_space.find_vma(vaddr)
        if vma is None:
            raise SegmentationFault(vaddr)
        page_table = process.address_space.page_table
        fault_kinds: list[str] = []

        walk = page_table.walk(vaddr)
        if walk is None:
            fault_kinds.append("demand")
            self._demand_fault(process, vma, vaddr, kind)
            walk = page_table.walk(vaddr)
            if walk is None:
                raise FusionError(f"demand fault left {vaddr:#x} unmapped")

        for _ in range(4):
            if walk.pte.reserved:
                if self.fusion is None:
                    raise ProtectionFault(vaddr, "reserved-bit")
                fault_kinds.append("copy_on_access")
                self.emit("fault:copy_on_access", pid=process.pid, vaddr=vaddr)
                self.stats.coa_faults += 1
                self.stats.count_fault("copy_on_access")
                self.clock.advance(self.costs.fault_trap)
                self.fusion.handle_reserved_fault(process, vaddr, walk, kind)
                walk = page_table.walk(vaddr)
                continue
            if kind is AccessKind.WRITE and not walk.pte.writable:
                self.clock.advance(self.costs.fault_trap)
                if walk.pte.fused and self.fusion is not None:
                    fault_kinds.append("unmerge_cow")
                    self.emit("fault:unmerge_cow", pid=process.pid, vaddr=vaddr)
                    self.stats.cow_faults += 1
                    self.stats.count_fault("unmerge_cow")
                    self.fusion.handle_fused_write(process, vaddr, walk)
                elif walk.pte.cow:
                    fault_kinds.append("cow")
                    self.stats.cow_faults += 1
                    self.stats.count_fault("cow")
                    self._cow_fault(process, vaddr, walk)
                else:
                    self.stats.protection_faults += 1
                    raise ProtectionFault(vaddr, kind.value)
                walk = page_table.walk(vaddr)
                continue
            break
        else:
            raise FusionError(f"fault loop did not converge at {vaddr:#x}")

        faulted = bool(fault_kinds)
        huge = walk.huge
        vpn = (vaddr >> 21) if huge else (vaddr >> 12)
        tlb_hit = (not faulted) and process.tlb.lookup(vpn, huge)
        if not tlb_hit:
            process.tlb.insert(vpn, huge)
        self.clock.advance(self.timer.translation(tlb_hit, walk.levels_walked))

        pfn = walk.frame_for(vaddr)
        paddr = pfn * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1))
        cacheable = not walk.pte.cache_disabled
        llc_hit = cacheable and self.llc.probe(paddr)
        self.clock.advance(self.timer.memory_access(paddr, cacheable))

        walk.pte.set(PteFlags.ACCESSED)
        if kind is AccessKind.WRITE:
            walk.pte.set(PteFlags.DIRTY)
            if new_content is not None:
                self.physmem.write(pfn, new_content)
        content = self.physmem.read(pfn)
        if fault_kinds:
            self.stats.count_fault("+".join(fault_kinds))
        return AccessResult(
            vaddr=vaddr,
            kind=kind,
            content=content,
            latency=self.clock.now - start,
            fault_kinds=tuple(fault_kinds),
            tlb_hit=tlb_hit,
            llc_hit=llc_hit,
        )

    # ------------------------------------------------------------------
    # Fault handlers
    # ------------------------------------------------------------------
    def _demand_fault(self, process: Process, vma: Vma, vaddr: int, kind: AccessKind) -> None:
        self.stats.demand_faults += 1
        self.clock.advance(self.costs.fault_trap)
        self.trace("demand", kind.value)
        self.emit("fault:demand", pid=process.pid, vaddr=vaddr, kind=kind.value)
        if self.fusion is not None and self.fusion.handle_missing_page(
            process, vaddr & ~(PAGE_SIZE - 1)
        ):
            return
        if vma.file_key is not None:
            index = (vaddr - vma.start) // PAGE_SIZE
            content = process.file_store.page_content(vma.file_key, index)
            pfn = self.alloc_frame(FrameType.PAGE_CACHE)
            self.physmem.write(pfn, content)
            self.map_page(process, vaddr, pfn, PteFlags.USER | PteFlags.COW)
            self.clock.advance(self.costs.copy_page)
            return
        if kind is AccessKind.WRITE:
            if self._try_thp_fault(process, vma, vaddr):
                return
            pfn = self.alloc_frame(FrameType.ANON, zero=True)
            self.map_page(
                process, vaddr, pfn, PteFlags.USER | PteFlags.WRITABLE
            )
            self.clock.advance(self.costs.zero_page)
            return
        # Read/fetch of untouched anonymous memory: the shared zero page.
        self.map_page(process, vaddr, ZERO_FRAME, PteFlags.USER | PteFlags.COW)

    def _try_thp_fault(self, process: Process, vma: Vma, vaddr: int) -> bool:
        """Back a write fault with a fresh THP when policy allows."""
        if not (self.thp_fault_enabled and vma.thp_allowed):
            return False
        base = vaddr & ~(HUGE_PAGE_SIZE - 1)
        if base < vma.start or base + HUGE_PAGE_SIZE > vma.end:
            return False
        page_table = process.address_space.page_table
        if any(
            page_table.walk(base + index * PAGE_SIZE) is not None
            for index in range(PAGES_PER_HUGE_PAGE)
        ):
            return False
        try:
            head = self.alloc_frame(FrameType.ANON, order=9, zero=True)
        except OutOfMemoryError:
            return False
        self.map_huge(process, base, head, PteFlags.USER | PteFlags.WRITABLE)
        self.clock.advance(self.costs.zero_page)
        self.stats.thp_fault_allocs += 1
        return True

    def _cow_fault(self, process: Process, vaddr: int, walk: TranslationResult) -> None:
        """Copy-on-write for non-fused shared pages (zero page, file pages)."""
        self.trace("cow", walk.huge)
        if walk.huge:
            self._cow_huge(process, walk)
            return
        pfn = walk.pte.pfn
        if self.physmem.refcount(pfn) == 1:
            walk.pte.set(PteFlags.WRITABLE)
            walk.pte.clear(PteFlags.COW)
            process.tlb.invalidate_page(walk.page_base >> 12)
            self.clock.advance(self.costs.pte_update)
            return
        new_pfn = self.alloc_frame(FrameType.ANON)
        self.physmem.copy(pfn, new_pfn)
        self.clock.advance(self.costs.copy_page)
        old_pfn, refcount, pte = self.unmap_page(process, walk.page_base)
        self.release_after_unmap(old_pfn, refcount, pte)
        self.map_page(
            process, walk.page_base, new_pfn, PteFlags.USER | PteFlags.WRITABLE
        )

    def _cow_huge(self, process: Process, walk: TranslationResult) -> None:
        head = walk.pte.pfn
        if all(
            self.physmem.refcount(head + index) == 1
            for index in range(PAGES_PER_HUGE_PAGE)
        ):
            walk.pte.set(PteFlags.WRITABLE)
            walk.pte.clear(PteFlags.COW)
            process.tlb.invalidate_page(walk.page_base >> 12)
            self.clock.advance(self.costs.pte_update)
            return
        new_head = self.alloc_frame(FrameType.ANON, order=9)
        for index in range(PAGES_PER_HUGE_PAGE):
            self.physmem.copy(head + index, new_head + index)
        self.clock.advance(self.costs.thp_copy)
        self.unmap_huge(process, walk.page_base)
        for index in range(PAGES_PER_HUGE_PAGE):
            if self.physmem.refcount(head + index) == 0:
                self.free_frame(head + index)
        self.map_huge(
            process, walk.page_base, new_head, PteFlags.USER | PteFlags.WRITABLE
        )

    def copy_page_cached(self, src_pfn: int, dst_pfn: int) -> None:
        """Copy a page, leaving its lines in the LLC like a real memcpy.

        The kernel's copy reads the source and writes the destination
        through cacheable kernel mappings, so both frames' leading
        lines end up in the (physically-indexed) LLC — observable state
        that the prefetch-based and fault-handler-coloring attacks
        probe.  The charged time is a constant: the copy engine's
        latency is modelled as fully pipelined so the *fault path*
        stays constant-time (SB) regardless of prior cache state.
        """
        self.llc.access(src_pfn * PAGE_SIZE)
        self.physmem.copy(src_pfn, dst_pfn)
        self.llc.access(dst_pfn * PAGE_SIZE)
        self.clock.advance(self.costs.copy_page)

    def prefetch(self, process: Process, vaddr: int) -> AccessResult:
        """The x86 ``prefetch`` instruction: never faults, may cache.

        Prefetch ignores access permissions — including VUsion's
        reserved trap bit — and silently drops on unmapped addresses.
        Its latency reveals whether the line was already cached (the
        Gruss et al. side channel).  Pages with the Caching-Disabled
        bit cannot be pulled into the LLC, which is exactly why VUsion
        sets CD on fused pages (§7.1).
        """
        self.run_due_daemons()
        start = self.clock.now
        vma = process.address_space.find_vma(vaddr)
        walk = (
            process.address_space.page_table.walk(vaddr) if vma is not None else None
        )
        if walk is None or walk.pte.cache_disabled:
            # Dropped: no translation or uncacheable target.
            self.clock.advance(self.costs.register_op)
            return AccessResult(
                vaddr=vaddr,
                kind=AccessKind.FETCH,
                content=b"",
                latency=self.clock.now - start,
            )
        pfn = walk.frame_for(vaddr)
        paddr = pfn * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1))
        llc_hit = self.llc.probe(paddr)
        self.clock.advance(self.timer.memory_access(paddr, cacheable=True))
        return AccessResult(
            vaddr=vaddr,
            kind=AccessKind.FETCH,
            content=b"",
            latency=self.clock.now - start,
            llc_hit=llc_hit,
        )

    def clflush(self, process: Process, vaddr: int) -> AccessResult:
        """``clflush``: evict the page's lines from the LLC.

        Requires read access like the real instruction, so it takes the
        same faults as a load — flushing a VUsion-fused page first
        copy-on-accesses it, which is exactly why FLUSH+RELOAD dies
        under SB.
        """
        result = self.access(process, vaddr, AccessKind.READ)
        walk = process.address_space.page_table.walk(vaddr)
        self.llc.flush_frame(walk.frame_for(vaddr))
        self.clock.advance(self.costs.llc_hit)
        return result

    # ------------------------------------------------------------------
    # Transparent-huge-page restructuring
    # ------------------------------------------------------------------
    def split_huge_mapping(self, process: Process, vaddr: int) -> list[PageTableEntry]:
        """Break a 2 MiB leaf into 512 4 KiB PTEs over the same frames.

        rmap entries and refcounts are already per-subframe, so only
        the page-table shape changes — after the split each frame can
        be remapped, merged or freed individually.  This is what KSM
        does when it finds a sharing opportunity inside a THP, and the
        structural change the translation side channel detects.
        """
        base = vaddr & ~(HUGE_PAGE_SIZE - 1)

        def factory(index: int, huge_pte: PageTableEntry) -> PageTableEntry:
            flags = huge_pte.flags & ~PteFlags.HUGE
            return PageTableEntry(huge_pte.pfn + index, flags)

        ptes = process.address_space.page_table.split_huge(base, factory)
        process.tlb.invalidate_page(base >> 12)
        self.clock.advance(self.costs.thp_split)
        self.stats.thp_splits += 1
        self.emit("thp:split", pid=process.pid, vaddr=base)
        return ptes

    # ------------------------------------------------------------------
    # Rowhammer
    # ------------------------------------------------------------------
    def hammer(
        self, process: Process, vaddr_a: int, vaddr_b: int, rounds: int = 1
    ) -> list[FlipTemplate]:
        """Hammer the frames behind two of the process's own pages.

        The aggressor pages are *read* first (a normal architectural
        access — under VUsion this may copy-on-access them to new
        random frames, which is precisely why templating fused pages
        fails there), then the rows behind the final translations are
        activated ``rounds`` times.
        """
        self.access(process, vaddr_a, AccessKind.READ)
        self.access(process, vaddr_b, AccessKind.READ)
        page_table = process.address_space.page_table
        walk_a = page_table.walk(vaddr_a)
        walk_b = page_table.walk(vaddr_b)
        if walk_a is None or walk_b is None:
            raise SegmentationFault(vaddr_a if walk_a is None else vaddr_b)
        self.clock.advance(self.costs.hammer_round * rounds)
        return self.rowhammer.hammer(
            walk_a.frame_for(vaddr_a), walk_b.frame_for(vaddr_b)
        )
