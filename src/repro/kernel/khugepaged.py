"""khugepaged: the background THP-collapse daemon.

Periodically scans anonymous VMAs for 2 MiB-aligned ranges that can be
collapsed into a transparent huge page: it allocates 512 contiguous
frames, copies (or zero-fills) each subpage, remaps the range as one
huge leaf and frees the old frames.

Two policies are modelled:

* **insecure** (Linux default): collapse any sufficiently-populated
  range that contains no fused pages.  Combined with KSM's THP
  splitting this is the behaviour the paper's translation attack
  exploits.
* **secure** (VUsion, §8.2): only collapse ranges that are *active*
  (at least ``active_threshold`` of the 512 base pages have their
  accessed bit set — the paper's ``K >= n``), and (fake-)unmerge every
  fused page in the range first, so collapsing never reveals merge
  state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import OutOfMemoryError
from repro.mem.physmem import FrameType
from repro.mmu.address_space import Vma
from repro.mmu.pte import PteFlags
from repro.params import HUGE_PAGE_SIZE, PAGE_SIZE, PAGES_PER_HUGE_PAGE, SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class Khugepaged:
    """Background collapser of 4 KiB page runs into huge pages."""

    def __init__(
        self,
        kernel: "Kernel",
        period: int = 10 * SECOND,
        secure: bool = False,
        active_threshold: int = 1,
        min_present: int = 461,
    ) -> None:
        """``min_present`` is an Ingens-style utilisation threshold:
        a range collapses only when at least that many of its 512 base
        pages are populated (default ~90%), avoiding THP bloat."""
        self.kernel = kernel
        self.secure = secure
        self.active_threshold = active_threshold
        self.min_present = min_present
        #: How far back an access still counts as "active" (secure mode).
        self.activity_horizon = period // 2
        self.collapses = 0
        self.skipped_inactive = 0
        self.skipped_fused = 0
        self.daemon = kernel.register_daemon("khugepaged", period, self.scan)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self) -> None:
        """One full pass over all processes' collapse candidates."""
        for process in self.kernel.processes:
            if not process.alive:
                continue
            for vma in process.address_space.vmas:
                if not vma.thp_allowed or vma.file_key is not None:
                    continue
                self._scan_vma(process, vma)

    def _scan_vma(self, process: "Process", vma: Vma) -> None:
        base = -(-vma.start // HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE
        while base + HUGE_PAGE_SIZE <= vma.end:
            self._consider_range(process, base)
            base += HUGE_PAGE_SIZE

    def _consider_range(self, process: "Process", base: int) -> None:
        page_table = process.address_space.page_table
        entries = page_table.pt_entries(base)
        if entries is None or len(entries) < self.min_present:
            return
        fused = [
            index
            for index, pte in entries.items()
            if pte.fused or pte.reserved
        ]
        if fused and not self.secure:
            # Linux khugepaged refuses to collapse over KSM pages.
            self.skipped_fused += 1
            return
        if self.secure:
            active = self._count_active(process, base, entries)
            if active < self.active_threshold:
                # SB-preserving policy: idle ranges stay 4 KiB and
                # remain fusion candidates.
                self.skipped_inactive += 1
                return
            fusion = self.kernel.fusion
            if fused and fusion is None:
                self.skipped_fused += 1
                return
            for index in fused:
                # (Fake-)unmerge before collapsing so khugepaged's copy
                # never observes or perturbs merge state (paper §8.2).
                fusion.unmerge_for_collapse(process, base + index * PAGE_SIZE)
        self._collapse(process, base)

    def _count_active(self, process: "Process", base: int, entries) -> int:
        """Count active base pages (the paper's K).

        A fusion engine's working-set estimator consumes accessed bits
        during its own scans, so a raw bit read would undercount; ask
        the estimator for recent activity as well, when one exists.
        """
        wse = getattr(self.kernel.fusion, "wse", None)
        now = self.kernel.clock.now
        active = 0
        for index, pte in entries.items():
            if pte.accessed:
                active += 1
                continue
            if wse is not None and wse.recently_active(
                (process.pid, base + index * PAGE_SIZE), now, self.activity_horizon
            ):
                active += 1
        return active

    # ------------------------------------------------------------------
    # Collapse
    # ------------------------------------------------------------------
    def _collapse(self, process: "Process", base: int) -> bool:
        kernel = self.kernel
        page_table = process.address_space.page_table
        entries = page_table.pt_entries(base)
        if entries is None:
            return False
        try:
            head = kernel.alloc_frame(FrameType.ANON, order=9, zero=True)
        except OutOfMemoryError:
            return False
        for index, pte in sorted(entries.items()):
            kernel.physmem.copy(pte.pfn, head + index)
        for index in sorted(entries):
            pfn, refcount, pte = kernel.unmap_page(process, base + index * PAGE_SIZE)
            kernel.release_after_unmap(pfn, refcount, pte)
        kernel.map_huge(
            process, base, head, PteFlags.USER | PteFlags.WRITABLE
        )
        kernel.clock.advance(kernel.costs.thp_collapse)
        kernel.stats.thp_collapses += 1
        kernel.emit("thp:collapse", pid=process.pid, vaddr=base, pfn=head)
        self.collapses += 1
        return True
