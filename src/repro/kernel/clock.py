"""The simulated clock.

A single monotonically-advancing counter of simulated nanoseconds.  All
costs — workload accesses, fault handling, fusion-daemon scanning —
are charged to the same clock, modelling the paper's observation that
scanning CPU time and extra page faults are what produce the (small)
overhead of page fusion.  Attackers read the same clock, which is what
makes the timing side channels measurable.
"""

from __future__ import annotations


class Clock:
    """Monotonic simulated-time source (nanoseconds)."""

    def __init__(self, start: int = 0) -> None:
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance(self, ns: int) -> int:
        """Advance time by ``ns`` nanoseconds; returns the new time."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by {ns} ns")
        self._now += ns
        return self._now

    def advance_to(self, deadline: int) -> int:
        """Advance to ``deadline`` if it is in the future."""
        if deadline > self._now:
            self._now = deadline
        return self._now
