"""The simulated kernel: clock, processes, faults, daemons and THP."""

from repro.kernel.clock import Clock
from repro.kernel.daemons import Daemon
from repro.kernel.idle import IdlePageTracker
from repro.kernel.kernel import AccessKind, AccessResult, Kernel
from repro.kernel.khugepaged import Khugepaged
from repro.kernel.page_cache import GuestFileStore
from repro.kernel.process import Process

__all__ = [
    "AccessKind",
    "AccessResult",
    "Clock",
    "Daemon",
    "GuestFileStore",
    "IdlePageTracker",
    "Kernel",
    "Khugepaged",
    "Process",
]
