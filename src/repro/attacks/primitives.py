"""Attacker-side measurement primitives.

Everything here works purely through a process's own memory accesses
and the clock: latency calibration, TLB eviction, and timing-based
eviction-set construction (the group-reduction algorithm of Oren et
al. / Liu et al. used by the page-color attack).
"""

from __future__ import annotations

import statistics

from repro.kernel.process import Process
from repro.mmu.address_space import Vma
from repro.params import PAGE_SIZE


def write_unique(process: Process, vma: Vma, rng, tag: str = "u") -> list[bytes]:
    """Fill a VMA with distinct contents; returns them in page order."""
    contents = []
    for index in range(vma.num_pages):
        content = bytes(f"{tag}:{index}:", "ascii") + rng.randbytes(16) + b"\x01"
        process.write(vma.start + index * PAGE_SIZE, content)
        contents.append(process.read(vma.start + index * PAGE_SIZE).content)
    return contents


def calibrate_write_baseline(process: Process, samples: int = 16) -> int:
    """Median latency of a plain (non-candidate) warm write."""
    vma = process.mmap(samples, name="calib", mergeable=False)
    times = []
    for index in range(samples):
        vaddr = vma.start + index * PAGE_SIZE
        process.write(vaddr, b"calib" + bytes([index + 1]))
        times.append(process.rewrite(vaddr).latency)
    return int(statistics.median(times))


def calibrate_read_baseline(process: Process, samples: int = 16) -> int:
    """Median latency of a warm read (TLB hit + LLC hit)."""
    vma = process.mmap(samples, name="calib-r", mergeable=False)
    times = []
    for index in range(samples):
        vaddr = vma.start + index * PAGE_SIZE
        process.write(vaddr, b"c" + bytes([index + 1]))
        process.read(vaddr)
        times.append(process.time_read(vaddr))
    return int(statistics.median(times))


class TlbEvictionSet:
    """A pool of pages whose traversal flushes the victim's TLB set(s)."""

    def __init__(self, process: Process, pages: int = 256) -> None:
        self.process = process
        self.vma = process.mmap(pages, name="tlb-evict", mergeable=False)
        for index in range(pages):
            process.write(self.vma.start + index * PAGE_SIZE, bytes([1 + index % 250]))

    def evict(self) -> None:
        """Touch every pool page, cycling all TLB sets several times."""
        for vaddr in self.vma.pages():
            self.process.read(vaddr)


class CacheProbe:
    """Timing-based LLC conflict testing over the attacker's own pages."""

    def __init__(self, process: Process, pool_pages: int = 4096) -> None:
        self.process = process
        self.pool = process.mmap(pool_pages, name="probe-pool", mergeable=False)
        for index in range(pool_pages):
            process.write(self.pool.start + index * PAGE_SIZE, bytes([1 + index % 250]))
        self.miss_threshold = self._calibrate()

    def _calibrate(self) -> int:
        """Latency threshold separating LLC hits from misses."""
        vaddr = self.pool.start
        self.process.read(vaddr)
        hit = min(self.process.time_read(vaddr) for _ in range(4))
        self.process.clflush(vaddr)
        miss = self.process.time_read(vaddr)
        return (hit + miss) // 2

    def pool_addresses(self) -> list[int]:
        return list(self.pool.pages())

    def _warm_tlb(self, vaddr: int) -> None:
        """Touch a *different cache line* of the same page.

        Re-arms the page's TLB entry without touching the cache set of
        the line being timed, so a timed load measures only LLC state.
        Real attacks do the same with adjacent-line reads.
        """
        self.process.read(vaddr + 64)

    def evicts(self, candidate_set: list[int], target: int) -> bool:
        """Does accessing ``candidate_set`` evict ``target``?"""
        self.process.read(target)
        for vaddr in candidate_set:
            self.process.read(vaddr)
        self._warm_tlb(target)
        return self.process.time_read(target) > self.miss_threshold

    def build_eviction_set(self, target: int, max_size: int = 16) -> list[int] | None:
        """Group-reduction eviction-set construction for ``target``.

        Starts from the whole pool and repeatedly removes one of
        ``ways + 1`` groups whose removal preserves eviction, down to
        the associativity.  Returns None if the pool cannot evict the
        target at all.
        """
        candidates = self.pool_addresses()
        if not self.evicts(candidates, target):
            return None
        while len(candidates) > max_size:
            group_count = max_size + 1
            group_size = -(-len(candidates) // group_count)
            reduced = False
            for start in range(0, len(candidates), group_size):
                trial = candidates[:start] + candidates[start + group_size:]
                if trial and self.evicts(trial, target):
                    candidates = trial
                    reduced = True
                    break
            if not reduced:
                # Cannot shrink further (measurement noise floor).
                break
        return candidates

    def prime(self, eviction_set: list[int]) -> None:
        for vaddr in eviction_set:
            self.process.read(vaddr)

    def probe(self, eviction_set: list[int]) -> int:
        """Return how many eviction-set accesses missed the LLC."""
        misses = 0
        for vaddr in eviction_set:
            self._warm_tlb(vaddr)
            if self.process.time_read(vaddr) > self.miss_threshold:
                misses += 1
        return misses
