"""Attack harness: environments, results and the attacker's contract.

Attackers play by architectural rules only: they own processes, they
read/write/fetch/flush/hammer *their own* virtual addresses, and they
read the clock.  They never inspect kernel state (page tables, frame
numbers, engine internals) — anything an attack needs it must infer
through timing or content, exactly as on real hardware.  The *harness*
may use kernel state afterwards to verify ground truth.

Every information-disclosure attack is evaluated as a distinguishing
game: the attacker holds one candidate page whose content duplicates a
victim secret and one that does not, and wins iff her verdicts differ
in the right direction.  Under an SB-enforcing engine both candidates
behave identically, so the game is unwinnable.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.vusion import Vusion
from repro.fusion.registry import attack_engine_factories
from repro.fusion.wpf import WindowsPageFusion
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.params import MachineSpec, MS, SECOND

#: Engine construction lives in :mod:`repro.fusion.registry`; this is
#: the harness's private name -> zero-arg factory table.
_engine_factories = attack_engine_factories()


@dataclass
class AttackResult:
    """Outcome of one attack run against one engine."""

    attack: str
    target: str
    success: bool
    mitigated_by: str
    evidence: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "SUCCEEDED" if self.success else "defeated"
        return f"{self.attack} vs {self.target}: {verdict}"


class AttackEnvironment:
    """A co-hosting scenario: one attacker, one victim, one engine.

    The attacker process is created *first* so its madvised regions are
    earlier in the scan order — KSM then keeps the first-scanned
    party's frame when promoting an unstable match, which is the
    ordering real Flip Feng Shui engineers by starting the attacker VM
    before the victim's page appears.
    """

    def __init__(
        self,
        engine_name: str,
        frames: int = 16384,
        seed: int = 1017,
        thp_fault: bool = False,
        row_vulnerability: float | None = None,
    ) -> None:
        if engine_name not in _engine_factories:
            raise ValueError(f"unknown engine {engine_name!r}")
        self.engine_name = engine_name
        self.kernel = Kernel(
            MachineSpec(total_frames=frames, seed=seed),
            thp_fault_enabled=thp_fault,
        )
        if row_vulnerability is not None:
            self.kernel.rowhammer.row_vulnerability = row_vulnerability
        self.engine = _engine_factories[engine_name]()
        if self.engine is not None:
            self.kernel.attach_fusion(self.engine)
        self.attacker: Process = self.kernel.create_process("attacker")
        self.victim: Process = self.kernel.create_process("victim")
        self.rng = random.Random(seed ^ 0x5EED)

    # ------------------------------------------------------------------
    # Time control
    # ------------------------------------------------------------------
    def wait_for_fusion(self, passes: int = 1) -> None:
        """Give the engine enough time to complete ``passes`` rounds."""
        if self.engine is None:
            self.kernel.idle(passes * SECOND)
            return
        if isinstance(self.engine, WindowsPageFusion):
            for _ in range(passes):
                self.kernel.idle(self.engine.config.pass_interval + SECOND)
            return
        target = self.engine.stats.full_scans + passes
        for _ in range(passes * 400):
            if self.engine.stats.full_scans >= target:
                break
            self.kernel.idle(100 * MS)
        # VUsion additionally needs the idle period to elapse; pad.
        if isinstance(self.engine, Vusion):
            self.kernel.idle(self.engine.wse.min_idle_ns * 2)
            target = self.engine.stats.full_scans + 2
            for _ in range(800):
                if self.engine.stats.full_scans >= target:
                    break
                self.kernel.idle(100 * MS)


class Attack(ABC):
    """One attack from Table 1."""

    name = "attack"
    mitigated_by = "SB"
    #: The published insecure target (Table 1's "vs target" column).
    default_target = "ksm"
    #: :class:`AttackEnvironment` keyword defaults this attack needs
    #: (machine size, THP faults, DRAM vulnerability).  The Table 1
    #: driver and the CLI both read these — there is no other copy.
    env_defaults: dict = {}
    #: Part of the paper's Table 1 matrix (the covert channel is not).
    in_table1 = True

    @classmethod
    def make_environment(cls, engine_name: str | None = None,
                         seed: int = 1017, **overrides) -> AttackEnvironment:
        """Build this attack's environment against ``engine_name``."""
        kwargs = dict(cls.env_defaults)
        kwargs.update(overrides)
        return AttackEnvironment(engine_name or cls.default_target,
                                 seed=seed, **kwargs)

    def __init__(self, env: AttackEnvironment) -> None:
        self.env = env

    @abstractmethod
    def run(self) -> AttackResult:
        """Execute the attack and report whether it succeeded."""

    def result(self, success: bool, **evidence) -> AttackResult:
        return AttackResult(
            attack=self.name,
            target=self.env.engine_name,
            success=success,
            mitigated_by=self.mitigated_by,
            evidence=evidence,
        )
