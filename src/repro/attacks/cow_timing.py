"""The classic copy-on-write timing side channel (§4.1, Fig. 5).

The attacker crafts a page whose content she *guesses* exists in the
victim, waits for fusion, then times a write.  If the page merged, the
write takes a copy-on-write fault and is measurably slower than a
plain store.  The attack is run as a distinguishing game between a
correct and an incorrect guess.

Against VUsion, every candidate page — merged or fake-merged — takes
an identical copy-on-access fault, so both guesses look the same and
the game is lost (SB).
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.attacks.primitives import calibrate_write_baseline
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE


class CowTimingAttack(Attack):
    """Unmerge-based information disclosure via write timing."""

    name = "cow-timing"
    mitigated_by = "SB"

    def __init__(self, env, samples: int = 8) -> None:
        super().__init__(env)
        self.samples = samples

    def run(self) -> AttackResult:
        env = self.env
        secret = tagged_content("victim-secret", env.kernel.spec.seed)

        # Attacker sprays her guesses first (earlier in scan order).
        guesses = env.attacker.mmap(2 * self.samples, name="guesses", mergeable=True)
        for index in range(self.samples):
            correct = guesses.start + 2 * index * PAGE_SIZE
            wrong = guesses.start + (2 * index + 1) * PAGE_SIZE
            env.attacker.write(correct, secret)
            env.attacker.write(wrong, tagged_content("wrong-guess", index))

        # The victim holds the secret on idle pages.
        victim_vma = env.victim.mmap(self.samples, name="secret", mergeable=True)
        for index in range(self.samples):
            env.victim.write(victim_vma.start + index * PAGE_SIZE, secret)

        env.wait_for_fusion(passes=3)

        baseline = calibrate_write_baseline(env.attacker)
        threshold = 3 * baseline
        correct_times = []
        wrong_times = []
        for index in range(self.samples):
            correct = guesses.start + 2 * index * PAGE_SIZE
            wrong = guesses.start + (2 * index + 1) * PAGE_SIZE
            correct_times.append(env.attacker.rewrite(correct).latency)
            wrong_times.append(env.attacker.rewrite(wrong).latency)

        slow_correct = sum(1 for t in correct_times if t > threshold)
        slow_wrong = sum(1 for t in wrong_times if t > threshold)
        # The attacker learns the secret only if correct guesses are
        # distinguishably slower than wrong ones.
        success = slow_correct > self.samples // 2 and slow_wrong <= self.samples // 4
        return self.result(
            success,
            baseline_ns=baseline,
            correct_times=correct_times,
            wrong_times=wrong_times,
            slow_correct=slow_correct,
            slow_wrong=slow_wrong,
        )
