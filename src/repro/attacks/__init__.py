"""The six attacks of the paper's Table 1, runnable against any engine.

| Attack                      | Abused mechanism | Mitigated by |
|-----------------------------|------------------|--------------|
| Copy-on-write timing        | Unmerge          | SB           |
| Page color (new)            | Merge            | SB           |
| Page sharing (new)          | Merge            | SB           |
| Translation (new)           | Merge            | SB           |
| Flip Feng Shui              | Merge            | RA           |
| Reuse-based Flip Feng Shui  | Reuse            | RA           |
"""

from repro.attacks.base import Attack, AttackEnvironment, AttackResult
from repro.attacks.covert_channel import DedupCovertChannel
from repro.attacks.cow_timing import CowTimingAttack
from repro.attacks.flip_feng_shui import FlipFengShuiAttack
from repro.attacks.page_color import PageColorAttack
from repro.attacks.page_sharing import PageSharingAttack
from repro.attacks.prefetch import PrefetchAttack
from repro.attacks.reuse_ffs import ReuseFlipFengShuiAttack
from repro.attacks.translation import TranslationAttack

ALL_ATTACKS = [
    CowTimingAttack,
    PageColorAttack,
    PageSharingAttack,
    TranslationAttack,
    FlipFengShuiAttack,
    ReuseFlipFengShuiAttack,
    PrefetchAttack,
    DedupCovertChannel,
]

__all__ = [
    "ALL_ATTACKS",
    "Attack",
    "AttackEnvironment",
    "AttackResult",
    "CowTimingAttack",
    "DedupCovertChannel",
    "FlipFengShuiAttack",
    "PageColorAttack",
    "PageSharingAttack",
    "PrefetchAttack",
    "ReuseFlipFengShuiAttack",
    "TranslationAttack",
]
