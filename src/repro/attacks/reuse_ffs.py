"""Reuse-based Flip Feng Shui against WPF-style allocators (§5.2, Fig. 3).

WPF defeats classic FFS by backing merges with *new* frames — but its
linear end-of-memory allocator reuses the same frames pass after pass,
in content-hash order.  The attacker therefore:

1. writes pair-wise duplicates and waits for a pass: her pages fuse
   onto predictable, contiguous top-of-memory frames (rank ``k`` by
   content hash → frame ``top - k``);
2. templates by double-side-hammering *through her own fused pages*
   (reads are allowed) and spots flips by re-reading her memory;
3. unmerges everything (copy-on-write), then crafts a new content set
   — fillers plus the victim's known sensitive content — whose hash
   order places the sensitive content exactly at the vulnerable rank;
4. after the next pass the shared frame sits on the templated cell;
   hammering the neighbouring ranks corrupts the victim's data.

Under VUsion the fused frames are drawn from the randomized pool: the
rank→frame prediction fails, templating through fused pages triggers
copy-on-access onto fresh random frames, and the victim's data
survives (RA).
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.mem.content import PageContent, content_digest
from repro.params import PAGE_SIZE


class ReuseFlipFengShuiAttack(Attack):
    """Reuse-based physical memory massaging + Rowhammer."""

    name = "reuse-ffs"
    mitigated_by = "RA"
    default_target = "wpf"
    env_defaults = {"row_vulnerability": 0.3}

    #: Number of pair-wise duplicated contents (= expected fused nodes).
    PAIRS = 64
    #: Rank distance whose frames sit two DRAM row-strides apart.
    AGGRESSOR_RANK_DELTA = 16

    def run(self) -> AttackResult:
        env = self.env
        attacker = env.attacker
        rng = env.rng
        secret = b"victim-rsa-key:" + rng.randbytes(16) + b"\x01"

        # The victim's sensitive page exists (idle) from the start.
        victim_vma = env.victim.mmap(1, name="rffs-victim", mergeable=True)
        env.victim.write(victim_vma.start, secret)

        region = attacker.mmap(
            2 * self.PAIRS, name="rffs", mergeable=True, thp_allowed=False
        )

        # -- Phase 1: massage pair-wise duplicates into fused frames ----
        contents = [
            b"rffs:" + bytes([index]) + rng.randbytes(12) + b"\x01"
            for index in range(self.PAIRS)
        ]
        self._write_pairs(region, contents)
        env.wait_for_fusion(passes=3)

        # -- Phase 2: template through the fused pages -------------------
        rank_of = self._rank_map(contents)
        va_of_rank = {
            rank_of[index]: region.start + 2 * index * PAGE_SIZE
            for index in range(self.PAIRS)
        }
        delta = self.AGGRESSOR_RANK_DELTA
        for rank in range(self.PAIRS - 2 * delta):
            attacker.hammer(va_of_rank[rank], va_of_rank[rank + 2 * delta], rounds=2)
        flipped_ranks = [
            rank_of[index]
            for index in range(self.PAIRS)
            if attacker.read(region.start + 2 * index * PAGE_SIZE).content
            != contents[index]
        ]
        usable = [r for r in flipped_ranks if delta <= r < self.PAIRS - delta]
        if not usable:
            return self.result(False, error="no exploitable flips found")
        target_rank = usable[0]

        # -- Phase 3: unmerge and craft the hash-ordered layout ----------
        fillers = self._craft_fillers(secret, target_rank, rng)
        layout = fillers[:target_rank] + [secret] + fillers[target_rank:]
        self._write_pairs(region, layout)  # CoW-unmerges phase-1 state
        env.wait_for_fusion(passes=3)

        # -- Phase 4: corrupt the victim's fused page --------------------
        new_rank_of = self._rank_map(layout)
        new_va = {
            new_rank_of[index]: region.start + 2 * index * PAGE_SIZE
            for index in range(self.PAIRS)
        }
        attacker.hammer(
            new_va[target_rank - delta], new_va[target_rank + delta], rounds=4
        )

        seen = env.victim.read(victim_vma.start).content
        success = seen != secret
        return self.result(
            success,
            flips_found=len(flipped_ranks),
            target_rank=target_rank,
            corrupted=success,
        )

    # ------------------------------------------------------------------
    # Helpers (all attacker-computable)
    # ------------------------------------------------------------------
    def _write_pairs(self, region, contents: list[PageContent]) -> None:
        for index, content in enumerate(contents):
            base = region.start + 2 * index * PAGE_SIZE
            self.env.attacker.write(base, content)
            self.env.attacker.write(base + PAGE_SIZE, content)

    @staticmethod
    def _rank_map(contents: list[PageContent]) -> dict[int, int]:
        """index -> hash rank (the allocator's frame order)."""
        order = sorted(range(len(contents)), key=lambda i: content_digest(contents[i]))
        return {index: rank for rank, index in enumerate(order)}

    def _craft_fillers(self, secret: PageContent, target_rank: int, rng):
        """Generate fillers whose digests sandwich the secret at rank.

        ``target_rank`` fillers hash below the secret and the rest
        above — pure content crafting, no system knowledge needed.
        """
        secret_digest = content_digest(secret)
        below: list[PageContent] = []
        above: list[PageContent] = []
        want_below = target_rank
        want_above = self.PAIRS - 1 - target_rank
        while len(below) < want_below or len(above) < want_above:
            candidate = b"fill:" + rng.randbytes(14) + b"\x01"
            digest = content_digest(candidate)
            if digest < secret_digest and len(below) < want_below:
                below.append(candidate)
            elif digest > secret_digest and len(above) < want_above:
                above.append(candidate)
        return below + above
