"""The new page-sharing detection attack (§5.1): FLUSH+RELOAD on merge.

If the attacker's guess page merged with the victim's secret page they
share one physical frame.  The attacker flushes her copy from the LLC,
induces victim activity, then reloads: a *fast* reload means the
victim's access fetched the shared frame — a merge happened — without
the attacker ever writing.

Under VUsion no access to a fused page is possible without an
unmerging copy-on-access (and CD-bit pages cannot even be prefetched
into the cache), so the reload is slow for correct and wrong guesses
alike.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE


class PageSharingAttack(Attack):
    """Merge-based disclosure via shared-frame cache hits."""

    name = "page-sharing"
    mitigated_by = "SB"

    def __init__(self, env, samples: int = 6) -> None:
        super().__init__(env)
        self.samples = samples

    def run(self) -> AttackResult:
        env = self.env
        secret = tagged_content("fr-secret", env.kernel.spec.seed)

        guesses = env.attacker.mmap(2 * self.samples, name="fr-guess", mergeable=True)
        for index in range(self.samples):
            env.attacker.write(guesses.start + 2 * index * PAGE_SIZE, secret)
            env.attacker.write(
                guesses.start + (2 * index + 1) * PAGE_SIZE,
                tagged_content("fr-wrong", index),
            )
        victim_vma = env.victim.mmap(self.samples, name="fr-victim", mergeable=True)
        for index in range(self.samples):
            env.victim.write(victim_vma.start + index * PAGE_SIZE, secret)

        env.wait_for_fusion(passes=3)

        hits_correct = 0
        hits_wrong = 0
        for index in range(self.samples):
            correct = guesses.start + 2 * index * PAGE_SIZE
            wrong = guesses.start + (2 * index + 1) * PAGE_SIZE
            victim_page = victim_vma.start + index * PAGE_SIZE

            env.attacker.clflush(correct)
            env.victim.read(victim_page)  # induced victim activity
            if env.attacker.read(correct).llc_hit:
                hits_correct += 1

            env.attacker.clflush(wrong)
            env.victim.read(victim_page)
            if env.attacker.read(wrong).llc_hit:
                hits_wrong += 1

        success = hits_correct > self.samples // 2 and hits_wrong <= self.samples // 4
        return self.result(
            success,
            hits_correct=hits_correct,
            hits_wrong=hits_wrong,
            samples=self.samples,
        )
