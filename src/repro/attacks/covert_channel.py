"""A cross-VM covert channel over page fusion (§10.1, refs [25,34,43]).

Two co-operating parties that may not communicate directly share data
through the deduplication side channel: for each bit position they
agree on a page content; the sender writes that content into its own
memory to transmit a 1 (or leaves it absent for a 0); after a fusion
pass the receiver writes to its own copy of each codeword page and
decodes the bit from the latency — slow copy-on-write means the page
was merged, hence the sender had written it.

Under VUsion every receiver probe takes an identical copy-on-access
fault whether the codeword was merged or fake merged, so the decoded
message is noise and the channel's capacity collapses to zero.
"""

from __future__ import annotations

import random

from repro.attacks.base import Attack, AttackResult
from repro.attacks.primitives import calibrate_write_baseline
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE, SECOND


class DedupCovertChannel(Attack):
    """Sender/receiver covert channel keyed on merge timing."""

    name = "covert-channel"
    mitigated_by = "SB"
    in_table1 = False

    def __init__(self, env, message_bits: int = 16, seed: int = 99) -> None:
        super().__init__(env)
        self.message_bits = message_bits
        self.rng = random.Random(seed)

    def _codeword(self, bit_index: int) -> bytes:
        """The content both parties derive for one bit position."""
        return tagged_content("covert-codeword", self.env.kernel.spec.seed, bit_index)

    def run(self) -> AttackResult:
        env = self.env
        sender = env.victim      # roles are symmetric; reuse the pair
        receiver = env.attacker
        message = [self.rng.randrange(2) for _ in range(self.message_bits)]

        # Sender encodes: write the codeword for every 1-bit.
        sender_vma = sender.mmap(self.message_bits, name="cc-send", mergeable=True)
        for index, bit in enumerate(message):
            if bit:
                sender.write(sender_vma.start + index * PAGE_SIZE, self._codeword(index))
            else:
                sender.write(
                    sender_vma.start + index * PAGE_SIZE,
                    tagged_content("cc-filler", index),
                )

        # Receiver stages its probe copies of every codeword.
        receiver_vma = receiver.mmap(
            self.message_bits, name="cc-recv", mergeable=True
        )
        for index in range(self.message_bits):
            receiver.write(
                receiver_vma.start + index * PAGE_SIZE, self._codeword(index)
            )

        env.wait_for_fusion(passes=3)

        # Decode: slow write = merged = the sender transmitted a 1.
        baseline = calibrate_write_baseline(receiver)
        start = env.kernel.clock.now
        decoded = []
        for index in range(self.message_bits):
            latency = receiver.rewrite(
                receiver_vma.start + index * PAGE_SIZE
            ).latency
            decoded.append(1 if latency > 3 * baseline else 0)
        elapsed = max(1, env.kernel.clock.now - start)

        correct = sum(1 for sent, got in zip(message, decoded) if sent == got)
        success = decoded == message
        return self.result(
            success,
            message=message,
            decoded=decoded,
            correct_bits=correct,
            total_bits=self.message_bits,
            decode_bits_per_s=self.message_bits * SECOND / elapsed,
        )
