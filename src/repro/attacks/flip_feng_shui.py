"""Classic Flip Feng Shui against KSM-style merging (§4.2).

1. **Template**: the attacker allocates a transparent huge page (512
   physically-contiguous frames), double-side-hammers inside it and
   scans her own memory for bit flips.
2. **Massage**: she writes the victim's (known) sensitive content onto
   a vulnerable subpage.  KSM backs the merge with the first-scanned
   party's frame — hers.
3. **Exploit**: she hammers the aggressor subpages around the
   vulnerable frame.  The flip lands in the *shared* frame, corrupting
   the victim's view of its own data without a single write.

Against VUsion the merged copy lives on a frame drawn from the
randomized pool — neither the templated frame nor anything adjacent to
the attacker's aggressors — so the victim's data survives (RA).
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.attacks.primitives import write_unique
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE, PAGES_PER_HUGE_PAGE


class FlipFengShuiAttack(Attack):
    """Merge-based physical memory massaging + Rowhammer."""

    name = "flip-feng-shui"
    mitigated_by = "RA"
    env_defaults = {"thp_fault": True, "frames": 32768, "row_vulnerability": 0.3}

    #: Aggressor distance (in subpages) for a double-sided pair: two
    #: row-strides of the default DRAM geometry.
    AGGRESSOR_STRIDE = 32

    def run(self) -> AttackResult:
        env = self.env
        if not env.kernel.thp_fault_enabled:
            return self.result(False, error="environment lacks THP support")
        attacker = env.attacker
        secret = tagged_content("ffs-victim-key", env.kernel.spec.seed)

        # -- Template ---------------------------------------------------
        region = attacker.mmap(PAGES_PER_HUGE_PAGE, name="ffs", mergeable=True)
        written = write_unique(attacker, region, env.rng, tag="ffs")
        flips = self._template(region, written)
        if not flips:
            return self.result(False, error="no exploitable flips found")
        victim_subpage = flips[0]

        # -- Massage ----------------------------------------------------
        attacker.write(region.start + victim_subpage * PAGE_SIZE, secret)
        env.wait_for_fusion(passes=2)  # attacker's copy enters the trees
        victim_vma = env.victim.mmap(1, name="ffs-victim", mergeable=True)
        env.victim.write(victim_vma.start, secret)
        env.wait_for_fusion(passes=3)  # the merge happens

        merged = (
            env.victim.address_space.page_table.walk(victim_vma.start).pte.fused
        )

        # -- Exploit ----------------------------------------------------
        aggr_low = region.start + (victim_subpage - 16) * PAGE_SIZE
        aggr_high = region.start + (victim_subpage + 16) * PAGE_SIZE
        attacker.hammer(aggr_low, aggr_high, rounds=4)

        seen = env.victim.read(victim_vma.start).content
        success = seen != secret
        return self.result(
            success,
            merged=merged,
            victim_subpage=victim_subpage,
            flips_found=len(flips),
            corrupted=success,
        )

    def _template(self, region, written) -> list[int]:
        """Hammer inside the THP; return subpages with observed flips.

        Only flips with both aggressor subpages inside the region are
        usable later, and the attacker verifies each flip by re-reading
        her own memory and comparing against what she wrote.
        """
        attacker = self.env.attacker
        stride = self.AGGRESSOR_STRIDE
        for start in range(0, PAGES_PER_HUGE_PAGE - stride, stride // 2):
            attacker.hammer(
                region.start + start * PAGE_SIZE,
                region.start + (start + stride) * PAGE_SIZE,
                rounds=2,
            )
        flips = []
        for index in range(PAGES_PER_HUGE_PAGE):
            content = attacker.read(region.start + index * PAGE_SIZE).content
            if content != written[index] and 16 <= index < PAGES_PER_HUGE_PAGE - 16:
                flips.append(index)
        return flips
