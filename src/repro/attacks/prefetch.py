"""Prefetch-based sharing detection (the §9.1 prefetch side channel).

The x86 ``prefetch`` instruction loads a line into the cache without
access-permission checks and without faulting (Gruss et al., CCS'16).
An attacker can therefore probe the cache state of a page she cannot
read:

1. induce the victim to touch its secret page — under VUsion this is a
   copy-on-access whose kernel copy pulls the *shared source frame*
   into the LLC; under KSM it is a plain read of the shared frame;
2. prefetch her own candidate page and time it: a fast (cached)
   prefetch means her candidate is backed by the very frame the victim
   just touched — a merge, detected without a single fault on the
   candidate.

VUsion defeats this by setting the Caching-Disabled bit on fused PTEs:
the prefetch is silently dropped in constant time, so correct and
wrong guesses are indistinguishable.  The ``vusion-nocd`` ablation
re-opens the channel.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE


class PrefetchAttack(Attack):
    """Merge detection via permission-less prefetch timing."""

    name = "prefetch-sharing"
    mitigated_by = "SB"
    env_defaults = {"frames": 32768}

    def __init__(self, env, samples: int = 6, thrash_pages: int = 4096) -> None:
        super().__init__(env)
        self.samples = samples
        self.thrash_pages = thrash_pages
        self._thrash_vma = None

    def _thrash(self) -> None:
        """Evict stale lines with the attacker's own cache pressure.

        Touching ``thrash_pages`` of her own pages (32 per page color)
        cycles every leading-line cache set past its associativity, so
        any previously-cached candidate line is gone before the next
        measurement.
        """
        attacker = self.env.attacker
        if self._thrash_vma is None:
            self._thrash_vma = attacker.mmap(
                self.thrash_pages, name="pf-thrash", mergeable=False
            )
            for index in range(self.thrash_pages):
                attacker.write(
                    self._thrash_vma.start + index * PAGE_SIZE,
                    bytes([1 + index % 250]),
                )
            return
        for vaddr in self._thrash_vma.pages():
            attacker.read(vaddr)

    def _calibrate_threshold(self) -> int:
        """Midpoint between a cached and an uncached prefetch."""
        attacker = self.env.attacker
        calib = attacker.mmap(1, name="pf-calib", mergeable=False)
        attacker.write(calib.start, b"calib\x01")
        attacker.read(calib.start)
        hit = attacker.prefetch(calib.start).latency
        attacker.clflush(calib.start)
        miss = attacker.prefetch(calib.start).latency
        return (hit + miss) // 2

    def run(self) -> AttackResult:
        env = self.env
        secrets = [
            tagged_content("pf-secret", env.kernel.spec.seed, index)
            for index in range(self.samples)
        ]
        guesses = env.attacker.mmap(
            2 * self.samples, name="pf-guess", mergeable=True
        )
        victim_vma = env.victim.mmap(
            2 * self.samples, name="pf-victim", mergeable=True
        )
        for index, secret in enumerate(secrets):
            env.attacker.write(guesses.start + 2 * index * PAGE_SIZE, secret)
            env.attacker.write(
                guesses.start + (2 * index + 1) * PAGE_SIZE,
                tagged_content("pf-wrong", index),
            )
            # Two victim copies of each secret: each measurement gets a
            # fresh victim touch.
            env.victim.write(victim_vma.start + 2 * index * PAGE_SIZE, secret)
            env.victim.write(victim_vma.start + (2 * index + 1) * PAGE_SIZE, secret)

        env.wait_for_fusion(passes=3)
        threshold = self._calibrate_threshold()

        hits_correct = 0
        hits_wrong = 0
        for index in range(self.samples):
            correct = guesses.start + 2 * index * PAGE_SIZE
            wrong = guesses.start + (2 * index + 1) * PAGE_SIZE
            # Clean cache state, victim activity, timed prefetch.
            self._thrash()
            env.victim.read(victim_vma.start + 2 * index * PAGE_SIZE)
            if env.attacker.prefetch(correct).latency < threshold:
                hits_correct += 1
            self._thrash()
            env.victim.read(victim_vma.start + (2 * index + 1) * PAGE_SIZE)
            if env.attacker.prefetch(wrong).latency < threshold:
                hits_wrong += 1

        success = (
            hits_correct > self.samples // 2 and hits_wrong <= self.samples // 4
        )
        return self.result(
            success,
            hits_correct=hits_correct,
            hits_wrong=hits_wrong,
            threshold_ns=threshold,
        )
