"""The new translation attack (§5.1): detecting THP splits via walks.

KSM breaks a transparent huge page when it merges a 4 KiB page inside
it.  The split adds a page-table level to every neighbouring subpage's
translation, which an attacker measures (AnC-style) by evicting the
TLB and timing a warm-cache read: 4 walk levels instead of 3.

The attacker plants a guess inside one THP and a non-matching filler
in another; if only the guess THP's neighbours slow down, the guess
content exists in the victim.

VUsion breaks *every* idle THP before considering it for fusion, so a
split reveals only idleness — both regions split, and the game is
lost.
"""

from __future__ import annotations

import statistics

from repro.attacks.base import Attack, AttackResult
from repro.attacks.primitives import TlbEvictionSet, write_unique
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE, PAGES_PER_HUGE_PAGE


class TranslationAttack(Attack):
    """Merge-based disclosure via MMU translation changes."""

    name = "translation"
    mitigated_by = "SB"
    env_defaults = {"thp_fault": True, "frames": 32768}

    #: Subpage that carries the guess content.
    GUESS_INDEX = 9

    def __init__(self, env, repeats: int = 7) -> None:
        super().__init__(env)
        self.repeats = repeats

    def _timed_neighbour_read(self, tlb_evictor: TlbEvictionSet, vaddr: int) -> int:
        """Median latency of a TLB-cold, cache-warm read of ``vaddr``."""
        times = []
        for _ in range(self.repeats):
            self.env.attacker.read(vaddr)  # warm the cache line (and page)
            tlb_evictor.evict()
            times.append(self.env.attacker.time_read(vaddr))
        return int(statistics.median(times))

    def _make_thp_region(self, name: str):
        vma = self.env.attacker.mmap(
            PAGES_PER_HUGE_PAGE, name=name, mergeable=True
        )
        write_unique(self.env.attacker, vma, self.env.rng, tag=name)
        return vma

    def run(self) -> AttackResult:
        env = self.env
        if not env.kernel.thp_fault_enabled:
            return self.result(False, error="environment lacks THP support")
        secret = tagged_content("thp-secret", env.kernel.spec.seed)

        region_true = self._make_thp_region("thp-true")
        region_false = self._make_thp_region("thp-false")
        env.attacker.write(
            region_true.start + self.GUESS_INDEX * PAGE_SIZE, secret
        )

        victim_vma = env.victim.mmap(1, name="thp-victim", mergeable=True)
        env.victim.write(victim_vma.start, secret)

        tlb_evictor = TlbEvictionSet(env.attacker)
        env.wait_for_fusion(passes=3)

        neighbour_true = region_true.start + (self.GUESS_INDEX + 1) * PAGE_SIZE
        neighbour_false = region_false.start + (self.GUESS_INDEX + 1) * PAGE_SIZE
        t_true = self._timed_neighbour_read(tlb_evictor, neighbour_true)
        t_false = self._timed_neighbour_read(tlb_evictor, neighbour_false)

        walk_step = env.kernel.costs.page_walk_per_level
        # One extra translation level on the guess region only.
        success = t_true - t_false >= walk_step // 2
        return self.result(
            success,
            t_true=t_true,
            t_false=t_false,
            walk_step=walk_step,
        )
