"""The new page-color attack (§5.1): PRIME+PROBE merge detection.

The attacker learns the cache color of her candidate page by building
an eviction set for it, waits for a fusion pass, and re-tests: if the
page no longer conflicts with its old eviction set, its physical frame
— and hence its color — changed, revealing a merge.  The attack only
*reads*; it is effective against engines that back merges with new
frames (WPF), succeeding with probability (colors-1)/colors.

VUsion moves *every* scanned candidate to a new random frame (merged
or fake merged) and unmerges on the attacker's first read, so the
color changes regardless of merge status: the distinguishing game is
lost.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.attacks.primitives import CacheProbe
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE


class PageColorAttack(Attack):
    """Merge-based disclosure via physical-address (color) changes."""

    name = "page-color"
    mitigated_by = "SB"
    default_target = "wpf"

    def __init__(self, env, pool_pages: int = 4096) -> None:
        super().__init__(env)
        self.pool_pages = pool_pages

    def _color_changed(self, probe: CacheProbe, eviction_set, target: int) -> bool:
        """PRIME+PROBE: did the target leave its old cache set?"""
        probe.prime(eviction_set)
        self.env.attacker.read(target)
        misses = probe.probe(eviction_set)
        # If the target still maps to this set, its access evicted one
        # of the 16 primed lines -> at least one probe miss.
        return misses == 0

    def run(self) -> AttackResult:
        env = self.env
        secret = tagged_content("color-secret", env.kernel.spec.seed)

        candidates = env.attacker.mmap(2, name="color-cand", mergeable=True)
        correct = candidates.start
        wrong = candidates.start + PAGE_SIZE
        env.attacker.write(correct, secret)
        env.attacker.write(wrong, tagged_content("color-wrong"))

        victim_vma = env.victim.mmap(1, name="color-victim", mergeable=True)
        env.victim.write(victim_vma.start, secret)

        probe = CacheProbe(env.attacker, pool_pages=self.pool_pages)
        es_correct = probe.build_eviction_set(correct)
        es_wrong = probe.build_eviction_set(wrong)
        if es_correct is None or es_wrong is None:
            return self.result(False, error="could not build eviction sets")
        # Sanity: before fusion, both pages still conflict with their sets.
        baseline_correct = self._color_changed(probe, es_correct, correct)
        baseline_wrong = self._color_changed(probe, es_wrong, wrong)

        env.wait_for_fusion(passes=3)

        moved_correct = self._color_changed(probe, es_correct, correct)
        moved_wrong = self._color_changed(probe, es_wrong, wrong)
        success = (
            not baseline_correct
            and not baseline_wrong
            and moved_correct
            and not moved_wrong
        )
        return self.result(
            success,
            es_sizes=(len(es_correct), len(es_wrong)),
            baseline=(baseline_correct, baseline_wrong),
            moved_correct=moved_correct,
            moved_wrong=moved_wrong,
        )
