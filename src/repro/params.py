"""Central architecture and cost parameters for the simulated machine.

The defaults mirror the paper's testbed (Intel Xeon E3-1240 v5: 8 MiB
16-way LLC with 8192 sets and 128 page colors, 4 KiB base pages, 2 MiB
transparent huge pages) and the default KSM configuration on Linux
4.10 (scan N=100 pages every T=20 ms).

All latencies are expressed in simulated nanoseconds and are charged by
the MMU/kernel on every memory operation.  The *relative* magnitudes are
what matter for reproducing the paper's side channels and overhead
shapes; the absolute values are calibrated, not measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Size of a base page in bytes.
PAGE_SIZE = 4096

#: Size of a transparent huge page in bytes (x86-64: 2 MiB).
HUGE_PAGE_SIZE = 2 * 1024 * 1024

#: Number of base pages per huge page (x86-64: 512).
PAGES_PER_HUGE_PAGE = HUGE_PAGE_SIZE // PAGE_SIZE

#: Bytes per cache line.
CACHE_LINE_SIZE = 64

#: Cache lines per 4 KiB page.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE

# Convenient time units (simulated nanoseconds).
NS = 1
US = 1000 * NS
MS = 1000 * US
SECOND = 1000 * MS
MINUTE = 60 * SECOND


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of the shared last-level cache.

    The defaults model the Xeon E3-1240 v5 used in the paper: 8 MiB,
    16 ways, 64-byte lines -> 8192 sets and ``8192 / 64 = 128`` page
    colors.
    """

    size_bytes: int = 8 * 1024 * 1024
    ways: int = 16
    line_size: int = CACHE_LINE_SIZE

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def num_colors(self) -> int:
        """Number of distinct page colors (sets spanned per page)."""
        return self.num_sets // LINES_PER_PAGE


@dataclass(frozen=True)
class TlbGeometry:
    """Geometry of the per-process data TLB."""

    entries: int = 64
    ways: int = 4

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class DramGeometry:
    """DRAM organisation used for Rowhammer modelling.

    A row spans ``pages_per_row`` physically-consecutive base pages; the
    bank interleaves below the row index, so rows ``r`` and ``r + 1`` of
    the same bank back frames ``pages_per_row * banks`` apart.  This is
    the property the reuse-based Flip Feng Shui attack relies on:
    a large *contiguous* frame range contains many same-bank
    adjacent-row triples suitable for double-sided Rowhammer.
    """

    banks: int = 8
    pages_per_row: int = 2

    @property
    def row_stride_pages(self) -> int:
        """Frame-number distance between adjacent rows of one bank."""
        return self.banks * self.pages_per_row


@dataclass(frozen=True)
class CostModel:
    """Latency charged for each memory-system event (simulated ns).

    The side channels in the paper are latency *differences*:

    * copy-on-write / copy-on-access faults vs. plain stores (Figs 5/6),
    * LLC hit vs. DRAM access (PRIME+PROBE, FLUSH+RELOAD),
    * 3-level vs. 4-level page walks (translation/AnC attack),
    * DRAM row-buffer hit vs. miss.

    Any cost model preserving those orderings reproduces the attacks;
    these values keep the magnitudes roughly realistic.
    """

    # Core access path.
    register_op: int = 1
    llc_hit: int = 12
    dram_row_hit: int = 50
    dram_row_miss: int = 95
    uncached_access: int = 180

    # Address translation.
    tlb_hit: int = 1
    page_walk_per_level: int = 22

    # Kernel fault handling.
    fault_trap: int = 1400
    copy_page: int = 2600
    zero_page: int = 1800
    buddy_alloc: int = 260
    buddy_free: int = 310
    pool_alloc: int = 300
    deferred_free_enqueue: int = 45
    tlb_shootdown: int = 900

    # Fusion-engine bookkeeping (charged while the daemon scans).
    scan_page: int = 350
    checksum_page: int = 700
    tree_compare: int = 650
    pte_update: int = 150
    idle_probe: int = 60

    # Huge-page operations.
    thp_split: int = 9000
    thp_collapse: int = 250_000
    thp_copy: int = 180_000

    # Rowhammer.
    hammer_round: int = 120_000


@dataclass(frozen=True)
class FusionConfig:
    """Scanning configuration shared by KSM-style engines.

    Linux 4.10 defaults: ``pages_per_scan=100`` every
    ``scan_interval=20 ms`` (5000 pages/second).
    """

    pages_per_scan: int = 100
    scan_interval: int = 20 * MS


@dataclass(frozen=True)
class WpfConfig:
    """Windows Page Fusion configuration: full pass every 15 minutes."""

    pass_interval: int = 15 * MINUTE


@dataclass(frozen=True)
class VusionConfig:
    """VUsion-specific knobs on top of :class:`FusionConfig`.

    ``random_pool_frames`` reserves 128 MiB by default, providing 15
    bits of allocation entropy exactly as in the paper (2**15 frames of
    4 KiB each).  ``thp_active_threshold`` is the paper's ``n``: a huge
    page counts as *active* (and is conserved) when at least ``n`` of
    its 512 base pages are in the working set.
    """

    random_pool_frames: int = 2**15
    working_set_enabled: bool = True
    thp_enabled: bool = False
    thp_active_threshold: int = 1
    deferred_free_interval: int = 10 * MS
    #: Minimum time a page must stay untouched before it becomes a
    #: fusion candidate ("a period that can be controlled in VUsion",
    #: §7.2).  None selects 5 scan intervals.
    min_idle_ns: int | None = None

    # ------------------------------------------------------------------
    # Ablation switches for the §7.1 design decisions.  All default to
    # the secure setting; disabling any one re-opens a specific attack
    # (see tests/test_ablations.py and benchmarks/test_ablations.py).
    # ------------------------------------------------------------------
    #: Decision (ii): free frames via the background queue so merged
    #: and fake-merged copy-on-access paths execute identical work.
    deferred_free_enabled: bool = True
    #: Decision (iii): re-back every (fake-)merged page with a fresh
    #: random frame on each scan round.
    rerandomize_each_scan: bool = True
    #: Set the Caching-Disabled bit on fused PTEs, defeating
    #: prefetch-based side channels (§7.1/§9.1).
    cache_disable_enabled: bool = True


@dataclass(frozen=True)
class MachineSpec:
    """Full description of a simulated machine.

    ``total_frames`` defaults to a scaled-down host (256 MiB); the
    experiments size their machines explicitly relative to the VMs they
    boot.  The cache geometry is kept at full fidelity regardless of
    memory scale so page colors behave exactly as on the testbed.
    """

    total_frames: int = 65536
    cache: CacheGeometry = field(default_factory=CacheGeometry)
    tlb: TlbGeometry = field(default_factory=TlbGeometry)
    dram: DramGeometry = field(default_factory=DramGeometry)
    costs: CostModel = field(default_factory=CostModel)
    seed: int = 1017
    #: Cache per-frame content digests and replay unchanged scan work.
    #: Pure Python-level optimisation: simulated time and behaviour are
    #: identical either way (tests/test_fingerprint_determinism.py).
    fingerprint_enabled: bool = True
    #: Content backend for PhysicalMemory: "columnar" (hash-consed
    #: arena, the default) or "legacy" (one bytes object per frame,
    #: kept as the differential reference).  None defers to the
    #: REPRO_FRAME_STORE environment variable, then "columnar".
    #: Another pure representation choice: simulated time, merges and
    #: artifacts are byte-identical (tests/test_store_differential.py).
    frame_store: str | None = None
    #: Scan kernel serving batch frame queries (zero sweeps, duplicate
    #: grouping, digest sweeps): "batch" (vectorized over the columnar
    #: cid column — NumPy when installed, pure-``array`` fallback
    #: otherwise) or "scalar" (the per-frame reference loops).  None
    #: defers to the REPRO_SCAN_KERNEL environment variable, then
    #: "batch".  Like the store, a pure representation choice: clocks,
    #: ledgers and artifacts are byte-identical
    #: (tests/test_scan_kernel_differential.py).
    scan_kernel: str | None = None

    @property
    def total_bytes(self) -> int:
        return self.total_frames * PAGE_SIZE

    def scaled(self, total_frames: int) -> "MachineSpec":
        """Return a copy of this spec with a different memory size."""
        return replace(self, total_frames=total_frames)


DEFAULT_MACHINE = MachineSpec()
DEFAULT_FUSION = FusionConfig()
DEFAULT_WPF = WpfConfig()
DEFAULT_VUSION = VusionConfig()
