"""The SPEC CPU2006-like benchmark suite (Fig. 7).

One :class:`~repro.workloads.synthetic.BenchSpec` per SPEC CPU2006
component the paper plots, with memory sizes and access mixes chosen
to echo each benchmark's published character (mcf/lbm: large and
cache-hostile; povray/sjeng: small and compute-bound; etc.).
"""

from __future__ import annotations

from repro.workloads.synthetic import BenchSpec

SPEC_BENCHMARKS: list[BenchSpec] = [
    BenchSpec("perlbench", pages=384, reads_per_op=10, writes_per_op=4, skew=3.5),
    BenchSpec("bzip2", pages=512, reads_per_op=12, writes_per_op=6, skew=2.5),
    BenchSpec("gcc", pages=640, reads_per_op=14, writes_per_op=5, skew=3.0),
    BenchSpec("mcf", pages=1024, reads_per_op=16, writes_per_op=3, skew=1.6,
              cold_touch_rate=0.2),
    BenchSpec("milc", pages=768, reads_per_op=14, writes_per_op=4, skew=1.8,
              cold_touch_rate=0.15),
    BenchSpec("namd", pages=320, reads_per_op=12, writes_per_op=2, skew=4.0),
    BenchSpec("gobmk", pages=256, reads_per_op=10, writes_per_op=3, skew=4.0),
    BenchSpec("soplex", pages=640, reads_per_op=13, writes_per_op=4, skew=2.2),
    BenchSpec("povray", pages=192, reads_per_op=9, writes_per_op=2, skew=5.0),
    BenchSpec("hmmer", pages=256, reads_per_op=11, writes_per_op=3, skew=4.5),
    BenchSpec("sjeng", pages=224, reads_per_op=10, writes_per_op=3, skew=4.5),
    BenchSpec("libquantum", pages=512, reads_per_op=12, writes_per_op=2, skew=1.5,
              cold_touch_rate=0.25),
    BenchSpec("h264ref", pages=384, reads_per_op=12, writes_per_op=4, skew=3.0),
    BenchSpec("lbm", pages=896, reads_per_op=15, writes_per_op=6, skew=1.4,
              cold_touch_rate=0.3),
    BenchSpec("omnetpp", pages=512, reads_per_op=12, writes_per_op=4, skew=2.0),
    BenchSpec("astar", pages=448, reads_per_op=11, writes_per_op=3, skew=2.5),
    BenchSpec("sphinx3", pages=384, reads_per_op=12, writes_per_op=2, skew=2.8),
    BenchSpec("xalancbmk", pages=512, reads_per_op=13, writes_per_op=4, skew=3.2),
]
