"""A Postmark-like mail-server workload (Table 4).

Transactions create, read, append-to and delete small "files" living
in the guest page cache: heavy page-cache churn, the workload class
the paper says benefits most from fusion-friendly idle page-cache
pages while stressing the fault paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE
from repro.workloads.base import OperationStats, Workload
from repro.workloads.vm_image import GuestVm


@dataclass
class _MailFile:
    start_page: int
    pages: int
    generation: int = 0


class PostmarkWorkload(Workload):
    """File-transaction loop over a VM's page-cache region."""

    name = "postmark"

    def __init__(
        self,
        vm: GuestVm,
        initial_files: int = 48,
        file_pages: int = 4,
        compute_ns: int = 12_000,
        seed: int = 41,
    ) -> None:
        self.vm = vm
        self.process = vm.process
        self.rng = random.Random(seed ^ vm.process.pid)
        self.file_pages = file_pages
        self.compute_ns = compute_ns
        region = vm.region("page_cache")
        self.capacity = region.num_pages // file_pages
        self._free_slots = list(range(self.capacity))
        self.rng.shuffle(self._free_slots)
        self._files: dict[int, _MailFile] = {}
        self._next_id = 0
        for _ in range(min(initial_files, self.capacity)):
            self._create()

    # ------------------------------------------------------------------
    # File operations (each returns simulated latency)
    # ------------------------------------------------------------------
    def _page_addr(self, mail_file: _MailFile, index: int) -> int:
        region = self.vm.region("page_cache")
        return region.start + (mail_file.start_page + index) * PAGE_SIZE

    def _write_file(self, file_id: int, mail_file: _MailFile) -> int:
        latency = 0
        for index in range(mail_file.pages):
            latency += self.process.write(
                self._page_addr(mail_file, index),
                tagged_content(
                    "mail", self.process.name, file_id, mail_file.generation, index
                ),
            ).latency
        return latency

    def _create(self) -> int:
        if not self._free_slots:
            return 0
        slot = self._free_slots.pop()
        file_id = self._next_id
        self._next_id += 1
        mail_file = _MailFile(start_page=slot * self.file_pages, pages=self.file_pages)
        self._files[file_id] = mail_file
        return self._write_file(file_id, mail_file)

    def _delete(self) -> int:
        if not self._files:
            return 0
        file_id = self.rng.choice(list(self._files))
        mail_file = self._files.pop(file_id)
        self._free_slots.append(mail_file.start_page // self.file_pages)
        # Deleting zeroes the cached pages (the guest frees them).
        latency = 0
        for index in range(mail_file.pages):
            latency += self.process.write(self._page_addr(mail_file, index), b"").latency
        return latency

    def _read(self) -> int:
        if not self._files:
            return 0
        mail_file = self._files[self.rng.choice(list(self._files))]
        latency = 0
        for index in range(mail_file.pages):
            latency += self.process.read(self._page_addr(mail_file, index)).latency
        return latency

    def _append(self) -> int:
        if not self._files:
            return 0
        file_id = self.rng.choice(list(self._files))
        mail_file = self._files[file_id]
        mail_file.generation += 1
        return self.process.write(
            self._page_addr(mail_file, mail_file.pages - 1),
            tagged_content("mail", self.process.name, file_id,
                           mail_file.generation, "tail"),
        ).latency

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def transaction(self) -> int:
        """One Postmark transaction: a read or append, plus churn."""
        self.process.kernel.clock.advance(self.compute_ns)
        roll = self.rng.random()
        if roll < 0.4:
            latency = self._read()
        elif roll < 0.8:
            latency = self._append()
        elif roll < 0.9:
            latency = self._create()
        else:
            latency = self._delete()
        return self.compute_ns + latency

    def run(self, operations: int) -> OperationStats:
        stats = OperationStats(self.name)
        start = self.process.kernel.clock.now
        for _ in range(operations):
            stats.latencies.append(self.transaction())
            stats.operations += 1
        stats.simulated_ns = self.process.kernel.clock.now - start
        return stats
