"""Synthetic VM images with realistic cross-VM duplicate structure.

Two VMs booted from the same image hold byte-identical guest-kernel,
library/page-cache and stale-free pages in distinct physical frames —
the duplicate pools that page fusion harvests.  Region sizes follow the
paper's Table 3 breakdown of where fusion benefits come from: the
guest page cache (~52%) and the guest buddy allocator's free pages
(~38%, largely zeroed), with smaller kernel and "rest" contributions.

All regions are anonymous guest RAM from the host's point of view
(exactly the KVM situation KSM targets), tagged with their guest-side
role in ``vma.extra["guest_kind"]`` so experiments can classify merged
pages.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.mem.content import ZERO_PAGE, tagged_content
from repro.mmu.address_space import Vma
from repro.params import PAGE_SIZE


@dataclass(frozen=True)
class VmImageSpec:
    """Sizes (in pages) of one VM image's memory regions."""

    name: str
    distro: str
    kernel_pages: int = 128
    page_cache_pages: int = 768
    free_pages: int = 640
    app_pages: int = 256
    #: Fraction of guest-free pages holding zeros (rest: stale distro data).
    zero_free_fraction: float = 0.75

    @property
    def total_pages(self) -> int:
        return (
            self.kernel_pages
            + self.page_cache_pages
            + self.free_pages
            + self.app_pages
        )


#: A few standard distro images for homogeneous-cloud scenarios.
DISTRO_IMAGES = {
    "debian": VmImageSpec(name="debian", distro="debian-9"),
    "ubuntu": VmImageSpec(name="ubuntu", distro="ubuntu-16.04"),
    "centos": VmImageSpec(name="centos", distro="centos-7"),
}


def diverse_images(count: int, seed: int = 7) -> list[VmImageSpec]:
    """Images mimicking the paper's 44-image DAS-4 registry: several
    distros with varying software stacks and memory mixes."""
    rng = random.Random(seed)
    distros = [
        "debian-9", "debian-8", "ubuntu-16.04", "ubuntu-14.04",
        "centos-7", "centos-6", "fedora-25", "alpine-3.5",
    ]
    images = []
    for index in range(count):
        distro = distros[index % len(distros)]
        images.append(
            VmImageSpec(
                name=f"das4-{index:02d}",
                distro=distro,
                kernel_pages=rng.choice([96, 128, 160]),
                page_cache_pages=rng.choice([512, 640, 768, 896]),
                free_pages=rng.choice([384, 512, 640]),
                app_pages=rng.choice([128, 256, 384]),
                zero_free_fraction=rng.uniform(0.6, 0.9),
            )
        )
    return images


class GuestVm:
    """A booted VM: one process with tagged guest-RAM regions."""

    def __init__(self, process: Process, image: VmImageSpec) -> None:
        self.process = process
        self.image = image
        self.regions: dict[str, Vma] = {}
        # crc32, not hash(): salted str hashing would reseed this RNG
        # differently on every interpreter run (simlint DET004).
        self.rng = random.Random(
            (zlib.crc32(process.name.encode()) & 0xFFFF) | 0x10000
        )

    def region(self, guest_kind: str) -> Vma:
        return self.regions[guest_kind]

    def page_addr(self, guest_kind: str, index: int) -> int:
        return self.regions[guest_kind].start + index * PAGE_SIZE

    @property
    def total_pages(self) -> int:
        return self.image.total_pages


def boot_vm(
    kernel: Kernel,
    name: str,
    image: VmImageSpec,
    mergeable: bool = True,
) -> GuestVm:
    """Create and populate a VM from an image.

    Populating writes every page, so with THP-on-fault enabled the VM
    boots with huge-page-backed RAM, exactly the initial condition of
    the paper's Fig. 9.
    """
    process = kernel.create_process(name)
    vm = GuestVm(process, image)
    spec = image

    def make_region(kind: str, pages: int) -> Vma:
        vma = process.mmap(pages, name=f"{name}:{kind}", mergeable=mergeable)
        vma.extra["guest_kind"] = kind
        vm.regions[kind] = vma
        return vma

    kernel_vma = make_region("kernel", spec.kernel_pages)
    for index in range(spec.kernel_pages):
        process.write(
            kernel_vma.start + index * PAGE_SIZE,
            tagged_content("guest-kernel", spec.distro, index),
        )

    cache_vma = make_region("page_cache", spec.page_cache_pages)
    for index in range(spec.page_cache_pages):
        process.write(
            cache_vma.start + index * PAGE_SIZE,
            tagged_content("guest-page-cache", spec.distro, index),
        )

    free_vma = make_region("buddy", spec.free_pages)
    zero_cutoff = int(spec.free_pages * spec.zero_free_fraction)
    for index in range(spec.free_pages):
        if index < zero_cutoff:
            content = ZERO_PAGE
        else:
            # Stale data left behind by the guest's boot: identical
            # across same-image VMs.
            content = tagged_content("guest-stale", spec.distro, index)
        process.write(free_vma.start + index * PAGE_SIZE, content)

    app_vma = make_region("rest", spec.app_pages)
    for index in range(spec.app_pages):
        process.write(
            app_vma.start + index * PAGE_SIZE,
            tagged_content("guest-app", name, vm.rng.random(), index),
        )
    return vm
