"""The Stream memory-bandwidth microbenchmark (Table 2).

Four kernels (copy/scale/add/triad) sweep three page arrays
sequentially.  Everything is working set, so fusion engines have
almost nothing to do; the only overhead is the scan daemon's stolen
CPU time — the paper reports <1% for all configurations.
"""

from __future__ import annotations

from repro.kernel.process import Process
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE, SECOND
from repro.workloads.base import OperationStats, Workload


class StreamWorkload(Workload):
    """Sequential read/write sweeps over three arrays."""

    name = "stream"

    def __init__(self, process: Process, array_pages: int = 512) -> None:
        self.process = process
        self.array_pages = array_pages
        self.arrays = {}
        for label in "abc":
            vma = process.mmap(
                array_pages, name=f"stream-{label}", mergeable=True
            )
            for index in range(array_pages):
                process.write(
                    vma.start + index * PAGE_SIZE,
                    tagged_content("stream", process.name, label, index),
                )
            self.arrays[label] = vma

    def _addr(self, label: str, index: int) -> int:
        return self.arrays[label].start + index * PAGE_SIZE

    def _sweep(self, reads: tuple[str, ...], writes: tuple[str, ...]) -> tuple[int, int]:
        """One kernel pass; returns (simulated_ns, bytes_moved)."""
        process = self.process
        start = process.kernel.clock.now
        moved = 0
        for index in range(self.array_pages):
            for label in reads:
                process.read(self._addr(label, index))
                moved += PAGE_SIZE
            for label in writes:
                process.write(
                    self._addr(label, index),
                    tagged_content("stream-out", process.name, label, index),
                )
                moved += PAGE_SIZE
        return process.kernel.clock.now - start, moved

    def kernel_bandwidth(self, kernel_name: str, iterations: int = 3) -> float:
        """MB/s of one Stream kernel (mean over ``iterations``).

        The mean (not the best) is reported so that scan-daemon time
        stolen from the sweep shows up, as it does on real hardware.
        """
        patterns = {
            "copy": (("a",), ("c",)),
            "scale": (("c",), ("b",)),
            "add": (("a", "b"), ("c",)),
            "triad": (("b", "c"), ("a",)),
        }
        reads, writes = patterns[kernel_name]
        total_ns = 0
        total_bytes = 0
        for _ in range(iterations):
            elapsed, moved = self._sweep(reads, writes)
            total_ns += elapsed
            total_bytes += moved
        if total_ns == 0:
            return 0.0
        return total_bytes / (1024 * 1024) * SECOND / total_ns

    def run(self, operations: int = 3) -> OperationStats:
        stats = OperationStats(self.name)
        start = self.process.kernel.clock.now
        for _ in range(operations):
            for kernel_name in ("copy", "scale", "add", "triad"):
                self.kernel_bandwidth(kernel_name, iterations=1)
                stats.operations += 1
        stats.simulated_ns = self.process.kernel.clock.now - start
        return stats
