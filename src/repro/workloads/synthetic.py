"""Parameterised synthetic CPU/memory benchmarks (SPEC & PARSEC stand-ins).

Each benchmark is a named access-pattern over a private working set:
so many pages, a hot fraction, a read/write mix and a skew.  The suite
definitions in :mod:`repro.workloads.spec` and
:mod:`repro.workloads.parsec` instantiate one entry per benchmark the
paper's Figs. 7/8 plot.  Absolute runtimes are meaningless; the
*overhead ratio* between fusion configurations is the reproduced
quantity.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.kernel.process import Process
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE
from repro.workloads.base import OperationStats, Workload, skewed_index


@dataclass(frozen=True)
class BenchSpec:
    """Shape of one synthetic benchmark."""

    name: str
    pages: int = 512
    reads_per_op: int = 12
    writes_per_op: int = 3
    skew: float = 3.0
    #: Fraction of operations touching the cold tail explicitly
    #: (benchmarks with streaming phases revisit cold data).
    cold_touch_rate: float = 0.05
    #: Pure-compute time per operation (ns): the non-memory work that
    #: dilutes memory-system overheads into realistic percentages.
    compute_ns: int = 12_000


class SyntheticBenchmark(Workload):
    """One SPEC/PARSEC-style benchmark running inside a process."""

    def __init__(self, process: Process, spec: BenchSpec, seed: int = 11) -> None:
        self.process = process
        self.spec = spec
        self.name = spec.name
        # crc32, not hash(): builtin str hashing is salted per process
        # (PYTHONHASHSEED), which would give every run a different RNG
        # stream and break byte-identical artifacts (simlint DET004).
        self.rng = random.Random(
            (seed << 16) ^ zlib.crc32(spec.name.encode()) & 0xFFFF
        )
        self.vma = process.mmap(
            spec.pages, name=f"bench:{spec.name}", mergeable=True
        )
        for index in range(spec.pages):
            process.write(
                self.vma.start + index * PAGE_SIZE,
                tagged_content("bench", process.name, spec.name, index),
            )
        self._cold_cursor = 0

    def _page(self, index: int) -> int:
        return self.vma.start + index * PAGE_SIZE

    def run(self, operations: int) -> OperationStats:
        stats = OperationStats(self.name)
        process, spec, rng = self.process, self.spec, self.rng
        start = process.kernel.clock.now
        for _ in range(operations):
            process.kernel.clock.advance(spec.compute_ns)
            op_ns = spec.compute_ns
            for _ in range(spec.reads_per_op):
                index = skewed_index(rng, spec.pages, spec.skew)
                op_ns += process.read(self._page(index)).latency
            for _ in range(spec.writes_per_op):
                index = skewed_index(rng, spec.pages, spec.skew)
                op_ns += process.write(
                    self._page(index),
                    tagged_content("bench-dirty", process.name, spec.name, index,
                                   rng.random()),
                ).latency
            if rng.random() < spec.cold_touch_rate:
                # Streaming sweep step: revisit a cold page.
                self._cold_cursor = (self._cold_cursor + 1) % spec.pages
                op_ns += process.read(
                    self._page(spec.pages - 1 - self._cold_cursor)
                ).latency
            stats.operations += 1
            stats.latencies.append(op_ns)
        stats.simulated_ns = process.kernel.clock.now - start
        return stats
