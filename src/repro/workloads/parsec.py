"""The PARSEC-like parallel suite (Fig. 8).

PARSEC benchmarks are modelled like the SPEC ones but with larger
shared working sets and more writes (parallel producers/consumers).
``fmm``, ``barnes`` and the ``netapps`` category are excluded exactly
as in the paper (§9.2).
"""

from __future__ import annotations

from repro.workloads.synthetic import BenchSpec

PARSEC_BENCHMARKS: list[BenchSpec] = [
    BenchSpec("blackscholes", pages=384, reads_per_op=12, writes_per_op=4, skew=2.5),
    BenchSpec("bodytrack", pages=512, reads_per_op=14, writes_per_op=5, skew=2.8),
    BenchSpec("canneal", pages=1024, reads_per_op=16, writes_per_op=4, skew=1.5,
              cold_touch_rate=0.25),
    BenchSpec("dedup", pages=768, reads_per_op=13, writes_per_op=7, skew=2.0),
    BenchSpec("facesim", pages=640, reads_per_op=14, writes_per_op=5, skew=2.2),
    BenchSpec("ferret", pages=512, reads_per_op=13, writes_per_op=4, skew=2.6),
    BenchSpec("fluidanimate", pages=640, reads_per_op=15, writes_per_op=6, skew=2.0),
    BenchSpec("freqmine", pages=512, reads_per_op=13, writes_per_op=3, skew=3.0),
    BenchSpec("raytrace", pages=448, reads_per_op=12, writes_per_op=2, skew=3.2),
    BenchSpec("streamcluster", pages=768, reads_per_op=15, writes_per_op=4, skew=1.6,
              cold_touch_rate=0.2),
    BenchSpec("swaptions", pages=256, reads_per_op=10, writes_per_op=3, skew=4.0),
    BenchSpec("vips", pages=512, reads_per_op=13, writes_per_op=5, skew=2.4),
    BenchSpec("x264", pages=448, reads_per_op=13, writes_per_op=6, skew=2.6),
]
