"""Synthetic workloads mirroring the paper's benchmark suite."""

from repro.workloads.base import OperationStats, Workload
from repro.workloads.vm_image import (
    DISTRO_IMAGES,
    GuestVm,
    VmImageSpec,
    boot_vm,
    diverse_images,
)
from repro.workloads.apache import ApacheWorkload
from repro.workloads.keyvalue import KeyValueWorkload
from repro.workloads.parsec import PARSEC_BENCHMARKS
from repro.workloads.postmark import PostmarkWorkload
from repro.workloads.spec import SPEC_BENCHMARKS
from repro.workloads.stream import StreamWorkload
from repro.workloads.synthetic import BenchSpec, SyntheticBenchmark

__all__ = [
    "ApacheWorkload",
    "BenchSpec",
    "DISTRO_IMAGES",
    "GuestVm",
    "KeyValueWorkload",
    "OperationStats",
    "PARSEC_BENCHMARKS",
    "PostmarkWorkload",
    "SPEC_BENCHMARKS",
    "StreamWorkload",
    "SyntheticBenchmark",
    "VmImageSpec",
    "Workload",
    "boot_vm",
    "diverse_images",
]
