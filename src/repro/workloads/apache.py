"""An Apache-like web-server workload (Table 5, Figs. 4/9/12).

Requests read a skewed subset of the guest page cache (the served
documents — identical across VMs of one image, hence prime fusion
material that is nonetheless *hot*), touch per-worker heap state and
append to a log page.  Apache's self-balancing prefork model is
modelled by growing the worker pool (new unique heap pages) as
requests arrive, which is what makes memory consumption rise during
the benchmark in Fig. 12.
"""

from __future__ import annotations

import random

from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE
from repro.workloads.base import OperationStats, Workload, skewed_index
from repro.workloads.vm_image import GuestVm


class ApacheWorkload(Workload):
    """Request loop over a booted VM's page cache plus worker heaps."""

    name = "apache"

    def __init__(
        self,
        vm: GuestVm,
        max_worker_pages: int = 256,
        docs_per_request: int = 12,
        heap_touches: int = 4,
        expand_every: int = 25,
        compute_ns: int = 6000,
        seed: int = 23,
    ) -> None:
        self.vm = vm
        self.process = vm.process
        self.rng = random.Random(seed ^ vm.process.pid)
        self.docs_per_request = docs_per_request
        self.heap_touches = heap_touches
        self.expand_every = expand_every
        self.compute_ns = compute_ns
        self.heap = self.process.mmap(
            max_worker_pages, name="apache-workers", mergeable=True
        )
        self.heap.extra["guest_kind"] = "rest"
        self.worker_pages = 8
        for index in range(self.worker_pages):
            self._write_heap(index)
        self.log_cursor = 0

    def _write_heap(self, index: int) -> None:
        self.process.write(
            self.heap.start + index * PAGE_SIZE,
            tagged_content("apache-heap", self.process.name, index, self.rng.random()),
        )

    def _expand_workers(self) -> None:
        if self.worker_pages < self.heap.num_pages:
            self._write_heap(self.worker_pages)
            self.worker_pages += 1

    def request(self) -> int:
        """Serve one request; returns its simulated latency."""
        process = self.process
        cache = self.vm.region("page_cache")
        process.kernel.clock.advance(self.compute_ns)
        latency = self.compute_ns
        for _ in range(self.docs_per_request):
            index = skewed_index(self.rng, cache.num_pages, skew=2.2)
            latency += process.read(cache.start + index * PAGE_SIZE).latency
        for _ in range(self.heap_touches):
            index = self.rng.randrange(self.worker_pages)
            latency += process.read(self.heap.start + index * PAGE_SIZE).latency
        # Log append: rewrite the current log page (worker heap tail).
        log_index = self.log_cursor % self.worker_pages
        self.log_cursor += 1
        latency += process.write(
            self.heap.start + log_index * PAGE_SIZE,
            tagged_content("apache-log", self.process.name, self.log_cursor),
        ).latency
        return latency

    def run(self, operations: int) -> OperationStats:
        stats = OperationStats(self.name)
        start = self.process.kernel.clock.now
        for count in range(operations):
            stats.latencies.append(self.request())
            stats.operations += 1
            if count % self.expand_every == self.expand_every - 1:
                self._expand_workers()
        stats.simulated_ns = self.process.kernel.clock.now - start
        return stats
