"""Redis/Memcached-like key-value stores (Tables 6 and 7).

A large value heap with a skewed key popularity distribution: the hot
keys stay in the working set while the long cold tail is exactly what
page fusion grabs — and what S⊕F must fault back in when a cold key is
suddenly requested, which is where VUsion's tail-latency cost shows
up.  GET/SET ratio follows the paper's memtier configuration (1:10).
"""

from __future__ import annotations

import random

from repro.kernel.process import Process
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE
from repro.workloads.base import OperationStats, Workload, skewed_index


class KeyValueWorkload(Workload):
    """A key-value store with per-operation latency tracking."""

    def __init__(
        self,
        process: Process,
        kind: str = "redis",
        value_pages: int = 1024,
        index_pages: int = 32,
        set_ratio: float = 1 / 11,
        skew: float = 2.5,
        compute_ns: int = 3500,
        default_fraction: float | None = None,
        seed: int = 31,
    ) -> None:
        if kind not in ("redis", "memcached"):
            raise ValueError(f"unknown store kind {kind!r}")
        self.name = kind
        self.process = process
        self.rng = random.Random(seed ^ process.pid)
        self.set_ratio = set_ratio
        self.skew = skew
        self.compute_ns = compute_ns
        # Memcached's slab allocator spreads values wider than Redis's
        # jemalloc arenas: flatter skew, larger footprint, but fewer
        # identical default-object pages.  Pages full of never-written
        # or default-valued 32-byte objects are byte-identical and are
        # what fusion grabs inside a key-value store's heap.
        if kind == "memcached":
            self.skew = max(1.6, skew - 0.6)
            value_pages = int(value_pages * 1.25)
            self.default_fraction = 0.2 if default_fraction is None else default_fraction
        else:
            self.default_fraction = 0.4 if default_fraction is None else default_fraction
        self.values = process.mmap(
            value_pages, name=f"{kind}-values", mergeable=True
        )
        self.values.extra["guest_kind"] = "rest"
        self.index = process.mmap(
            index_pages, name=f"{kind}-index", mergeable=True
        )
        self.index.extra["guest_kind"] = "rest"
        for page in range(value_pages):
            self._store(page, generation=0)
        for page in range(index_pages):
            process.write(
                self.index.start + page * PAGE_SIZE,
                tagged_content(kind, "index", process.name, page),
            )
        self._generation = 1

    def _store(self, page: int, generation: int) -> int:
        if generation == 0 and (page * 2654435761) % 1024 < 1024 * self.default_fraction:
            # A slab page still holding only default-initialised
            # objects: identical to every other such page.
            content = tagged_content(self.name, "default-object", self.process.name)
        else:
            content = tagged_content(
                self.name, "value", self.process.name, page, generation
            )
        return self.process.write(
            self.values.start + page * PAGE_SIZE, content
        ).latency

    def get(self) -> int:
        """One GET: hashtable lookup + value read."""
        page = skewed_index(self.rng, self.values.num_pages, self.skew)
        index_page = page % self.index.num_pages
        self.process.kernel.clock.advance(self.compute_ns)
        latency = self.compute_ns
        latency += self.process.read(
            self.index.start + index_page * PAGE_SIZE
        ).latency
        latency += self.process.read(
            self.values.start + page * PAGE_SIZE
        ).latency
        return latency

    def set(self) -> int:
        """One SET: hashtable update + value write."""
        page = skewed_index(self.rng, self.values.num_pages, self.skew)
        index_page = page % self.index.num_pages
        self.process.kernel.clock.advance(self.compute_ns)
        latency = self.compute_ns
        latency += self.process.read(
            self.index.start + index_page * PAGE_SIZE
        ).latency
        self._generation += 1
        latency += self._store(page, self._generation)
        return latency

    def run(self, operations: int) -> OperationStats:
        stats = OperationStats(self.name)
        stats.extra_get = []  # type: ignore[attr-defined]
        stats.extra_set = []  # type: ignore[attr-defined]
        start = self.process.kernel.clock.now
        for _ in range(operations):
            if self.rng.random() < self.set_ratio:
                latency = self.set()
                stats.extra_set.append(latency)  # type: ignore[attr-defined]
            else:
                latency = self.get()
                stats.extra_get.append(latency)  # type: ignore[attr-defined]
            stats.latencies.append(latency)
            stats.operations += 1
        stats.simulated_ns = self.process.kernel.clock.now - start
        return stats

    def run_split(self, operations: int) -> tuple[OperationStats, OperationStats, OperationStats]:
        """Run and return (all, gets, sets) statistics separately."""
        stats = self.run(operations)
        gets = OperationStats(f"{self.name}-get")
        gets.latencies = stats.extra_get  # type: ignore[attr-defined]
        gets.operations = len(gets.latencies)
        sets = OperationStats(f"{self.name}-set")
        sets.latencies = stats.extra_set  # type: ignore[attr-defined]
        sets.operations = len(sets.latencies)
        gets.simulated_ns = sets.simulated_ns = stats.simulated_ns
        return stats, gets, sets
