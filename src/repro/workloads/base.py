"""Workload plumbing: operation statistics and access-pattern helpers."""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.params import SECOND


@dataclass
class OperationStats:
    """Latency/throughput record of one workload run.

    ``latencies`` holds one simulated-ns value per logical operation
    (request, transaction, GET/SET, ...).  Throughput is operations per
    simulated second — the quantity the paper's tables report.
    """

    name: str
    operations: int = 0
    simulated_ns: int = 0
    latencies: list[int] = field(default_factory=list)
    #: Sorted view of ``latencies``, rebuilt lazily when the list grows
    #: (workloads only ever append; see :meth:`_ordered`).
    _sorted_cache: list[int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def throughput_per_s(self) -> float:
        if self.simulated_ns == 0:
            return 0.0
        return self.operations * SECOND / self.simulated_ns

    def _ordered(self) -> list[int]:
        if (self._sorted_cache is None
                or len(self._sorted_cache) != len(self.latencies)):
            self._sorted_cache = sorted(self.latencies)
        return self._sorted_cache

    def percentile(self, pct: float) -> int:
        if not self.latencies:
            return 0
        ordered = self._ordered()
        index = min(len(ordered) - 1, math.ceil(pct / 100 * len(ordered)) - 1)
        return ordered[max(0, index)]

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


def skewed_index(rng: random.Random, n: int, skew: float = 3.0) -> int:
    """Power-law-skewed index in [0, n): low indices are hot.

    ``skew=1`` is uniform; larger values concentrate accesses, giving
    the hot/cold page split that drives both the fusion benefits (cold
    pages merge) and the cost of S⊕F (cold pages fault on re-access).
    """
    return min(n - 1, int(n * (rng.random() ** skew)))


class Workload(ABC):
    """A runnable benchmark bound to a guest VM."""

    name = "workload"

    @abstractmethod
    def run(self, operations: int) -> OperationStats:
        """Execute ``operations`` logical operations; return stats."""
