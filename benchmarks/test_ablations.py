"""Ablation benchmarks: every §7.1 design decision is load-bearing."""

from repro.harness.experiments import (
    run_ablation_performance,
    run_ablation_security,
)

from benchmarks.conftest import get_scale, record


def test_ablation_security(benchmark):
    result = benchmark.pedantic(run_ablation_security, rounds=1, iterations=1)
    record(result, "ablation_security")
    assert result.all_checks_pass, result.render()


def test_ablation_performance(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_ablation_performance, args=(scale,), rounds=1, iterations=1
    )
    record(result, "ablation_performance")
    assert result.all_checks_pass, result.render()
