"""§9.1: VUsion's randomized allocations are uniform (KS test)."""

from repro.harness.experiments import run_ra_uniformity

from benchmarks.conftest import record


def test_ra_uniformity(benchmark):
    result = benchmark.pedantic(run_ra_uniformity, rounds=1, iterations=1)
    record(result, "ra_uniformity")
    assert result.all_checks_pass, result.render()
    assert result.notes["pvalue"] > 0.05
