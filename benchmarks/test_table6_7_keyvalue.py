"""Tables 6/7: Redis and Memcached throughput and latency tails."""

from repro.harness.experiments import run_table6_7_keyvalue

from benchmarks.conftest import get_scale, record


def test_table6_7_keyvalue(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_table6_7_keyvalue, args=(scale,), rounds=1, iterations=1
    )
    record(result, "table6_7_keyvalue")
    assert result.all_checks_pass, result.render()
