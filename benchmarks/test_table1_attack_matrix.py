"""Table 1: every attack vs. its insecure target and vs. VUsion."""

from repro.harness.experiments import run_table1_attack_matrix

from benchmarks.conftest import record


def test_table1_attack_matrix(benchmark):
    result = benchmark.pedantic(run_table1_attack_matrix, rounds=1, iterations=1)
    record(result, "table1_attack_matrix")
    assert result.all_checks_pass, result.render()
