"""Fig. 10: idle-VM memory consumption — VUsion converges to KSM."""

from repro.harness.experiments import run_fig10_idle_vms

from benchmarks.conftest import get_scale, record


def test_fig10_idle_vms(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_fig10_idle_vms, args=(scale,), rounds=1, iterations=1
    )
    record(result, "fig10_idle_vms")
    assert result.all_checks_pass, result.render()
