"""Scan-throughput regression gate for the fingerprint engine.

Measures pages-scanned-per-wall-second for KSM, WPF and VUsion on the
Fig. 10 idle-VM workload (four debian VMs booted staggered, then left
idle with light guest housekeeping) with the incremental fingerprint
cache on versus off.  On repeated passes over idle pages the engines
converge to memo replay, so the incremental path must beat the
recomputation baseline by at least 2× — anything less means a gate
regressed and the engines are silently re-scanning unchanged pages.

Results land in ``BENCH_scan_throughput.json`` at the repository root
so CI history can track the ratio over time.  Wall-clock numbers are
host-dependent; only the on/off *ratio* is asserted.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.vusion import Vusion
from repro.fusion.ksm import Ksm
from repro.fusion.wpf import WindowsPageFusion
from repro.kernel.kernel import Kernel
from repro.params import (
    FusionConfig,
    MachineSpec,
    MS,
    SECOND,
    VusionConfig,
    WpfConfig,
)
from repro.workloads.vm_image import DISTRO_IMAGES, boot_vm

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_scan_throughput.json"
)

FRAMES = 16384
NUM_VMS = 4
SEED = 1017
FAST = FusionConfig(pages_per_scan=100, scan_interval=20 * MS)
#: Simulated time: settle after the last boot, then timed windows.
WARMUP = 6 * SECOND
WINDOW = 3 * SECOND
REPEATS = 3
MIN_SPEEDUP = 2.0

ENGINES = {
    # Rerandomisation deliberately re-backs every fused page each
    # round, which is real (and intended) work; the idle-scan gate is
    # measured with it off, as in the paper's performance comparison
    # against baseline KSM behaviour.
    "ksm": lambda: Ksm(FAST),
    "wpf": lambda: WindowsPageFusion(WpfConfig(pass_interval=200 * MS)),
    "vusion": lambda: Vusion(
        VusionConfig(
            random_pool_frames=256,
            min_idle_ns=100 * MS,
            rerandomize_each_scan=False,
        ),
        FAST,
    ),
}


def build_idle_vms(engine_name: str, fingerprint_enabled: bool):
    """Fig. 10 initial condition: staggered idle debian VMs."""
    spec = MachineSpec(
        total_frames=FRAMES, seed=SEED, fingerprint_enabled=fingerprint_enabled
    )
    kernel = Kernel(spec)
    kernel.attach_fusion(ENGINES[engine_name]())
    image = DISTRO_IMAGES["debian"]
    vms = []
    for index in range(NUM_VMS):
        vms.append(boot_vm(kernel, f"vm{index}", image))
        kernel.idle(500 * MS)
    return kernel, vms


def idle_pass(kernel, vms, duration: int) -> None:
    """Idle VMs still run guest housekeeping (as in run_fig10_idle_vms)."""
    end = kernel.clock.now + duration
    while kernel.clock.now < end:
        for vm in vms:
            vm.process.read(vm.region("page_cache").start)
            vm.process.read(vm.region("rest").start)
        kernel.idle(250 * MS)


def measure(engine_name: str, fingerprint_enabled: bool) -> dict:
    """Best-of-N pages-scanned-per-wall-second over repeated idle passes."""
    kernel, vms = build_idle_vms(engine_name, fingerprint_enabled)
    idle_pass(kernel, vms, WARMUP)  # merges settle, memos converge
    best = 0.0
    for _ in range(REPEATS):
        pages_before = kernel.fusion.stats.pages_scanned
        start = time.perf_counter()
        idle_pass(kernel, vms, WINDOW)
        elapsed = time.perf_counter() - start
        pages = kernel.fusion.stats.pages_scanned - pages_before
        best = max(best, pages / elapsed)
    return {
        "pages_per_wall_second": best,
        "pages_scanned": kernel.fusion.stats.pages_scanned,
        "saved_frames": kernel.fusion.saved_frames(),
        "incremental": kernel.fusion.incremental_stats(),
        "fingerprints": kernel.physmem.fingerprints.stats.as_dict(),
    }


@pytest.fixture(scope="module")
def report():
    data = {"frames": FRAMES, "vms": NUM_VMS, "engines": {}}
    yield data
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {RESULT_PATH}")


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_incremental_beats_recomputation(engine_name, report):
    incremental = measure(engine_name, fingerprint_enabled=True)
    baseline = measure(engine_name, fingerprint_enabled=False)
    speedup = (
        incremental["pages_per_wall_second"] / baseline["pages_per_wall_second"]
    )
    report["engines"][engine_name] = {
        "incremental": incremental,
        "baseline": baseline,
        "speedup": speedup,
    }
    print(
        f"\n{engine_name}: incremental "
        f"{incremental['pages_per_wall_second']:,.0f} pages/s, baseline "
        f"{baseline['pages_per_wall_second']:,.0f} pages/s ({speedup:.2f}x)"
    )
    # Identical simulated outcomes — same pages scanned, same savings —
    # so the wall-clock ratio compares equal work.
    assert incremental["pages_scanned"] == baseline["pages_scanned"]
    assert incremental["saved_frames"] == baseline["saved_frames"]
    assert speedup >= MIN_SPEEDUP, (
        f"{engine_name} incremental scan only {speedup:.2f}x baseline "
        f"(need {MIN_SPEEDUP}x)"
    )
