"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper, asserts
its qualitative checks, and writes the rendered result to
``results/<name>.txt``.  Set ``REPRO_FULL=1`` to run at full scale
(slower, closer to the paper's parameters).
"""

from __future__ import annotations

import os
import pathlib

from repro.harness.experiments import FULL, QUICK, ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def get_scale():
    return FULL if os.environ.get("REPRO_FULL") == "1" else QUICK


def record(result: ExperimentResult, name: str) -> ExperimentResult:
    """Persist the rendered experiment and echo it to the report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = result.render()
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    print()
    print(rendered)
    return result
