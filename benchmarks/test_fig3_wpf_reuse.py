"""Fig. 3: WPF's near-perfect cross-pass frame reuse (vs. VUsion's none)."""

from repro.harness.experiments import run_fig3_wpf_reuse

from benchmarks.conftest import record


def test_fig3_wpf_reuse(benchmark):
    result = benchmark.pedantic(run_fig3_wpf_reuse, rounds=1, iterations=1)
    record(result, "fig3_wpf_reuse")
    assert result.all_checks_pass, result.render()
    assert result.notes["wpf"] >= 0.9
    assert result.notes["vusion"] <= 0.1
