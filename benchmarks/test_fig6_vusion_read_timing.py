"""Fig. 6: unimodal read-timing distribution under VUsion (SB holds)."""

from repro.harness.experiments import run_fig6_vusion_read_timing

from benchmarks.conftest import record


def test_fig6_vusion_read_timing(benchmark):
    result = benchmark.pedantic(run_fig6_vusion_read_timing, rounds=1, iterations=1)
    record(result, "fig6_vusion_read_timing")
    assert result.all_checks_pass, result.render()
    assert result.notes["ks_pvalue"] > 0.05
    assert result.notes["modes"] == 1
