"""Table 3: fusion benefits come from idle pages (page cache + buddy)."""

from repro.harness.experiments import run_table3_page_types

from benchmarks.conftest import get_scale, record


def test_table3_page_types(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_table3_page_types, args=(scale,), rounds=1, iterations=1
    )
    record(result, "table3_page_types")
    assert result.all_checks_pass, result.render()
