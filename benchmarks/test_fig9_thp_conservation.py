"""Fig. 9: VUsion THP conserves working-set huge pages under Apache."""

from repro.harness.experiments import run_fig9_thp_conservation

from benchmarks.conftest import get_scale, record


def test_fig9_thp_conservation(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_fig9_thp_conservation, args=(scale,), rounds=1, iterations=1
    )
    record(result, "fig9_thp_conservation")
    assert result.all_checks_pass, result.render()
