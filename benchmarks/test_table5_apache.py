"""Table 5: Apache — KSM/VUsion lose throughput, VUsion THP recovers it."""

from repro.harness.experiments import run_table5_apache

from benchmarks.conftest import get_scale, record


def test_table5_apache(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_table5_apache, args=(scale,), rounds=1, iterations=1
    )
    record(result, "table5_apache")
    assert result.all_checks_pass, result.render()
    # Ordering: No Dedup fastest, VUsion THP recovers over KSM/VUsion.
    assert result.notes["VUsion THP"] > result.notes["VUsion"]
