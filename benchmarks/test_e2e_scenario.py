"""End-to-end wall-clock gate: the full columnar + batch-kernel stack.

The Fig. 10 initial condition — four staggered debian VMs on a
16k-frame machine under a fusion engine — driven by the sampling-heavy
monitoring loop that motivated both the columnar store (PR 5) and the
batch scan kernel.  Per 10 ms of simulated time, fleet telemetry reads
``frames_in_use``, the Table 3 frame-type histogram and the sorted
mapped-frame view; every fourth sample it additionally runs a scan
pass over every mapped frame — zero-page sweep, refcount reduction,
generation deltas against the previous pass and a full digest sweep —
through :attr:`PhysicalMemory.scan_kernel`.

Three configurations run the same scenario:

* ``legacy`` — the pre-columnar cost model: every store query is an
  O(num_frames) recount / re-sort, and the scan pass degrades to the
  per-frame scalar loops (no cid column to vectorize);
* ``columnar+scalar`` — columnar counters and cached views, scan pass
  still per-frame Python (the PR 5 stack);
* ``columnar+batch`` — the default stack: the same scan pass answered
  from zero-copy NumPy views of the cid / generation / refcount
  columns.

Two gates: the PR 5 store gate is preserved (columnar+scalar at least
2x over legacy) and the full stack must reach at least 5x — with
identical simulated outcomes (clock, counters, histograms, savings,
scan-pass answers and digest-cache stats) across all three runs, so
the speed is representation-deep only.

Results land in ``BENCH_e2e_scenario.json`` at the repository root so
CI history can track the ratios over time.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.params import FusionConfig, MachineSpec, MS, SECOND
from repro.workloads.vm_image import DISTRO_IMAGES, boot_vm

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_e2e_scenario.json"
)

FRAMES = 16384
NUM_VMS = 4
SEED = 1017
WARMUP = 2 * SECOND
WINDOW = 2 * SECOND
WINDOWS = 2
MONITOR_INTERVAL = 10 * MS
SCAN_PASS_STRIDE = 4  # full scan pass every 4th monitor sample
MIN_STORE_SPEEDUP = 2.0   # PR 5 gate: columnar store alone
MIN_STACK_SPEEDUP = 5.0   # columnar store + batch scan kernel

CONFIGS = {
    "legacy": ("legacy", "batch"),          # batch degrades to scalar loops
    "columnar+scalar": ("columnar", "scalar"),
    "columnar+batch": ("columnar", "batch"),
}


def build(store: str, scan_kernel: str):
    spec = MachineSpec(
        total_frames=FRAMES, seed=SEED,
        frame_store=store, scan_kernel=scan_kernel,
    )
    kernel = Kernel(spec)
    kernel.attach_fusion(Ksm(FusionConfig(pages_per_scan=64,
                                          scan_interval=40 * MS)))
    image = DISTRO_IMAGES["debian"]
    vms = []
    for index in range(NUM_VMS):
        vms.append(boot_vm(kernel, f"vm{index}", image))
        kernel.idle(500 * MS)
    return kernel, vms


def monitor_pass(kernel, vms, duration: int, outcomes: list, state: dict):
    """Idle the VMs; sample fleet telemetry every monitor interval."""
    physmem = kernel.physmem
    scan = physmem.scan_kernel
    end = kernel.clock.now + duration
    while kernel.clock.now < end:
        step = state["step"]
        if step % 12 == 0:  # light guest housekeeping, as in Fig. 10
            for vm in vms:
                vm.process.read(vm.region("page_cache").start)
                vm.process.read(vm.region("rest").start)
        kernel.idle(MONITOR_INTERVAL)
        state["step"] = step + 1
        mapped = list(physmem.mapped_frames())
        entry = (
            kernel.clock.now,
            physmem.frames_in_use(),
            tuple(physmem.type_histogram().values()),
            kernel.fusion.saved_frames(),
            len(mapped),
        )
        if step % SCAN_PASS_STRIDE == 0:
            batch = scan.pfn_batch(mapped)
            # Generation deltas only compare against a snapshot of the
            # same frames; after a remap the pass starts a new baseline.
            if mapped == state["mapped"]:
                changed = len(scan.changed_since(batch, state["snapshot"]))
            else:
                changed = -1
            state["mapped"] = mapped
            state["snapshot"] = scan.generation_snapshot(batch)
            entry += (
                len(scan.zero_frames(batch)),
                scan.refcount_sum(batch),
                changed,
                sum(scan.digest_sweep(batch)),
            )
        outcomes.append(entry)


def run_scenario(store: str, scan_kernel: str) -> dict:
    kernel, vms = build(store, scan_kernel)
    outcomes: list = []
    state = {"step": 0, "mapped": None, "snapshot": None}
    monitor_pass(kernel, vms, WARMUP, outcomes, state)
    elapsed = 0.0
    for _ in range(WINDOWS):
        start = time.perf_counter()
        monitor_pass(kernel, vms, WINDOW, outcomes, state)
        elapsed += time.perf_counter() - start
    return {
        "wall_s": elapsed,
        "outcomes": outcomes,
        "clock_ns": kernel.clock.now,
        "saved_frames": kernel.fusion.saved_frames(),
        "fingerprints": kernel.physmem.fingerprints.stats.as_dict(),
        "scan_backend": kernel.physmem.scan_kernel.backend,
    }


def test_full_stack_at_least_5x_on_idle_vms():
    runs = {
        name: run_scenario(store, kind)
        for name, (store, kind) in CONFIGS.items()
    }
    baseline = runs["legacy"]

    # Representation-deep only: every simulated observable is identical.
    for name, run in runs.items():
        assert run["clock_ns"] == baseline["clock_ns"], name
        assert run["saved_frames"] == baseline["saved_frames"], name
        assert run["outcomes"] == baseline["outcomes"], name
    # Digest-cache totals are a *store* property (the columnar store
    # collapses duplicate cids to one probe per batch); the scan kernel
    # must not move them on a given store.
    assert (runs["columnar+batch"]["fingerprints"]
            == runs["columnar+scalar"]["fingerprints"])
    assert runs["legacy"]["scan_backend"] == "scalar"  # no cid column
    assert runs["columnar+batch"]["scan_backend"] in ("numpy", "array")

    store_speedup = baseline["wall_s"] / runs["columnar+scalar"]["wall_s"]
    stack_speedup = baseline["wall_s"] / runs["columnar+batch"]["wall_s"]
    report = {
        "frames": FRAMES,
        "vms": NUM_VMS,
        "engine": "ksm",
        "monitor_interval_ms": MONITOR_INTERVAL // MS,
        "scan_pass_stride": SCAN_PASS_STRIDE,
        "simulated_window_s": WINDOWS * WINDOW / SECOND,
        "legacy_wall_s": baseline["wall_s"],
        "columnar_scalar_wall_s": runs["columnar+scalar"]["wall_s"],
        "columnar_batch_wall_s": runs["columnar+batch"]["wall_s"],
        "speedup_store": store_speedup,
        "speedup": stack_speedup,
        "scan_backend": runs["columnar+batch"]["scan_backend"],
        "saved_frames": baseline["saved_frames"],
        "samples": len(baseline["outcomes"]),
        "legacy_fingerprints": baseline["fingerprints"],
        "columnar_fingerprints": runs["columnar+batch"]["fingerprints"],
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\nidle-VMs scenario: legacy {baseline['wall_s']:.2f} s, "
        f"columnar+scalar {runs['columnar+scalar']['wall_s']:.2f} s "
        f"({store_speedup:.2f}x), "
        f"columnar+batch {runs['columnar+batch']['wall_s']:.2f} s "
        f"({stack_speedup:.2f}x)\n"
        f"wrote {RESULT_PATH}"
    )
    assert store_speedup >= MIN_STORE_SPEEDUP, (
        f"columnar store only {store_speedup:.2f}x faster end to end "
        f"(need {MIN_STORE_SPEEDUP}x)"
    )
    assert stack_speedup >= MIN_STACK_SPEEDUP, (
        f"full stack only {stack_speedup:.2f}x faster end to end "
        f"(need {MIN_STACK_SPEEDUP}x)"
    )
