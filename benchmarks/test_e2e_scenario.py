"""End-to-end wall-clock gate: columnar vs legacy on idle VMs.

The Fig. 10 initial condition — four staggered debian VMs on a
16k-frame machine under a fusion engine — driven by the sampling-heavy
monitoring loop that motivated this change: per 20 ms of simulated
time, fleet telemetry reads ``frames_in_use``, the Table 3 frame-type
histogram, the sorted mapped-frame view and a full content-digest
sweep over every mapped frame.

On the legacy store every one of those is an O(num_frames) pass —
recount, recount, re-sort, and one cached-or-blake2b digest per frame
— which is exactly the pre-columnar cost model that store preserves.
The columnar machine answers the same queries from counters, the
cached sorted view, and per-*unique* arena digests.  The gate: the
same simulated scenario must run at least 2x faster end to end on the
columnar store, with identical simulated outcomes (clock, counters,
histograms, savings and sweep digests) — speed is representation-deep
only.

Results land in ``BENCH_e2e_scenario.json`` at the repository root so
CI history can track the ratio over time.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.params import FusionConfig, MachineSpec, MS, SECOND
from repro.workloads.vm_image import DISTRO_IMAGES, boot_vm

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_e2e_scenario.json"
)

FRAMES = 16384
NUM_VMS = 4
SEED = 1017
WARMUP = 2 * SECOND
WINDOW = 2 * SECOND
WINDOWS = 2
MONITOR_INTERVAL = 20 * MS
MIN_SPEEDUP = 2.0


def build(store: str):
    spec = MachineSpec(total_frames=FRAMES, seed=SEED, frame_store=store)
    kernel = Kernel(spec)
    kernel.attach_fusion(Ksm(FusionConfig(pages_per_scan=64,
                                          scan_interval=40 * MS)))
    image = DISTRO_IMAGES["debian"]
    vms = []
    for index in range(NUM_VMS):
        vms.append(boot_vm(kernel, f"vm{index}", image))
        kernel.idle(500 * MS)
    return kernel, vms


def monitor_pass(kernel, vms, duration: int, outcomes: list) -> None:
    """Idle the VMs; sample fleet telemetry every monitor interval."""
    physmem = kernel.physmem
    end = kernel.clock.now + duration
    step = 0
    while kernel.clock.now < end:
        if step % 12 == 0:  # light guest housekeeping, as in Fig. 10
            for vm in vms:
                vm.process.read(vm.region("page_cache").start)
                vm.process.read(vm.region("rest").start)
        kernel.idle(MONITOR_INTERVAL)
        step += 1
        in_use = physmem.frames_in_use()
        histogram = physmem.type_histogram()
        mapped = list(physmem.mapped_frames())
        digests = physmem.digests_many(mapped)
        outcomes.append(
            (
                kernel.clock.now,
                in_use,
                tuple(histogram.values()),
                kernel.fusion.saved_frames(),
                len(mapped),
                sum(digests),  # order-insensitive but paired with len + counters
            )
        )


def run_scenario(store: str) -> dict:
    kernel, vms = build(store)
    outcomes: list = []
    monitor_pass(kernel, vms, WARMUP, outcomes)
    elapsed = 0.0
    for _ in range(WINDOWS):
        start = time.perf_counter()
        monitor_pass(kernel, vms, WINDOW, outcomes)
        elapsed += time.perf_counter() - start
    return {
        "wall_s": elapsed,
        "outcomes": outcomes,
        "clock_ns": kernel.clock.now,
        "saved_frames": kernel.fusion.saved_frames(),
        "fingerprints": kernel.physmem.fingerprints.stats.as_dict(),
    }


def test_columnar_at_least_2x_on_idle_vms():
    runs = {store: run_scenario(store) for store in ("legacy", "columnar")}

    # Representation-deep only: every simulated observable is identical.
    assert runs["legacy"]["clock_ns"] == runs["columnar"]["clock_ns"]
    assert runs["legacy"]["saved_frames"] == runs["columnar"]["saved_frames"]
    assert runs["legacy"]["outcomes"] == runs["columnar"]["outcomes"]

    speedup = runs["legacy"]["wall_s"] / runs["columnar"]["wall_s"]
    report = {
        "frames": FRAMES,
        "vms": NUM_VMS,
        "engine": "ksm",
        "monitor_interval_ms": MONITOR_INTERVAL // MS,
        "simulated_window_s": WINDOWS * WINDOW / SECOND,
        "legacy_wall_s": runs["legacy"]["wall_s"],
        "columnar_wall_s": runs["columnar"]["wall_s"],
        "speedup": speedup,
        "saved_frames": runs["legacy"]["saved_frames"],
        "samples": len(runs["legacy"]["outcomes"]),
        "legacy_fingerprints": runs["legacy"]["fingerprints"],
        "columnar_fingerprints": runs["columnar"]["fingerprints"],
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\nidle-VMs scenario: legacy {runs['legacy']['wall_s']:.2f} s, "
        f"columnar {runs['columnar']['wall_s']:.2f} s ({speedup:.2f}x)\n"
        f"wrote {RESULT_PATH}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"columnar only {speedup:.2f}x faster end to end "
        f"(need {MIN_SPEEDUP}x)"
    )
