"""Wall-clock speedup gate for the parallel experiment runner.

Eight tasks of ~0.4 s each through ``run_tasks``: serial in-process
versus a 4-worker pool.  The tasks sleep rather than burn CPU so the
gate measures the *pool's* concurrency (scheduling, process churn,
supervision overhead) independently of how many cores the host has —
a 4-deep pool must finish the batch at least 2× faster than serial,
the acceptance bar for sweeps on a 4-core runner.

Payload equality between the two runs is asserted too: speed must not
come at the cost of the determinism contract.

Results land in ``BENCH_runner_speedup.json`` at the repository root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.runner import RunnerConfig, TaskSpec, canonical_json, run_tasks

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_runner_speedup.json"
)

TASK_COUNT = 8
TASK_SECONDS = 0.4


def _batch() -> list[TaskSpec]:
    return [
        TaskSpec.selftest(f"speedup-{index}", sleep_s=TASK_SECONDS,
                          value=index)
        for index in range(TASK_COUNT)
    ]


def _timed(config: RunnerConfig):
    started = time.perf_counter()
    results = run_tasks(_batch(), root_seed=1017, config=config)
    elapsed = time.perf_counter() - started
    assert all(result.ok for result in results)
    return elapsed, [canonical_json(result.payload) for result in results]


def test_parallel_speedup_gate():
    serial_s, serial_payloads = _timed(RunnerConfig(force_serial=True))
    parallel_s, parallel_payloads = _timed(RunnerConfig(jobs=4))
    assert parallel_payloads == serial_payloads
    speedup = serial_s / parallel_s
    RESULT_PATH.write_text(json.dumps(
        {
            "tasks": TASK_COUNT,
            "task_seconds": TASK_SECONDS,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "jobs": 4,
            "speedup": round(speedup, 2),
        },
        indent=2,
    ) + "\n")
    print(f"\nrunner speedup: serial {serial_s:.2f}s, "
          f"4 workers {parallel_s:.2f}s ({speedup:.1f}x)")
    assert speedup >= 2.0, (
        f"parallel runner only {speedup:.2f}x faster than serial "
        f"({parallel_s:.2f}s vs {serial_s:.2f}s)"
    )
