"""Fig. 11: 16 diverse VMs — similar fusion, THP mode trades capacity."""

from repro.harness.experiments import run_fig11_diverse_vms

from benchmarks.conftest import get_scale, record


def test_fig11_diverse_vms(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_fig11_diverse_vms, args=(scale,), rounds=1, iterations=1
    )
    record(result, "fig11_diverse_vms")
    assert result.all_checks_pass, result.render()
