"""Micro-benchmark gates for the columnar frame store.

Three properties of the PR-5 memory stack are asserted as ratios (wall
numbers are host-dependent and only reported):

* **digest-all-frames**: hashing every frame of a duplicate-heavy
  machine must be at least 5x faster on the columnar store, because the
  arena computes one digest per *unique* payload while the legacy store
  hashes every frame;
* **O(1) accounting**: the per-sample cost of ``frames_in_use`` +
  ``type_histogram`` must be flat in machine size (counters, not
  recounts) — a 16x larger machine may not cost more than a small
  constant factor per sample;
* **mapped_frames cache**: steady-state sorted-view iteration must beat
  re-sorting the rmap keys on every call, which is what sample-heavy
  monitoring loops used to pay.

Results land in ``BENCH_physmem_ops.json`` at the repository root so CI
history can track the ratios over time.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.mem.content import tagged_content
from repro.mem.physmem import FrameType, PhysicalMemory

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_physmem_ops.json"
)

FRAMES = 16384
UNIQUE_CONTENTS = 64  # duplicate-heavy, as VM fleets are (Fig. 10)
REPEATS = 5
MIN_DIGEST_SPEEDUP = 5.0
MAX_SAMPLE_GROWTH = 3.0  # 16x frames may cost at most 3x per sample
MIN_MAPPED_SPEEDUP = 2.0


def populate(store: str, frames: int = FRAMES) -> PhysicalMemory:
    physmem = PhysicalMemory(frames, frame_store=store)
    for pfn in range(frames):
        physmem.write(pfn, tagged_content("bench", pfn % UNIQUE_CONTENTS))
    return physmem


def best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def report():
    data = {
        "frames": FRAMES,
        "unique_contents": UNIQUE_CONTENTS,
        "gates": {},
    }
    yield data
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {RESULT_PATH}")


def test_digest_all_frames_speedup(report):
    """Cold full-machine digest sweep: once per unique vs once per frame."""
    pfns = list(range(FRAMES))
    times = {}
    results = {}
    for store in ("legacy", "columnar"):
        best = float("inf")
        for _ in range(REPEATS):
            physmem = populate(store)  # fresh store: cold digest caches
            start = time.perf_counter()
            results[store] = physmem.digests_many(pfns)
            best = min(best, time.perf_counter() - start)
        times[store] = best
    assert results["legacy"] == results["columnar"]
    speedup = times["legacy"] / times["columnar"]
    report["gates"]["digest_all_frames"] = {
        "legacy_s": times["legacy"],
        "columnar_s": times["columnar"],
        "speedup": speedup,
    }
    print(
        f"\ndigest-all-frames: legacy {times['legacy'] * 1e3:.1f} ms, "
        f"columnar {times['columnar'] * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= MIN_DIGEST_SPEEDUP, (
        f"digest sweep only {speedup:.2f}x faster on columnar "
        f"(need {MIN_DIGEST_SPEEDUP}x)"
    )


def sample_cost(frames: int) -> float:
    """Per-sample accounting cost on a machine with busy frame types."""
    physmem = PhysicalMemory(frames, frame_store="columnar")
    types = [t for t in FrameType if t is not FrameType.FREE]
    for pfn in range(0, frames, 2):
        physmem.set_frame_type(pfn, types[pfn % len(types)])
    rounds = 2000

    def run():
        for _ in range(rounds):
            physmem.frames_in_use()
            physmem.type_histogram()

    return best_of(REPEATS, run) / rounds


def test_accounting_cost_is_flat_in_machine_size(report):
    """Counter-backed sampling: 4k-frame and 64k-frame machines cost
    the same per sample (the old recount scaled linearly)."""
    small, large = 4096, 65536
    cost_small = sample_cost(small)
    cost_large = sample_cost(large)
    growth = cost_large / cost_small
    report["gates"]["accounting_sample"] = {
        "frames_small": small,
        "frames_large": large,
        "cost_small_us": cost_small * 1e6,
        "cost_large_us": cost_large * 1e6,
        "growth": growth,
    }
    print(
        f"\naccounting sample: {cost_small * 1e6:.2f} us @ {small} frames, "
        f"{cost_large * 1e6:.2f} us @ {large} frames ({growth:.2f}x)"
    )
    assert growth <= MAX_SAMPLE_GROWTH, (
        f"per-sample accounting cost grew {growth:.2f}x on a 16x machine "
        f"(need <= {MAX_SAMPLE_GROWTH}x: counters, not recounts)"
    )


def test_mapped_frames_cache_beats_resort(report):
    """Steady-state mapped_frames() vs re-sorting the rmap every call."""
    physmem = PhysicalMemory(FRAMES, frame_store="columnar")
    for pfn in range(0, FRAMES, 2):
        physmem.rmap_add(pfn, 1, pfn * 4096)
    rounds = 200

    def cached():
        for _ in range(rounds):
            for _pfn in physmem.mapped_frames():
                pass

    def resort():
        # What every call used to pay: sort the live rmap keys.
        for _ in range(rounds):
            for _pfn in sorted(physmem._rmap):
                pass

    cached_s = best_of(REPEATS, cached)
    resort_s = best_of(REPEATS, resort)
    assert list(physmem.mapped_frames()) == sorted(physmem._rmap)
    speedup = resort_s / cached_s
    report["gates"]["mapped_frames_cache"] = {
        "cached_s": cached_s,
        "resort_s": resort_s,
        "speedup": speedup,
    }
    print(
        f"\nmapped_frames: cached {cached_s * 1e3:.1f} ms, resort "
        f"{resort_s * 1e3:.1f} ms per {rounds} sweeps ({speedup:.1f}x)"
    )
    assert speedup >= MIN_MAPPED_SPEEDUP, (
        f"cached mapped_frames only {speedup:.2f}x resort "
        f"(need {MIN_MAPPED_SPEEDUP}x)"
    )
