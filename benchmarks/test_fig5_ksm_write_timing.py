"""Fig. 5: bimodal write-timing distribution under KSM (the side channel)."""

from repro.harness.experiments import run_fig5_ksm_write_timing

from benchmarks.conftest import record


def test_fig5_ksm_write_timing(benchmark):
    result = benchmark.pedantic(run_fig5_ksm_write_timing, rounds=1, iterations=1)
    record(result, "fig5_ksm_write_timing")
    assert result.all_checks_pass, result.render()
    assert result.notes["modes"] >= 2
