"""Fig. 7: SPEC CPU2006 overheads — small for KSM, a few % more for VUsion."""

from repro.harness.experiments import run_fig7_spec

from benchmarks.conftest import get_scale, record


def test_fig7_spec(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(run_fig7_spec, args=(scale,), rounds=1, iterations=1)
    record(result, "fig7_spec")
    assert result.all_checks_pass, result.render()
