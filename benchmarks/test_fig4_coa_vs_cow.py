"""Fig. 4: copy-on-access barely reduces fusion; zero-pages are not enough."""

from repro.harness.experiments import run_fig4_coa_vs_cow

from benchmarks.conftest import get_scale, record


def test_fig4_coa_vs_cow(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_fig4_coa_vs_cow, args=(scale,), rounds=1, iterations=1
    )
    record(result, "fig4_coa_vs_cow")
    assert result.all_checks_pass, result.render()
