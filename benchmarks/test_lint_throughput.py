"""Lint-throughput regression gate for simlint + simflow.

The flow engine builds a CFG and runs four dataflow fixpoints per
function, so a careless change (quadratic joins, re-solving per rule
per statement, unbounded worklists) would quietly turn ``make lint``
from subsecond into minutes.  This gate runs the full dual-engine
analysis over the real tree (``src``, ``tests``, ``benchmarks``,
``examples``) and asserts a per-file time budget, tracked in
``BENCH_lint_throughput.json`` at the repository root like the scan
and runner gates.

Wall-clock budgets are generous (CI machines vary); the point is to
catch order-of-magnitude regressions, not few-percent noise.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.check import lint_paths
from repro.check.engine import iter_python_files

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_lint_throughput.json"

LINT_PATHS = [
    str(REPO_ROOT / name)
    for name in ("src", "tests", "benchmarks", "examples")
]
REPEATS = 3
#: Full-tree budget, milliseconds per analyzed file (both engines).
BUDGET_MS_PER_FILE = 50.0
#: And an absolute full-tree ceiling so a file-count collapse cannot
#: mask a blow-up.
BUDGET_S_TOTAL = 20.0


def test_full_tree_lint_stays_under_budget():
    file_count = len(iter_python_files(LINT_PATHS))
    assert file_count > 0
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = lint_paths(LINT_PATHS)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    assert result.errors == []
    per_file_ms = best * 1000.0 / result.files_scanned
    report = {
        "paths": ["src", "tests", "benchmarks", "examples"],
        "files_scanned": result.files_scanned,
        "findings": len(result.findings),
        "best_wall_seconds": best,
        "ms_per_file": per_file_ms,
        "budget_ms_per_file": BUDGET_MS_PER_FILE,
        "budget_s_total": BUDGET_S_TOTAL,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\nlint: {result.files_scanned} files in {best:.2f}s "
        f"({per_file_ms:.1f} ms/file), wrote {RESULT_PATH}"
    )
    assert per_file_ms <= BUDGET_MS_PER_FILE, (
        f"dual-engine lint costs {per_file_ms:.1f} ms/file "
        f"(budget {BUDGET_MS_PER_FILE} ms)"
    )
    assert best <= BUDGET_S_TOTAL, (
        f"full-tree lint took {best:.2f}s (budget {BUDGET_S_TOTAL}s)"
    )
