"""Lint-throughput regression gates for simlint + simflow + simrace.

The flow engine builds a CFG and runs four dataflow fixpoints per
function, the interprocedural tier adds whole-program summary
propagation on top, and the race tier adds the concurrency model
(spawn sites, worker reachability, ownership checks), so a careless
change (quadratic joins, re-solving per rule per statement, unbounded
worklists) would quietly turn ``make lint`` from subsecond into
minutes.  Two gates, tracked in ``BENCH_lint_throughput.json`` at the
repository root like the scan and runner gates:

* **full tree** — all three static engines over the real tree
  (``src``, ``tests``, ``benchmarks``, ``examples``) under a per-file
  and an absolute time budget;
* **incremental** — a warm run against the on-disk summary cache
  (nothing changed, so every file is a content hit, and every
  interprocedural *and race* function-scope result a dependency-digest
  hit) must be at least ``WARM_SPEEDUP_MIN``x faster than the cold
  run that populated it, with a byte-identical JSON report.

Wall-clock budgets are generous (CI machines vary); the point is to
catch order-of-magnitude regressions, not few-percent noise.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.check import RACE_RULES, findings_to_json, lint_paths, rule_catalog
from repro.check.engine import iter_python_files

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_lint_throughput.json"

LINT_PATHS = [
    str(REPO_ROOT / name)
    for name in ("src", "tests", "benchmarks", "examples")
]
SRC_PATHS = [str(REPO_ROOT / "src")]
REPEATS = 3
#: Full-tree budget, milliseconds per analyzed file (both engines).
BUDGET_MS_PER_FILE = 80.0
#: And an absolute full-tree ceiling so a file-count collapse cannot
#: mask a blow-up.
BUDGET_S_TOTAL = 30.0
#: The incremental gate: warm (all-hit) lint must beat cold by this
#: factor — the cache has to actually skip the expensive work.
WARM_SPEEDUP_MIN = 5.0


def _update_report(section: str, data: dict) -> None:
    """Merge one gate's results into the shared benchmark report."""
    report: dict = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report[section] = data
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def test_full_tree_lint_stays_under_budget():
    file_count = len(iter_python_files(LINT_PATHS))
    assert file_count > 0
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = lint_paths(LINT_PATHS)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    assert result.errors == []
    per_file_ms = best * 1000.0 / result.files_scanned
    _update_report("full_tree", {
        "paths": ["src", "tests", "benchmarks", "examples"],
        "files_scanned": result.files_scanned,
        "findings": len(result.findings),
        "best_wall_seconds": best,
        "ms_per_file": per_file_ms,
        "budget_ms_per_file": BUDGET_MS_PER_FILE,
        "budget_s_total": BUDGET_S_TOTAL,
    })
    print(
        f"\nlint: {result.files_scanned} files in {best:.2f}s "
        f"({per_file_ms:.1f} ms/file), wrote {RESULT_PATH}"
    )
    assert per_file_ms <= BUDGET_MS_PER_FILE, (
        f"dual-engine lint costs {per_file_ms:.1f} ms/file "
        f"(budget {BUDGET_MS_PER_FILE} ms)"
    )
    assert best <= BUDGET_S_TOTAL, (
        f"full-tree lint took {best:.2f}s (budget {BUDGET_S_TOTAL}s)"
    )


def test_incremental_lint_warm_beats_cold(tmp_path):
    cache_path = str(tmp_path / "lint-cache.json")
    # The default rule set must include the race tier: the warm gate
    # below is only meaningful if RACE analysis rides the same cache.
    assert set(RACE_RULES) <= set(rule_catalog())

    start = time.perf_counter()
    cold = lint_paths(SRC_PATHS, cache_path=cache_path)
    cold_seconds = time.perf_counter() - start
    assert cold.errors == []

    warm_best = float("inf")
    warm = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        warm = lint_paths(SRC_PATHS, cache_path=cache_path)
        warm_best = min(warm_best, time.perf_counter() - start)
    assert warm is not None
    assert warm.errors == []
    # Byte-identical reports from the cache or the gate means
    # nothing: the global (path, line, rule, qualname) ordering plus
    # cached summaries must reproduce the cold run exactly.
    assert findings_to_json(warm) == findings_to_json(cold)

    speedup = cold_seconds / warm_best
    _update_report("incremental", {
        "paths": ["src"],
        "files_scanned": cold.files_scanned,
        "cold_wall_seconds": cold_seconds,
        "warm_wall_seconds": warm_best,
        "warm_speedup": speedup,
        "warm_speedup_min": WARM_SPEEDUP_MIN,
        "race_rules_gated": sorted(RACE_RULES),
    })
    print(
        f"\nincremental lint: cold {cold_seconds:.2f}s, "
        f"warm {warm_best:.3f}s ({speedup:.1f}x), wrote {RESULT_PATH}"
    )
    assert speedup >= WARM_SPEEDUP_MIN, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"(gate {WARM_SPEEDUP_MIN}x) — the summary cache is not "
        f"skipping the expensive work"
    )
