"""Wall-clock scaling gate for sharded scenario execution.

Two measurements, one contract (``--shards N`` never changes a byte):

* **Pool-concurrency gate** — four shards whose service time is
  dominated by an injected, calibrated sleep run through the *real*
  :class:`~repro.runner.shardpool.ShardPool` machinery, serial versus
  four workers.  Like ``test_runner_speedup.py`` this measures the
  pool itself (spawn, beacon drain, supervision, recombination)
  independently of host core count, so the ≥3x gate holds on any
  runner.
* **Real 1M-frame fleet** — the actual paper-scale scenario: a
  ``2^20``-frame machine split into four NUMA-style shards with a
  fleet streaming through it.  Byte-identity between the serial
  reference and the 4-worker pool is asserted unconditionally; the
  ≥3x *real* wall-clock gate applies when the host has at least four
  CPUs (a single-core container can't physically exhibit it).
  ``REPRO_FULL=1`` quadruples the fleet.

Results land in ``BENCH_shard_scaling.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.harness.scenario import PRESETS
from repro.harness.shardfleet import (
    combine_shard_results,
    run_one_shard,
    run_sharded_serial,
)
from repro.harness.spec import FleetSpec, ScenarioSpec, ScheduleSpec
from repro.params import MS, SECOND
from repro.runner import ShardPoolConfig, canonical_json, run_sharded

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_shard_scaling.json"
)

SHARDS = 4
WORKERS = 4
#: Injected per-shard service time for the pool-concurrency gate —
#: long enough that worker spawn plus the single-core execution of the
#: real (tiny) shard runs stays a small fraction of one service.
SHARD_SERVICE_S = 2.0
POOL_GATE_MIN_SPEEDUP = 3.0
REAL_GATE_MIN_SPEEDUP = 3.0


def _payload(result) -> str:
    return canonical_json({"samples": result.to_payload()["samples"],
                           "totals": result.totals})


def _merge_results(section: str, data: dict) -> None:
    document = {}
    if RESULT_PATH.exists():
        document = json.loads(RESULT_PATH.read_text())
    document[section] = data
    RESULT_PATH.write_text(json.dumps(document, indent=2, sort_keys=True)
                           + "\n")


# ---------------------------------------------------------------------------
# Pool-concurrency gate (host-independent, like the runner speedup gate)
# ---------------------------------------------------------------------------
def gate_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="shard-scaling-gate",
        system=PRESETS["ksm"],
        fleet=FleetSpec(vms=4, image_families=2, pages_per_vm=64,
                        max_resident=4, lifetime_ns=SECOND,
                        arrival_interval_ns=125 * MS),
        schedule=ScheduleSpec(settle_ns=SECOND),
        frames=1024 * SHARDS,
        seed=1017,
        shards=SHARDS,
    )


def sleeping_shard_fn(spec, shard, on_round=None):
    """The calibrated service-time injection: a real shard run whose
    wall clock is dominated by a fixed sleep, so serial-vs-pool timing
    measures the pool's concurrency, not the host's core count."""
    time.sleep(SHARD_SERVICE_S)
    return run_one_shard(spec, shard, on_round=on_round)


def test_shard_pool_concurrency_gate():
    spec = gate_spec()
    reference = _payload(run_sharded_serial(spec))

    started = time.perf_counter()
    serial_results = [sleeping_shard_fn(spec, shard)
                      for shard in range(SHARDS)]
    serial_combined = combine_shard_results(spec, serial_results)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    pooled = run_sharded(spec, config=ShardPoolConfig(workers=WORKERS),
                         shard_fn=sleeping_shard_fn)
    parallel_s = time.perf_counter() - started

    # Identity first: the injection and the pool both leave results
    # byte-identical to the plain serial reference executor.
    assert _payload(serial_combined) == reference
    assert _payload(pooled) == reference

    speedup = serial_s / parallel_s
    _merge_results("pool_gate", {
        "shards": SHARDS,
        "workers": WORKERS,
        "shard_service_s": SHARD_SERVICE_S,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "min_speedup": POOL_GATE_MIN_SPEEDUP,
    })
    print(f"\nshard pool: serial {serial_s:.2f}s, {WORKERS} workers "
          f"{parallel_s:.2f}s ({speedup:.1f}x)")
    assert speedup >= POOL_GATE_MIN_SPEEDUP, (
        f"shard pool only {speedup:.2f}x faster than serial "
        f"({parallel_s:.2f}s vs {serial_s:.2f}s)"
    )


# ---------------------------------------------------------------------------
# Real 1M-frame fleet scenario
# ---------------------------------------------------------------------------
def fleet_1m_spec() -> ScenarioSpec:
    vms = 256 if os.environ.get("REPRO_FULL") == "1" else 64
    return ScenarioSpec(
        name="shard-scaling-1m",
        system=PRESETS["ksm"],
        fleet=FleetSpec(vms=vms, image_families=4, pages_per_vm=2048,
                        max_resident=16, lifetime_ns=2 * SECOND,
                        arrival_interval_ns=100 * MS),
        schedule=ScheduleSpec(settle_ns=SECOND),
        frames=1 << 20,
        seed=1017,
        shards=SHARDS,
    )


def test_shard_scaling_1m_frames():
    spec = fleet_1m_spec()
    cpus = os.cpu_count() or 1

    started = time.perf_counter()
    serial = run_sharded_serial(spec)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    pooled = run_sharded(spec, config=ShardPoolConfig(workers=WORKERS))
    parallel_s = time.perf_counter() - started

    assert _payload(pooled) == _payload(serial)
    exchange = serial.totals["exchange"]
    assert exchange["rounds"] >= 1

    speedup = serial_s / parallel_s
    gated = cpus >= WORKERS
    _merge_results("fleet_1m", {
        "frames": spec.frames,
        "shards": SHARDS,
        "workers": WORKERS,
        "vms": spec.fleet.vms,
        "booted_pages": serial.totals["booted_pages"],
        "exchanged_cids": exchange["exchanged_cids"],
        "merge_intents_applied": exchange["merge_intents_applied"],
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "host_cpus": cpus,
        "real_gate_applied": gated,
        "min_speedup": REAL_GATE_MIN_SPEEDUP,
    })
    print(f"\n1M-frame fleet: serial {serial_s:.1f}s, {WORKERS} workers "
          f"{parallel_s:.1f}s ({speedup:.2f}x on {cpus} cpu(s))")
    if gated:
        assert speedup >= REAL_GATE_MIN_SPEEDUP, (
            f"sharded 1M-frame fleet only {speedup:.2f}x faster "
            f"({parallel_s:.1f}s vs {serial_s:.1f}s on {cpus} cpus)"
        )
