"""Table 4: Postmark — fusion overhead stays in the low single digits."""

from repro.harness.experiments import run_table4_postmark

from benchmarks.conftest import get_scale, record


def test_table4_postmark(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_table4_postmark, args=(scale,), rounds=1, iterations=1
    )
    record(result, "table4_postmark")
    assert result.all_checks_pass, result.render()
