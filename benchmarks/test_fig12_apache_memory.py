"""Fig. 12: memory consumption while the Apache benchmark runs."""

from repro.harness.experiments import run_fig12_apache_memory

from benchmarks.conftest import get_scale, record


def test_fig12_apache_memory(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_fig12_apache_memory, args=(scale,), rounds=1, iterations=1
    )
    record(result, "fig12_apache_memory")
    assert result.all_checks_pass, result.render()
