"""Scan-pass latency gate: batch kernel vs scalar reference at 256k frames.

One fleet-scale scan pass asks every question the fusion engines ask
per round — zero-page sweep, duplicate-content grouping, generation
deltas against a snapshot, a full digest sweep and the refcount
reduction — over all 262 144 frames of a populated columnar machine.
The scalar kernel answers with per-frame Python loops (one method
dispatch per frame per question); the batch kernel answers from
zero-copy NumPy views of the cid / generation / refcount columns.

The gate: the vectorized pass must be at least 5x faster, with every
answer equal element-for-element (asserted before timing).  Results
land in ``BENCH_scan_pass.json`` at the repository root so CI history
tracks the ratio; the pure-``array`` fallback is measured and reported
too, but only NumPy is gated.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.mem.content import ZERO_PAGE, tagged_content
from repro.mem.physmem import PhysicalMemory
from repro.mem.scankernel import HAVE_NUMPY, BatchScanKernel, ScalarScanKernel

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_scan_pass.json"
)

FRAMES = 256 * 1024
UNIQUE_CONTENTS = 64  # duplicate-heavy, like a consolidated fleet
ZERO_STRIDE = 10      # ~10% zero pages
REPS = 3
MIN_SPEEDUP = 5.0


def build_machine() -> PhysicalMemory:
    physmem = PhysicalMemory(FRAMES)
    for pfn in range(FRAMES):
        if pfn % ZERO_STRIDE == 0:
            physmem.write(pfn, ZERO_PAGE)
        else:
            physmem.write(
                pfn, tagged_content("scanpass", pfn % UNIQUE_CONTENTS)
            )
        if pfn % 3 == 0:
            physmem.get_ref(pfn)
    return physmem


def scan_pass(kernel, pfns, snapshot) -> tuple:
    """One composite scan pass; returns every answer for equality checks."""
    return (
        kernel.zero_frames(pfns),
        list(kernel.group_by_content(pfns).values()),
        kernel.generation_snapshot(pfns),
        kernel.changed_since(pfns, snapshot),
        kernel.digest_sweep(pfns),
        kernel.refcount_sum(pfns),
    )


def best_of(kernel, pfns, snapshot) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        scan_pass(kernel, pfns, snapshot)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(not HAVE_NUMPY, reason="gate targets the NumPy backend")
def test_vectorized_scan_pass_at_least_5x():
    physmem = build_machine()
    pfns = range(FRAMES)  # whole-memory sweeps arrive as ranges
    scalar = ScalarScanKernel(physmem)
    batch = BatchScanKernel(physmem, use_numpy=True)
    fallback = BatchScanKernel(physmem, use_numpy=False)
    # Perturb a slice of generations after the snapshot so the
    # generation-delta filter has real positives to keep.
    snapshot = scalar.generation_snapshot(pfns)
    for pfn in range(0, FRAMES, 1000):
        physmem.write(pfn, tagged_content("scanpass-dirty", pfn))

    # Conformance before speed: every answer identical on all backends.
    reference = scan_pass(scalar, pfns, snapshot)
    assert scan_pass(batch, pfns, snapshot) == reference
    assert scan_pass(fallback, pfns, snapshot) == reference

    scalar_s = best_of(scalar, pfns, snapshot)
    batch_s = best_of(batch, pfns, snapshot)
    fallback_s = best_of(fallback, pfns, snapshot)
    speedup = scalar_s / batch_s

    report = {
        "frames": FRAMES,
        "unique_contents": UNIQUE_CONTENTS,
        "zero_fraction": 1 / ZERO_STRIDE,
        "reps": REPS,
        "scalar_pass_s": scalar_s,
        "numpy_pass_s": batch_s,
        "array_fallback_pass_s": fallback_s,
        "speedup_numpy": speedup,
        "speedup_array_fallback": scalar_s / fallback_s,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\nscan pass over {FRAMES} frames: scalar {scalar_s * 1000:.1f} ms, "
        f"numpy {batch_s * 1000:.1f} ms ({speedup:.1f}x), "
        f"array fallback {fallback_s * 1000:.1f} ms\n"
        f"wrote {RESULT_PATH}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized scan pass only {speedup:.2f}x faster "
        f"(need {MIN_SPEEDUP}x at {FRAMES} frames)"
    )
