"""§10.1: swap-cache-only dedup misses substantial fusion opportunity."""

from repro.harness.experiments import run_memory_combining

from benchmarks.conftest import get_scale, record


def test_memory_combining_comparison(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_memory_combining, args=(scale,), rounds=1, iterations=1
    )
    record(result, "memory_combining")
    assert result.all_checks_pass, result.render()
