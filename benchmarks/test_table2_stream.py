"""Table 2: Stream bandwidth — fusion costs under ~2%."""

from repro.harness.experiments import run_table2_stream

from benchmarks.conftest import get_scale, record


def test_table2_stream(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(
        run_table2_stream, args=(scale,), rounds=1, iterations=1
    )
    record(result, "table2_stream")
    assert result.all_checks_pass, result.render()
