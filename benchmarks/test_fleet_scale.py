"""Staged-scale fleet benchmark: savings / attack surface / scan cost
as scale curves, with flat host memory.

A consolidation fleet streams through a fixed 32k-frame machine at
three cumulative scales — ~20k, ~100k and ~500k booted pages (plus an
opt-in ~2M tier) — under all four system columns.  Each (system, scale)
cell runs median-of-3 with distinct seeds; host RSS is sampled
continuously through the driver's ``on_chunk`` hook, so the benchmark
proves the streaming claim directly: cumulative booted frames grow 25x
while sampled peak host memory stays within a small constant factor
(the machine, not the fleet, bounds memory).

Tiers (``REPRO_FLEET_TIER``):

* ``smoke`` — 20k only; the CI gate.
* unset / ``gated`` — 20k, 100k, 500k (the committed curves).
* ``full`` — adds the 2M tier.

Results land in ``BENCH_fleet_scale.json`` at the repository root:
per-system scale curves of ``saved_frames`` (fusion savings),
``probe_hits``/``probes`` (measured attack surface) and ``scan_ns``
(simulated scan overhead), plus wall time and sampled peak RSS.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time

from repro.harness.fleet import FleetDriver
from repro.harness.scenario import PRESETS
from repro.harness.spec import FleetSpec, ScenarioSpec, ScheduleSpec
from repro.params import MS, SECOND

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_fleet_scale.json"
)

FRAMES = 32768
PAGES_PER_VM = 448
MAX_RESIDENT = 12
REPS = 3
BASE_SEED = 1017

#: scale name -> fleet size (cumulative booted pages = vms * 448).
SCALE_VMS = {
    "20k": 45,        # ~20k pages
    "100k": 224,      # ~100k pages
    "500k": 1116,     # ~500k pages
    "2m": 4464,       # ~2M pages (opt-in)
}

TIERS = {
    "smoke": ("20k",),
    "gated": ("20k", "100k", "500k"),
    "full": ("20k", "100k", "500k", "2m"),
}

#: Sublinearity margin: sampled peak RSS may grow by at most a quarter
#: of the booted-frame growth factor (25x frames -> at most ~6x RSS;
#: measured ~2.4x).  The residual growth is interpreter high-water
#: effects plus the content-intern table, not resident VM pages — the
#: streaming window, not the fleet, owns host memory.
MAX_RSS_FRACTION_OF_FRAME_GROWTH = 0.25


def tier_scales() -> tuple[str, ...]:
    tier = os.environ.get("REPRO_FLEET_TIER", "gated")
    if tier not in TIERS:
        raise ValueError(f"unknown REPRO_FLEET_TIER {tier!r} "
                         f"(known: {', '.join(TIERS)})")
    return TIERS[tier]


def scale_spec(system: str, scale: str, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"scale-{scale}-{system}",
        system=PRESETS[system],
        fleet=FleetSpec(
            vms=SCALE_VMS[scale],
            image_families=4,
            pages_per_vm=PAGES_PER_VM,
            arrival_interval_ns=100 * MS,
            lifetime_ns=2 * SECOND,
            max_resident=MAX_RESIDENT,
        ),
        schedule=ScheduleSpec(settle_ns=SECOND),
        frames=FRAMES,
        seed=seed,
    )


def rss_bytes() -> int:
    """Resident set size of this process, sampled cheaply."""
    try:
        with open("/proc/self/statm", encoding="ascii") as statm:
            return int(statm.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError):  # non-procfs hosts
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_cell(system: str, scale: str, seed: int) -> dict:
    peak_rss = 0

    def sample_rss(_driver, _event):
        nonlocal peak_rss
        peak_rss = max(peak_rss, rss_bytes())

    spec = scale_spec(system, scale, seed)
    start = time.perf_counter()
    result = FleetDriver(spec, on_chunk=sample_rss).run()
    wall = time.perf_counter() - start
    totals = result.totals
    return {
        "booted_pages": totals["booted_pages"],
        "peak_frames_in_use": totals["peak_frames_in_use"],
        "peak_saved_frames": totals["peak_saved_frames"],
        "probes": totals["probes"],
        "probe_hits": totals["probe_hits"],
        "pages_scanned": totals["pages_scanned"],
        "scan_ns": totals["scan_ns"],
        "cow_faults": totals["cow_faults"],
        "coa_faults": totals["coa_faults"],
        "wall_s": wall,
        "peak_rss_bytes": peak_rss,
    }


def median_cell(runs: list[dict]) -> dict:
    return {
        key: statistics.median(run[key] for run in runs)
        for key in runs[0]
    }


def test_fleet_scale_curves():
    scales = tier_scales()
    curves: dict[str, dict[str, dict]] = {}
    for system in PRESETS:
        curves[system] = {}
        for scale in scales:
            runs = [run_cell(system, scale, BASE_SEED + rep)
                    for rep in range(REPS)]
            cell = median_cell(runs)
            curves[system][scale] = cell
            print(f"{system:>10} @ {scale:>4}: "
                  f"saved {cell['peak_saved_frames']:7.0f}  "
                  f"hits {cell['probe_hits']:4.0f}/{cell['probes']:5.0f}  "
                  f"scan {cell['scan_ns'] / 1e6:8.1f} ms  "
                  f"rss {cell['peak_rss_bytes'] / 2**20:6.1f} MiB  "
                  f"wall {cell['wall_s']:6.2f} s")

    report = {
        "frames": FRAMES,
        "pages_per_vm": PAGES_PER_VM,
        "max_resident": MAX_RESIDENT,
        "reps": REPS,
        "scales": {name: SCALE_VMS[name] * PAGES_PER_VM for name in scales},
        "systems": curves,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")

    smallest, largest = scales[0], scales[-1]
    for system, curve in curves.items():
        # The machine bounds simulated memory at every scale.
        for scale in scales:
            assert curve[scale]["peak_frames_in_use"] <= FRAMES, (
                system, scale)
        # Host memory is sublinear in booted frames: the fleet grows,
        # the streaming window (and so RSS) does not.
        if len(scales) > 1:
            frame_growth = (curve[largest]["booted_pages"]
                            / curve[smallest]["booted_pages"])
            rss_growth = (curve[largest]["peak_rss_bytes"]
                          / curve[smallest]["peak_rss_bytes"])
            assert frame_growth >= 5.0, (system, frame_growth)
            assert rss_growth <= max(
                1.5, frame_growth * MAX_RSS_FRACTION_OF_FRAME_GROWTH
            ), (
                f"{system}: sampled peak RSS grew {rss_growth:.2f}x over a "
                f"{frame_growth:.0f}x frame-count increase — not sublinear "
                f"(streaming window leak?)"
            )

    for scale in scales:
        # Fusion saves memory wherever an engine runs...
        assert curves["ksm"][scale]["peak_saved_frames"] > 0, scale
        assert curves["vusion"][scale]["peak_saved_frames"] > 0, scale
        assert curves["nodedup"][scale]["peak_saved_frames"] == 0, scale
        # ...but only KSM exposes a measurable attack surface; the
        # VUsion columns stay blind at every scale.
        assert curves["ksm"][scale]["probe_hits"] > 0, scale
        assert curves["vusion"][scale]["probe_hits"] == 0, scale
        assert curves["vusion_thp"][scale]["probe_hits"] == 0, scale
        assert curves["nodedup"][scale]["probe_hits"] == 0, scale
        # Scan overhead is the price of dedup: zero without an engine.
        assert curves["ksm"][scale]["scan_ns"] > 0, scale
        assert curves["nodedup"][scale]["pages_scanned"] == 0, scale
