"""Fig. 8: PARSEC overheads — low, with THP enhancements competitive."""

from repro.harness.experiments import run_fig8_parsec

from benchmarks.conftest import get_scale, record


def test_fig8_parsec(benchmark):
    scale = get_scale()
    result = benchmark.pedantic(run_fig8_parsec, args=(scale,), rounds=1, iterations=1)
    record(result, "fig8_parsec")
    assert result.all_checks_pass, result.render()
