PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test sanitize bench

## check: everything CI gates on — simlint + tier-1 tests under FrameSan
check: lint sanitize

## lint: simlint over the source tree (exit 1 on any finding)
lint:
	$(PYTHON) -m repro lint src

## test: the tier-1 suite, sanitizer off (fastest signal)
test:
	$(PYTHON) -m pytest -x -q

## sanitize: the tier-1 suite with FrameSan active
sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

## bench: perf gates (fingerprint scan throughput, runner speedup)
bench:
	$(PYTHON) -m pytest -x -q -s benchmarks/test_scan_throughput.py \
	    benchmarks/test_runner_speedup.py
