PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test sanitize bench

## check: everything CI gates on — simlint + tier-1 tests under FrameSan
check: lint sanitize

## lint: all three static tiers over the whole tree (exit 1 on any
## finding); the summary cache makes repeat runs incremental
lint:
	$(PYTHON) -m repro lint src tests benchmarks examples --strict --cache .lint-cache/summaries.json

## test: the tier-1 suite, sanitizer off (fastest signal)
test:
	$(PYTHON) -m pytest -x -q

## sanitize: the tier-1 suite with FrameSan active
sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

## bench: perf gates (scan/physmem/e2e throughput, scan pass, runner,
## lint, fleet scale, shard scaling).  REPRO_FLEET_TIER=smoke trims
## the fleet curves to the 20k tier (what CI runs); unset runs
## 20k/100k/500k.
bench:
	$(PYTHON) -m pytest -x -q -s benchmarks/test_scan_throughput.py \
	    benchmarks/test_physmem_ops.py \
	    benchmarks/test_e2e_scenario.py \
	    benchmarks/test_scan_pass.py \
	    benchmarks/test_runner_speedup.py \
	    benchmarks/test_lint_throughput.py \
	    benchmarks/test_fleet_scale.py \
	    benchmarks/test_shard_scaling.py
