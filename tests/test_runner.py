"""Unit tests for the parallel experiment runner (repro.runner).

Fault-injection uses the built-in ``selftest`` task kind: crashes are
real ``os._exit`` in a worker process, hangs are real sleeps killed by
the watchdog — the pool code paths exercised are exactly those real
experiments would hit.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    MATRIX_ENGINES,
    PoolDegraded,
    RunCompleted,
    RunnerConfig,
    RunStarted,
    TaskFinished,
    TaskPool,
    TaskRetrying,
    TaskSpec,
    TaskStarted,
    canonical_json,
    derive_seed,
    execute_task,
    expand_selectors,
    run_tasks,
    sanitize,
    write_artifacts,
)

FAST_RETRY = dict(retry_backoff_s=0.02)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(1017, "experiment:fig3") == derive_seed(
            1017, "experiment:fig3"
        )

    def test_varies_with_task_and_root(self):
        seeds = {
            derive_seed(1017, "experiment:fig3"),
            derive_seed(1017, "experiment:fig4"),
            derive_seed(1018, "experiment:fig3"),
        }
        assert len(seeds) == 3

    def test_range(self):
        for task_id in ("a", "b", "attack:x@y"):
            assert 0 <= derive_seed(3, task_id) < 2**63


class TestTaskSpec:
    def test_experiment_ids(self):
        assert TaskSpec.experiment("fig3").task_id == "experiment:fig3"
        assert (TaskSpec.experiment("fig4", scale="full").task_id
                == "experiment:fig4#full")

    def test_attack_id_includes_target(self):
        spec = TaskSpec.attack("cow-timing", target="vusion")
        assert spec.task_id == "attack:cow-timing@vusion"

    def test_attack_default_target(self):
        assert TaskSpec.attack("page-color").param("target") == "wpf"

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec.experiment("fig99")
        with pytest.raises(ValueError):
            TaskSpec.attack("no-such-attack")
        with pytest.raises(ValueError):
            TaskSpec.attack("cow-timing", target="no-such-engine")
        with pytest.raises(ValueError):
            TaskSpec(kind="bogus", name="x")

    def test_specs_are_picklable_and_hashable(self):
        import pickle

        spec = TaskSpec.attack("translation")
        assert pickle.loads(pickle.dumps(spec)) == spec
        # In-process hashability check, never persisted.
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))  # simlint: disable=DET004


class TestSelectors:
    def test_all(self):
        from repro.harness.experiments import EXPERIMENTS

        tasks = expand_selectors([], select_all=True)
        assert [t.name for t in tasks] == list(EXPERIMENTS)

    def test_tag(self):
        tasks = expand_selectors(["tag:quick"])
        assert {t.name for t in tasks} >= {"fig3", "fig5", "fig6", "ra"}
        assert all(t.kind == "experiment" for t in tasks)

    def test_matrix_is_full_cross_product(self):
        from repro.harness.experiments import TABLE1_ATTACKS

        tasks = expand_selectors(["matrix"])
        assert len(tasks) == len(TABLE1_ATTACKS) * len(MATRIX_ENGINES)
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_deduplication_preserves_order(self):
        tasks = expand_selectors(["fig3", "tag:quick", "fig3"])
        assert [t.name for t in tasks][0] == "fig3"
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_errors(self):
        with pytest.raises(ValueError):
            expand_selectors(["bogus"])
        with pytest.raises(ValueError):
            expand_selectors(["tag:bogus"])
        with pytest.raises(ValueError):
            expand_selectors([])


class TestSanitize:
    def test_tuples_bytes_and_keys(self):
        value = {("redis", "KSM"): (1, 2), "b": b"\x01\xff", "f": 1.5}
        clean = sanitize(value)
        assert clean == {"('redis', 'KSM')": [1, 2], "b": "01ff", "f": 1.5}

    def test_nan_inf(self):
        clean = sanitize({"n": float("nan"), "i": float("inf")})
        assert clean == {"n": "nan", "i": "inf"}
        json.loads(canonical_json({"n": float("nan")}))


class TestSerialExecution:
    def test_selftest_roundtrip(self):
        results = run_tasks(
            [TaskSpec.selftest("t", value=41)],
            config=RunnerConfig(force_serial=True),
        )
        assert results[0].ok
        assert results[0].payload["value"] == 41
        assert results[0].mode == "serial"

    def test_serial_retry_then_success(self):
        events = []
        results = run_tasks(
            [TaskSpec.selftest("flaky", mode="raise", fail_attempts=1)],
            config=RunnerConfig(force_serial=True, max_retries=2, **FAST_RETRY),
            on_event=events.append,
        )
        assert results[0].ok and results[0].attempts == 2
        assert any(isinstance(e, TaskRetrying) for e in events)

    def test_serial_retry_exhaustion(self):
        results = run_tasks(
            [TaskSpec.selftest("doomed", mode="raise", fail_attempts=99)],
            config=RunnerConfig(force_serial=True, max_retries=1, **FAST_RETRY),
        )
        assert results[0].status == "error"
        assert results[0].attempts == 2
        assert "injected failure" in results[0].error


class TestPoolExecution:
    def test_results_in_submission_order(self):
        tasks = [
            TaskSpec.selftest("slow", value=0, sleep_s=0.3),
            TaskSpec.selftest("fast", value=1),
        ]
        results = run_tasks(tasks, config=RunnerConfig(jobs=2))
        assert [r.payload["value"] for r in results] == [0, 1]
        assert all(r.mode == "pool" for r in results)

    def test_worker_crash_retried_to_success(self):
        events = []
        results = run_tasks(
            [TaskSpec.selftest("crashy", mode="crash", fail_attempts=1,
                               value=7)],
            config=RunnerConfig(jobs=2, max_retries=2, **FAST_RETRY),
            on_event=events.append,
        )
        assert results[0].ok and results[0].attempts == 2
        retries = [e for e in events if isinstance(e, TaskRetrying)]
        assert retries and retries[0].reason == "crashed"
        assert results[0].payload["value"] == 7

    def test_worker_crash_exhausts_retries(self):
        results = run_tasks(
            [TaskSpec.selftest("dead", mode="crash", fail_attempts=99)],
            config=RunnerConfig(jobs=1, max_retries=1, **FAST_RETRY),
        )
        assert results[0].status == "crashed"
        assert results[0].attempts == 2

    def test_hung_worker_times_out_and_retries(self):
        events = []
        results = run_tasks(
            [TaskSpec.selftest("hangy", mode="hang", fail_attempts=1,
                               hang_s=60)],
            config=RunnerConfig(jobs=1, timeout_s=0.5, max_retries=2,
                                **FAST_RETRY),
            on_event=events.append,
        )
        assert results[0].ok and results[0].attempts == 2
        assert any(isinstance(e, TaskRetrying) and e.reason == "timeout"
                   for e in events)

    def test_worker_exception_reported(self):
        results = run_tasks(
            [TaskSpec.selftest("raiser", mode="raise", fail_attempts=99)],
            config=RunnerConfig(jobs=1, max_retries=0, **FAST_RETRY),
        )
        assert results[0].status == "error"
        assert "RuntimeError" in results[0].error

    def test_event_stream_shape(self):
        events = []
        run_tasks(
            [TaskSpec.selftest("a"), TaskSpec.selftest("b")],
            config=RunnerConfig(jobs=2),
            on_event=events.append,
        )
        kinds = [type(e).__name__ for e in events]
        assert kinds[0] == "RunStarted" and kinds[-1] == "RunCompleted"
        assert kinds.count("TaskStarted") == 2
        assert kinds.count("TaskFinished") == 2
        done = [e for e in events if isinstance(e, RunCompleted)][0]
        assert done.total == 2 and done.ok == 2 and done.failed == 0


class TestPoolDegradation:
    def test_falls_back_to_serial_when_pool_breaks(self, monkeypatch):
        events = []
        pool = TaskPool(
            [TaskSpec.selftest("s1", value=1), TaskSpec.selftest("s2", value=2)],
            config=RunnerConfig(jobs=2, **FAST_RETRY),
            on_event=events.append,
        )

        def broken_start(ctx, index, attempt):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(pool, "_start_process", broken_start)
        results = pool.run()
        assert [r.payload["value"] for r in results] == [1, 2]
        assert all(r.mode == "serial" for r in results)
        assert any(isinstance(e, PoolDegraded) for e in events)

    def test_degraded_results_match_pool_results(self, monkeypatch):
        tasks = [TaskSpec.selftest("x", value=3), TaskSpec.selftest("y", value=4)]
        healthy = run_tasks(tasks, config=RunnerConfig(jobs=2))
        pool = TaskPool(tasks, config=RunnerConfig(jobs=2))
        monkeypatch.setattr(
            pool, "_start_process",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no pids")),
        )
        degraded = pool.run()
        assert ([r.payload for r in healthy]
                == [r.payload for r in degraded])


class TestArtifacts:
    def test_layout_and_manifest(self, tmp_path):
        results = run_tasks(
            [TaskSpec.selftest("art", value={"k": (1, 2)})],
            config=RunnerConfig(force_serial=True),
        )
        manifest_path = write_artifacts(tmp_path, results, root_seed=9, jobs=1)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["root_seed"] == 9 and manifest["ok"] is True
        entry = manifest["tasks"][0]
        document = json.loads((tmp_path / entry["file"]).read_text())
        assert document["task_id"] == "selftest:art"
        assert document["result"]["value"] == {"k": [1, 2]}
        assert document["seed"] == results[0].seed

    def test_failed_task_recorded(self, tmp_path):
        results = run_tasks(
            [TaskSpec.selftest("bad", mode="raise", fail_attempts=9)],
            config=RunnerConfig(force_serial=True, max_retries=0, **FAST_RETRY),
        )
        manifest = json.loads(
            write_artifacts(tmp_path, results, root_seed=1, jobs=1).read_text()
        )
        assert manifest["ok"] is False
        assert manifest["tasks"][0]["status"] == "error"
        document = json.loads(
            (tmp_path / manifest["tasks"][0]["file"]).read_text()
        )
        assert document["result"] is None and "injected" in document["error"]


class TestExecuteTask:
    def test_attack_payload(self):
        payload = execute_task(
            TaskSpec.attack("cow-timing", target="vusion"), seed=1017
        )
        assert payload["type"] == "attack"
        assert payload["success"] is False  # VUsion defeats it
        assert payload["mitigated_by"] == "SB"

    def test_experiment_payload(self):
        payload = execute_task(TaskSpec.experiment("fig3"), seed=1017)
        assert payload["type"] == "experiment"
        assert payload["checks_pass"] is True
        assert payload["headers"][0] == "system"

    def test_retry_purity_for_experiments(self):
        first = execute_task(TaskSpec.experiment("fig3"), seed=3, attempt=0)
        second = execute_task(TaskSpec.experiment("fig3"), seed=3, attempt=5)
        assert canonical_json(first) == canonical_json(second)
