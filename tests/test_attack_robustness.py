"""Seed robustness and bookkeeping of the attack framework.

The Table 1 verdicts must not depend on a lucky seed: the cheap
attacks are re-run across several machine seeds.
"""

from __future__ import annotations

import pytest

from repro.attacks import (
    ALL_ATTACKS,
    AttackEnvironment,
    AttackResult,
    CowTimingAttack,
    DedupCovertChannel,
    FlipFengShuiAttack,
    PageSharingAttack,
)

SEEDS = [1017, 2029, 4051]


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cow_timing_vs_ksm(self, seed):
        assert CowTimingAttack(AttackEnvironment("ksm", seed=seed)).run().success

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cow_timing_vs_vusion(self, seed):
        assert not CowTimingAttack(
            AttackEnvironment("vusion", seed=seed)
        ).run().success

    @pytest.mark.parametrize("seed", SEEDS)
    def test_page_sharing_vs_ksm(self, seed):
        assert PageSharingAttack(AttackEnvironment("ksm", seed=seed)).run().success

    @pytest.mark.parametrize("seed", SEEDS)
    def test_covert_channel_vs_ksm(self, seed):
        assert DedupCovertChannel(AttackEnvironment("ksm", seed=seed)).run().success

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ffs_vs_vusion_never_succeeds(self, seed):
        result = FlipFengShuiAttack(
            AttackEnvironment(
                "vusion", seed=seed, thp_fault=True, frames=32768,
                row_vulnerability=0.3,
            )
        ).run()
        assert not result.success


class TestFrameworkBookkeeping:
    def test_every_attack_declares_mitigation(self):
        for attack_cls in ALL_ATTACKS:
            assert attack_cls.mitigated_by in ("SB", "RA")
            assert attack_cls.name != "attack"

    def test_attack_names_unique(self):
        names = [attack_cls.name for attack_cls in ALL_ATTACKS]
        assert len(names) == len(set(names))

    def test_result_str(self):
        result = AttackResult("x", "ksm", True, "SB")
        assert "SUCCEEDED" in str(result)
        result = AttackResult("x", "vusion", False, "SB")
        assert "defeated" in str(result)

    def test_environment_seeds_differ(self):
        a = AttackEnvironment("none", seed=1)
        b = AttackEnvironment("none", seed=2)
        assert a.rng.random() != b.rng.random()
